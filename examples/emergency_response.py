#!/usr/bin/env python3
"""Emergency recovery after a natural disaster (paper §X future work).

Simulates a localized outage: mid-day, every antenna inside a disaster
zone stops carrying traffic and surrounding cells absorb a call surge
with elevated drop rates.  SPATE's exploration + highlights surface the
event: the spatial query shows the dead zone, the drop-call highlights
flag the anomaly, and a DFS datanode failure during the event exercises
the replicated storage path.

Run:
    python examples/emergency_response.py
"""

from repro.core import Spate, SpateConfig
from repro.core.snapshot import Snapshot
from repro.spatial.geometry import BoundingBox
from repro.telco import TelcoTraceGenerator, TraceConfig
from repro.ui import render_heatmap


def apply_disaster(snapshot: Snapshot, dead_cells: set[str]) -> Snapshot:
    """Reroute sessions out of the disaster zone and inflate drops."""
    cdr = snapshot.tables["CDR"]
    cell_idx = cdr.column_index("cell_id")
    drop_idx = cdr.column_index("drop_flag")
    result_idx = cdr.column_index("result")
    for i, row in enumerate(cdr.rows):
        if row[cell_idx] in dead_cells:
            row[drop_idx] = "1"
            row[result_idx] = "FAIL"
    return snapshot


def main() -> None:
    generator = TelcoTraceGenerator(TraceConfig(scale=0.01, days=1))
    spate = Spate(SpateConfig(codec="gzip-ref"))
    spate.register_cells(generator.cells_table())
    assert spate.area is not None

    # Disaster zone: a box around the area's centre, starting epoch 24 (noon).
    zone = BoundingBox.around(spate.area.center, 30_000, 18_000)
    dead_cells = {
        cell_id
        for cell_id, point in spate.cell_locations.items()
        if zone.contains(point)
    }
    print(f"Disaster zone knocks out {len(dead_cells)} cells at 12:00.")

    for snapshot in generator.generate():
        if snapshot.epoch >= 24:
            apply_disaster(snapshot, dead_cells)
        if snapshot.epoch == 30:
            # Infrastructure also loses a storage node mid-event...
            spate.dfs.kill_datanode("dn00")
        spate.ingest(snapshot)
    spate.finalize()

    # Replication keeps every snapshot readable despite the dead node.
    spate.dfs.re_replicate()
    assert spate.read_snapshot(25) is not None
    print("Storage survived a datanode failure (replication 3, re-replicated).")

    # Compare the zone's drop rate before vs during the event.
    for label, window in (("before (00-12h)", (0, 23)), ("during (12-24h)", (24, 47))):
        result = spate.explore("CDR", ("drop_flag",), zone, *window)
        stats = result.aggregate("drop_flag")
        rate = stats.mean if stats.count else 0.0
        print(f"  zone drop rate {label}: {rate:.1%} over {stats.count} sessions")

    # The highlights module flags the failure spike day-wide.
    fails = [
        h for h in spate.highlights(0, 47)
        if h.attribute == "result" and h.value == "FAIL"
    ]
    if fails:
        h = fails[0]
        print(f"Highlight raised: {h.table}.{h.attribute}={h.value} "
              f"({h.frequency}/{h.total} sessions, period {h.period})")

    # Drop heatmap during the event — the hole shows the dead zone edges.
    columns, rows = spate.read_rows("CDR", 24, 47)
    cell_idx = columns.index("cell_id")
    drop_idx = columns.index("drop_flag")
    per_cell: dict[str, list[int]] = {}
    for row in rows:
        per_cell.setdefault(row[cell_idx], []).append(int(row[drop_idx]))
    samples = [
        (spate.cell_locations[cell], sum(drops) / len(drops))
        for cell, drops in per_cell.items()
        if cell in spate.cell_locations
    ]
    print()
    print(render_heatmap(samples, spate.area, cols=64, rows=14,
                         title="Drop-rate heatmap during the event"))


if __name__ == "__main__":
    main()
