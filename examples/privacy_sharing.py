#!/usr/bin/env python3
"""Privacy-aware data sharing: k-anonymize a CDR window (task T5).

A smart-city startup asks the telco for a morning of CDR data.  The
telco exports it through SPATE's privacy sanitizer: quasi-identifiers
are generalized (cell ids truncated, plans/technologies bucketed) until
every released combination matches at least k subscribers, and the
residual small groups are suppressed.

Run:
    python examples/privacy_sharing.py
"""

from repro.core import Spate, SpateConfig
from repro.privacy import (
    default_cdr_hierarchies,
    discernibility_metric,
    equivalence_classes,
    full_domain_anonymize,
    generalization_information_loss,
    mondrian_anonymize,
)
from repro.telco import TelcoTraceGenerator, TraceConfig
from repro.telco.schema import CDR_QUASI_IDENTIFIERS


def main() -> None:
    generator = TelcoTraceGenerator(TraceConfig(scale=0.01, days=1))
    spate = Spate(SpateConfig(codec="gzip-ref"))
    spate.register_cells(generator.cells_table())
    for snapshot in generator.generate():
        spate.ingest(snapshot)
    spate.finalize()

    columns, rows = spate.read_rows("CDR", 10, 23)  # the morning window
    print(f"Export candidate: {len(rows)} CDR rows, "
          f"quasi-identifiers: {CDR_QUASI_IDENTIFIERS}")

    hierarchies = default_cdr_hierarchies()
    for k in (2, 5, 10):
        result = full_domain_anonymize(
            rows=rows,
            columns=columns,
            quasi_identifiers=list(CDR_QUASI_IDENTIFIERS),
            hierarchies=hierarchies,
            k=k,
            max_suppression=0.10,
        )
        quasi_idx = [columns.index(q) for q in CDR_QUASI_IDENTIFIERS]
        classes = equivalence_classes(result.rows, quasi_idx)
        loss = generalization_information_loss(result.levels, hierarchies)
        print(f"\nk={k}: released {result.released_rows}, "
              f"suppressed {result.suppressed_rows}")
        print(f"  generalization levels: {result.levels}")
        print(f"  information loss: {loss:.2f}, "
              f"equivalence classes: {len(classes)}, "
              f"discernibility: {discernibility_metric(result.rows, quasi_idx)}")
        smallest = min(classes.values()) if classes else 0
        print(f"  smallest class size: {smallest} (must be >= {k})")

    # l-diversity on top of k-anonymity: the released classes must also
    # contain >= l distinct values of the sensitive attribute, closing
    # the homogeneity attack k-anonymity leaves open.
    from repro.privacy import is_l_diverse, l_diverse_anonymize

    diverse = l_diverse_anonymize(
        rows=rows,
        columns=columns,
        quasi_identifiers=list(CDR_QUASI_IDENTIFIERS),
        sensitive_attribute="result",
        hierarchies=hierarchies,
        k=5,
        l=2,
        max_suppression=0.15,
    )
    quasi_idx = [columns.index(q) for q in CDR_QUASI_IDENTIFIERS]
    sens_idx = columns.index("result")
    print(f"\n(k=5, l=2)-diverse release: {diverse.released_rows} rows, "
          f"suppressed {diverse.suppressed_rows}")
    print(f"  distinct 2-diversity holds: "
          f"{is_l_diverse(diverse.rows, quasi_idx, sens_idx, 2)}")

    # Mondrian on the numeric columns, for comparison.
    numeric_quasi = ["duration_s", "upflux", "downflux"]
    mondrian = mondrian_anonymize(
        rows=rows, columns=columns, quasi_identifiers=numeric_quasi, k=5
    )
    print(f"\nMondrian (numeric QIs {numeric_quasi}, k=5): "
          f"released {mondrian.released_rows} rows")
    idx = columns.index("downflux")
    shown = sorted({row[idx] for row in mondrian.rows[:500]})[:5]
    print(f"  sample recoded downflux ranges: {shown}")


if __name__ == "__main__":
    main()
