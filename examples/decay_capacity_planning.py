#!/usr/bin/env python3
"""Decaying in action: bounded storage with year-scale exploration.

Simulates a long-running deployment where the operator retains full
resolution for only three days of snapshots (the data fungus "Evict
Oldest Individuals").  Storage stays bounded as weeks stream in, while
exploration queries over the decayed past still answer from the
retained day/month summaries.

Run:
    python examples/decay_capacity_planning.py
"""

from repro.core import Spate, SpateConfig
from repro.core.config import DecayPolicyConfig
from repro.core.snapshot import EPOCHS_PER_DAY
from repro.index.decay import describe_policy
from repro.telco import TelcoTraceGenerator, TraceConfig


def main() -> None:
    decay = DecayPolicyConfig(
        enabled=True,
        keep_epochs=3 * EPOCHS_PER_DAY,  # 3 days of full resolution
        keep_highlight_days=365,
        keep_highlight_months_days=3650,
    )
    print(describe_policy(decay))

    generator = TelcoTraceGenerator(TraceConfig(scale=0.005, days=14))
    spate = Spate(SpateConfig(codec="gzip-ref", decay=decay))
    spate.register_cells(generator.cells_table())

    print("\nweek  live_leaves  stored_bytes  reclaimed_total")
    reclaimed = 0
    for snapshot in generator.generate():
        spate.ingest(snapshot)
        if (snapshot.epoch + 1) % (7 * EPOCHS_PER_DAY) == 0:
            week = (snapshot.epoch + 1) // (7 * EPOCHS_PER_DAY)
            stats = spate.storage_stats()
            print(f"{week:>4}  {spate.index.leaf_count():>11}  "
                  f"{stats.logical_bytes:>12,}  ...")
    spate.finalize()

    stats = spate.storage_stats()
    print(f"\nAfter 14 days: {spate.index.leaf_count()} live leaves "
          f"({stats.logical_bytes:,} logical bytes on the DFS).")

    # Recent window: full-resolution records are still there.
    frontier = spate.index.frontier_epoch
    recent = spate.explore(
        "CDR", ("downflux",), box=None,
        first_epoch=frontier - 47, last_epoch=frontier,
    )
    print(f"\nRecent day: {len(recent.records)} exact records, "
          f"resolutions used: {sorted(set(recent.resolution_by_day.values()))}")

    # Decayed window: the first week's leaves are gone, but the
    # exploration still answers from day summaries.
    old = spate.explore(
        "CDR", ("downflux",), box=None, first_epoch=0, last_epoch=6 * 48 - 1,
    )
    down = old.aggregate("downflux")
    print(f"Decayed week 1: {len(old.records)} exact records "
          f"(leaves evicted), but aggregates survive: "
          f"count={down.count:,} mean={down.mean:,.0f}")
    print(f"  resolutions used: {sorted(set(old.resolution_by_day.values()))}")


if __name__ == "__main__":
    main()
