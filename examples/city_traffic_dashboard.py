#!/usr/bin/env python3
"""City traffic dashboard: heatmaps + template queries over SPATE.

Recreates the SPATE-UI workflow (paper Figure 6) in the terminal:
ingest a day of data, then render the network-load heatmap and run the
UI's template queries (drop calls, busiest cells) through SPATE-SQL.

Run:
    python examples/city_traffic_dashboard.py
"""

from repro.core import Spate, SpateConfig
from repro.query.sql import Database
from repro.telco import TelcoTraceGenerator, TraceConfig
from repro.ui import render_heatmap, run_template


def main() -> None:
    generator = TelcoTraceGenerator(TraceConfig(scale=0.01, days=1))
    spate = Spate(SpateConfig(codec="gzip-ref"))
    spate.register_cells(generator.cells_table())
    for snapshot in generator.generate():
        spate.ingest(snapshot)
    spate.finalize()

    # --- Heatmap: mean downflux per cell over the morning -------------
    morning = spate.explore(
        "CDR", ("downflux",), box=None, first_epoch=10, last_epoch=23
    )
    cell_column = 0  # records are [epoch, downflux]; aggregate per cell
    # For the heatmap we want per-cell means, so re-aggregate from the
    # per-cell summaries the index keeps:
    samples = []
    day = spate.index.day_nodes()[0]
    assert day.summary is not None
    for cell_id, attrs in day.summary.per_cell.get("CDR", {}).items():
        stats = attrs.get("downflux")
        location = spate.cell_locations.get(cell_id)
        if stats and stats.count and location:
            samples.append((location, stats.mean))
    assert spate.area is not None
    print(render_heatmap(
        samples, spate.area, cols=64, rows=16,
        title="Mean downflux per cell (day 1)",
    ))

    # --- Predicted coverage vs measured RSSI (Figure 6's overlay) -----
    from repro.spatial.geometry import Point
    from repro.ui import CoverageModel

    model = CoverageModel(generator.topology, cols=48, rows=12)
    mr_columns, mr_rows = spate.read_rows("MR", 0, 47)
    cell_idx = mr_columns.index("cellid")
    rssi_idx = mr_columns.index("rssi_dbm")
    measurements = [
        (spate.cell_locations[row[cell_idx]], float(row[rssi_idx]))
        for row in mr_rows
        if row[cell_idx] in spate.cell_locations
    ]
    comparison = model.compare_with_measurements(measurements)
    print()
    print(model.render())
    print(f"coverage >= -105 dBm over {model.coverage_fraction(-105):.0%} "
          f"of the area")
    print(f"model vs {comparison.count} MR measurements: "
          f"mean |delta| = {comparison.mean_abs_delta_db:.1f} dB, "
          f"anomalies (>15 dB): {comparison.anomaly_fraction():.1%}")

    # --- Template queries over SPATE-SQL ------------------------------
    db = Database()
    db.register_framework(spate, ["CDR", "NMS", "MR"], first_epoch=0, last_epoch=47)

    print("\nTop dropped-call cells (template: drop_calls)")
    result = run_template(db, "drop_calls", "201601180000", "201601190000")
    for cell, drops in result.rows[:5]:
        print(f"  {cell}: {drops} drops")

    print("\nBusiest cells (template: busiest_cells)")
    result = run_template(db, "busiest_cells", "201601180000", "201601190000")
    for cell, sessions in result.rows[:5]:
        print(f"  {cell}: {sessions} sessions")

    print("\nWeakest measured cells (template: measured_rssi)")
    result = run_template(db, "measured_rssi", "201601180000", "201601190000")
    for cell, rssi, reports in result.rows[:5]:
        print(f"  {cell}: {rssi:.1f} dBm over {reports} reports")

    print("\nAd-hoc SPATE-SQL:")
    sql = (
        "SELECT call_type, COUNT(*) AS n, AVG(duration_s) AS avg_dur "
        "FROM CDR GROUP BY call_type ORDER BY n DESC"
    )
    print(f"  {sql}")
    for call_type, n, avg_dur in db.execute(sql).rows:
        print(f"  {call_type:>6}: {n:>6} sessions, avg duration {avg_dur:.0f}s")


if __name__ == "__main__":
    main()
