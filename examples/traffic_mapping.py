#!/usr/bin/env python3
"""Automated car traffic mapping (paper §X future work).

Uses SPATE as the substrate for a smart-city traffic map: subscriber
handovers between cells approximate vehicle movement, so the per-epoch
rate of cell *changes* in a corridor is a traffic proxy.  The script
ingests a day, computes an hourly movement index from the T4-style
self-join, and renders morning vs evening traffic heatmaps.

Run:
    python examples/traffic_mapping.py
"""

from collections import Counter

from repro.core import Spate, SpateConfig
from repro.telco import TelcoTraceGenerator, TraceConfig
from repro.ui import render_heatmap


def movements_between(spate, first_epoch: int, last_epoch: int) -> Counter:
    """Count cell-to-cell transitions per destination cell."""
    columns, rows = spate.read_rows("CDR", first_epoch, last_epoch)
    if not columns:
        return Counter()
    user_idx = columns.index("caller_id")
    cell_idx = columns.index("cell_id")
    ts_idx = columns.index("ts")
    last_cell: dict[str, str] = {}
    arrivals: Counter = Counter()
    for row in sorted(rows, key=lambda r: r[ts_idx]):
        user, cell = row[user_idx], row[cell_idx]
        previous = last_cell.get(user)
        if previous is not None and previous != cell:
            arrivals[cell] += 1
        last_cell[user] = cell
    return arrivals


def main() -> None:
    generator = TelcoTraceGenerator(TraceConfig(scale=0.01, days=1))
    spate = Spate(SpateConfig(codec="gzip-ref"))
    spate.register_cells(generator.cells_table())
    for snapshot in generator.generate():
        spate.ingest(snapshot)
    spate.finalize()
    assert spate.area is not None

    print("Hourly movement index (cell handovers observed):")
    for hour in range(0, 24, 3):
        first, last = hour * 2, hour * 2 + 5  # three hours of epochs
        moves = sum(movements_between(spate, first, last).values())
        bar = "#" * (moves // 2)
        print(f"  {hour:02d}:00-{hour + 3:02d}:00  {moves:>5}  {bar}")

    for label, window in (("morning rush (07-10h)", (14, 19)),
                          ("evening rush (17-20h)", (34, 39))):
        arrivals = movements_between(spate, *window)
        samples = [
            (spate.cell_locations[cell], float(count))
            for cell, count in arrivals.items()
            if cell in spate.cell_locations
        ]
        print()
        print(render_heatmap(
            samples, spate.area, cols=64, rows=14,
            title=f"Traffic map — {label}",
        ))


if __name__ == "__main__":
    main()
