#!/usr/bin/env python3
"""Parallel analytics over compressed storage (tasks T6-T8).

Runs the paper's heavy workloads — multivariate statistics, k-means
clustering, and linear regression — on the mini parallel engine against
SPATE's compressed storage, then compares against the RAW baseline to
show the response times stay comparable while storage shrinks ~7x.

Run:
    python examples/analytics_pipeline.py
"""

from repro.engine import EngineContext
from repro.evaluation import build_frameworks, ingest_trace
from repro.query import tasks
from repro.telco import TelcoTraceGenerator, TraceConfig


def main() -> None:
    generator = TelcoTraceGenerator(TraceConfig(scale=0.005, days=2))
    setup = build_frameworks(generator, codec="gzip-ref")
    print("Ingesting the trace into RAW, SHAHED and SPATE...")
    ingest_trace(setup)

    for name, framework in setup.frameworks.items():
        print(f"  {name:>7}: {framework.stored_logical_bytes:>12,} bytes stored")

    window = (0, 95)
    with EngineContext(parallelism=4) as ctx:
        for name in ("RAW", "SPATE"):
            framework = setup.frameworks[name]
            print(f"\n=== {name} ===")

            r6 = tasks.t6_statistics(framework, *window, ctx)
            stats = r6.payload
            print(f"T6 colStats over {stats.count} vectors "
                  f"({r6.seconds:.2f}s):")
            for metric, values in stats.as_rows():
                rendered = ", ".join(f"{v:,.1f}" for v in values)
                print(f"    {metric:>12}: [{rendered}]")

            r7 = tasks.t7_clustering(framework, *window, ctx, k=4)
            model = r7.payload
            print(f"T7 k-means k=4 ({r7.seconds:.2f}s): "
                  f"inertia={model.inertia:,.0f}, "
                  f"iterations={model.iterations}, "
                  f"converged={model.converged}")
            for i, centroid in enumerate(model.centroids):
                dur, up, down = centroid
                print(f"    cluster {i}: duration={dur:.0f}s "
                      f"up={up:,.0f}B down={down:,.0f}B")

            r8 = tasks.t8_regression(framework, *window, ctx)
            lin = r8.payload
            print(f"T8 regression ({r8.seconds:.2f}s): "
                  f"downflux ~ {lin.weights[0]:.1f}*duration "
                  f"+ {lin.weights[1]:.3f}*upflux + {lin.intercept:,.0f} "
                  f"(R^2={lin.r_squared:.3f}, n={lin.n_samples})")


if __name__ == "__main__":
    main()
