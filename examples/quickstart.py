#!/usr/bin/env python3
"""Quickstart: ingest a synthetic telco trace into SPATE and explore it.

Generates two days of CDR/NMS snapshots, feeds them through the full
SPATE stack (compression -> replicated DFS -> multi-resolution index),
then runs exploration queries and prints the detected highlights.

Run:
    python examples/quickstart.py
"""

from repro.core import Spate, SpateConfig
from repro.spatial.geometry import BoundingBox
from repro.telco import TelcoTraceGenerator, TraceConfig


def main() -> None:
    # 1. A small synthetic trace (scale=1.0 would match the paper's
    #    1.7M CDR + 21M NMS week).
    generator = TelcoTraceGenerator(TraceConfig(scale=0.01, days=2))

    # 2. SPATE with the zlib-backed gzip codec (swap for "gzip", "7z",
    #    "zstd" or "snappy" to use the from-scratch implementations).
    spate = Spate(SpateConfig(codec="gzip-ref"))
    spate.register_cells(generator.cells_table())

    print("Ingesting 2 days of 30-minute snapshots...")
    total_raw = total_stored = 0
    for snapshot in generator.generate():
        stats = spate.ingest(snapshot)
        total_raw += stats.raw_bytes
        total_stored += stats.stored_bytes
    spate.finalize()

    print(f"  raw bytes:    {total_raw:>12,}")
    print(f"  stored bytes: {total_stored:>12,}  "
          f"(ratio {total_raw / total_stored:.1f}x, before 3x replication)")

    # 3. Explore: Q(a, b, w) — download/upload volume in the south-west
    #    quadrant of the service area over the first day.
    area = spate.area
    assert area is not None
    south_west = BoundingBox(area.min_x, area.min_y, area.center.x, area.center.y)
    result = spate.explore(
        "CDR",
        attributes=("downflux", "upflux"),
        box=south_west,
        first_epoch=0,
        last_epoch=47,
    )
    down = result.aggregate("downflux")
    print(f"\nQ(a=downflux/upflux, b=SW quadrant, w=day 1):")
    print(f"  matching records: {len(result.records)}")
    print(f"  downflux: count={down.count} mean={down.mean:,.0f} max={down.maximum:,}")

    # 4. Highlights: rare events the index surfaced per day.
    highlights = spate.highlights(0, 95)
    print(f"\nDetected {len(highlights)} highlights; first five:")
    for h in highlights[:5]:
        print(f"  [{h.period}] {h.table}.{h.attribute} = {h.value!r} "
              f"({h.frequency}/{h.total} occurrences)")

    # 5. The index itself (Figure 5's structure).
    print("\nTemporal index:")
    print(spate.render_index())


if __name__ == "__main__":
    main()
