#!/usr/bin/env python3
"""Churn prediction over SPATE-stored CDR data.

The paper's related work (Huang et al., SIGMOD'15) shows telco big data
lifts churn-prediction accuracy dramatically versus BSS-only features.
This example assembles per-subscriber behavioural features from a week
of SPATE-stored CDRs (session counts, drop rates, traffic volumes,
mobility) and trains the engine's logistic regression on a synthetic
churn label driven by bad network experience.

Run:
    python examples/churn_prediction.py
"""

import random

from repro.core import Spate, SpateConfig
from repro.engine import EngineContext
from repro.engine.ml import logistic_regression
from repro.telco import TelcoTraceGenerator, TraceConfig


def subscriber_features(spate, first_epoch, last_epoch):
    """Per-subscriber aggregates: [sessions, drop_rate, fail_rate,
    mean_duration, total_down, distinct_cells]."""
    columns, rows = spate.read_rows("CDR", first_epoch, last_epoch)
    idx = {name: columns.index(name) for name in
           ("caller_id", "drop_flag", "result", "duration_s",
            "downflux", "cell_id")}
    per_user: dict[str, dict] = {}
    for row in rows:
        user = row[idx["caller_id"]]
        record = per_user.setdefault(user, {
            "sessions": 0, "drops": 0, "fails": 0,
            "duration": 0, "down": 0, "cells": set(),
        })
        record["sessions"] += 1
        record["drops"] += int(row[idx["drop_flag"]])
        record["fails"] += int(row[idx["result"]] != "OK")
        record["duration"] += int(row[idx["duration_s"]])
        record["down"] += int(row[idx["downflux"]])
        record["cells"].add(row[idx["cell_id"]])
    features = {}
    for user, r in per_user.items():
        n = r["sessions"]
        features[user] = [
            float(n),
            r["drops"] / n,
            r["fails"] / n,
            r["duration"] / n,
            float(r["down"]),
            float(len(r["cells"])),
        ]
    return features


def synthetic_churn_labels(features, seed=7):
    """Churn probability rises with drop/fail rates and falls with usage
    — the behavioural signal the classifier must recover."""
    rng = random.Random(seed)
    labels = {}
    for user, f in features.items():
        sessions, drop_rate, fail_rate = f[0], f[1], f[2]
        logit = -1.5 + 9.0 * drop_rate + 6.0 * fail_rate - 0.02 * sessions
        p = 1.0 / (1.0 + pow(2.718281828, -logit))
        labels[user] = int(rng.random() < p)
    return labels


def main() -> None:
    generator = TelcoTraceGenerator(TraceConfig(scale=0.01, days=3))
    spate = Spate(SpateConfig(codec="gzip-ref"))
    spate.register_cells(generator.cells_table())
    for snapshot in generator.generate():
        spate.ingest(snapshot)
    spate.finalize()

    features = subscriber_features(spate, 0, 3 * 48 - 1)
    labels = synthetic_churn_labels(features)
    print(f"subscribers with activity: {len(features)}, "
          f"churners: {sum(labels.values())}")

    samples = [(features[u], labels[u]) for u in sorted(features)]
    split = int(len(samples) * 0.8)
    train, test = samples[:split], samples[split:]

    with EngineContext(parallelism=4) as ctx:
        model = logistic_regression(ctx.parallelize(train), iterations=250)

    base_rate = max(
        sum(l for __, l in test), len(test) - sum(l for __, l in test)
    ) / len(test)
    print(f"train accuracy: {model.accuracy(train):.1%}")
    print(f"test accuracy:  {model.accuracy(test):.1%} "
          f"(majority baseline {base_rate:.1%})")
    names = ["sessions", "drop_rate", "fail_rate", "mean_dur",
             "downflux", "cells"]
    print("feature weights (raw space):")
    for name, weight in zip(names, model.weights):
        print(f"  {name:>10}: {weight:+.4f}")
    at_risk = sorted(
        features, key=lambda u: model.predict_proba(features[u]), reverse=True
    )[:5]
    print("highest churn risk subscribers:",
          ", ".join(f"{u} ({model.predict_proba(features[u]):.0%})"
                    for u in at_risk))


if __name__ == "__main__":
    main()
