"""Property tests for the temporal index over random epoch sequences."""

from hypothesis import given, settings, strategies as st

from repro.core.snapshot import EPOCHS_PER_DAY, epoch_to_timestamp
from repro.index.temporal import SnapshotLeaf, TemporalIndex


def make_leaf(epoch: int) -> SnapshotLeaf:
    return SnapshotLeaf(
        epoch=epoch,
        table_paths={"CDR": f"/p/{epoch}"},
        raw_bytes=100,
        compressed_bytes=10,
        record_count=1,
    )


#: Strictly-increasing epoch sequences spanning up to ~3 years, so month
#: and year boundaries get exercised.
epoch_sequences = st.lists(
    st.integers(0, 3 * 365 * EPOCHS_PER_DAY), min_size=1, max_size=60,
    unique=True,
).map(sorted)


class TestTemporalIndexProperties:
    @given(epochs=epoch_sequences)
    @settings(max_examples=60, deadline=None)
    def test_every_leaf_lands_in_its_calendar_node(self, epochs):
        index = TemporalIndex()
        for epoch in epochs:
            index.insert_leaf(make_leaf(epoch))
        for day in index.day_nodes():
            for leaf in day.leaves:
                when = epoch_to_timestamp(leaf.epoch)
                assert when.date() == day.day
        for year in index.years:
            for month in year.months:
                assert month.year == year.year
                for day in month.days:
                    assert (day.day.year, day.day.month) == (
                        month.year, month.month
                    )

    @given(epochs=epoch_sequences)
    @settings(max_examples=60, deadline=None)
    def test_leaf_count_and_storage(self, epochs):
        index = TemporalIndex()
        for epoch in epochs:
            index.insert_leaf(make_leaf(epoch))
        assert index.leaf_count() == len(epochs)
        assert index.storage_bytes() == 10 * len(epochs)
        assert [l.epoch for l in index.leaves()] == epochs
        assert index.frontier_epoch == epochs[-1]

    @given(epochs=epoch_sequences)
    @settings(max_examples=60, deadline=None)
    def test_nodes_are_chronologically_ordered(self, epochs):
        index = TemporalIndex()
        for epoch in epochs:
            index.insert_leaf(make_leaf(epoch))
        day_keys = [d.key for d in index.day_nodes()]
        assert day_keys == sorted(day_keys)
        month_keys = [m.key for m in index.month_nodes()]
        assert month_keys == sorted(month_keys)
        year_keys = [y.key for y in index.years]
        assert year_keys == sorted(year_keys)

    @given(epochs=epoch_sequences, lo=st.integers(0, 52560), hi=st.integers(0, 52560))
    @settings(max_examples=60, deadline=None)
    def test_leaves_in_epochs_is_exact_range_filter(self, epochs, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        index = TemporalIndex()
        for epoch in epochs:
            index.insert_leaf(make_leaf(epoch))
        found = {l.epoch for l in index.leaves_in_epochs(lo, hi)}
        assert found == {e for e in epochs if lo <= e <= hi}
