"""Tests for the T1-T8 evaluation tasks across all three frameworks."""

import pytest

from repro.engine import EngineContext
from repro.errors import QueryError
from repro.evaluation import build_frameworks, ingest_trace
from repro.query import tasks
from repro.telco import TelcoTraceGenerator, TraceConfig


@pytest.fixture(scope="module")
def setup():
    generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=17))
    evaluation = build_frameworks(generator, codec="gzip-ref", model_io=False)
    ingest_trace(evaluation)
    return evaluation


@pytest.fixture(scope="module")
def ctx():
    context = EngineContext(parallelism=2)
    yield context
    context.shutdown()


FRAMEWORKS = ["RAW", "SHAHED", "SPATE"]


@pytest.mark.parametrize("name", FRAMEWORKS)
class TestTasksAcrossFrameworks:
    def test_t1_returns_single_snapshot_fluxes(self, setup, name):
        result = tasks.t1_equality(setup.frameworks[name], epoch=10)
        assert result.task == "T1"
        assert result.row_count == len(result.payload) > 0
        columns, rows = setup.frameworks[name].read_rows("CDR", 10, 10)
        assert result.row_count == len(rows)

    def test_t2_range_covers_window(self, setup, name):
        result = tasks.t2_range(setup.frameworks[name], 0, 9)
        single = tasks.t1_equality(setup.frameworks[name], 5)
        assert result.row_count >= single.row_count

    def test_t3_aggregate_groups_by_cell(self, setup, name):
        result = tasks.t3_aggregate(
            setup.frameworks[name], 0, 20, setup.cell_clusters()
        )
        assert result.row_count == len(result.payload)
        assert all(isinstance(v, int) for v in result.payload.values())
        assert result.detail["clusters"]

    def test_t4_join_finds_movers(self, setup, name):
        result = tasks.t4_join(setup.frameworks[name], 0, 20, 40)
        assert result.task == "T4"
        # Mobility model guarantees some subscribers change cells.
        assert result.row_count > 0
        for user, old_cell, new_cell in result.payload:
            assert old_cell != new_cell

    def test_t5_privacy_returns_k_anonymous_set(self, setup, name):
        result = tasks.t5_privacy(setup.frameworks[name], 0, 5, k=3)
        anonymized = result.payload
        assert anonymized.k == 3
        from repro.privacy import is_k_anonymous

        idx = [anonymized.columns.index(q) for q in
               ("cell_id", "plan_type", "tech", "call_type")]
        assert is_k_anonymous(anonymized.rows, idx, 3)

    def test_t6_statistics(self, setup, name, ctx):
        result = tasks.t6_statistics(setup.frameworks[name], 0, 20, ctx)
        stats = result.payload
        assert stats.count == result.row_count > 0
        assert len(stats.mean) == 3

    def test_t7_clustering(self, setup, name, ctx):
        result = tasks.t7_clustering(setup.frameworks[name], 0, 20, ctx, k=2)
        assert result.payload.k == 2
        assert result.detail["inertia"] >= 0

    def test_t8_regression(self, setup, name, ctx):
        result = tasks.t8_regression(setup.frameworks[name], 0, 20, ctx)
        assert result.payload.n_samples == result.row_count > 0
        assert -1.0 <= result.detail["r2"] <= 1.0


class TestTaskEquivalenceAcrossFrameworks:
    """All frameworks store the same data, so answers must agree."""

    def test_t1_identical_everywhere(self, setup):
        results = {
            name: tasks.t1_equality(setup.frameworks[name], 7).payload
            for name in FRAMEWORKS
        }
        assert results["RAW"] == results["SHAHED"] == results["SPATE"]

    def test_t3_identical_everywhere(self, setup):
        results = {
            name: tasks.t3_aggregate(setup.frameworks[name], 0, 30).payload
            for name in FRAMEWORKS
        }
        assert results["RAW"] == results["SHAHED"] == results["SPATE"]

    def test_t4_identical_everywhere(self, setup):
        results = {
            name: tasks.t4_join(setup.frameworks[name], 0, 15, 30).payload
            for name in FRAMEWORKS
        }
        assert results["RAW"] == results["SHAHED"] == results["SPATE"]


class TestTaskValidation:
    def test_t4_window_ordering_enforced(self, setup):
        with pytest.raises(QueryError):
            tasks.t4_join(setup.frameworks["RAW"], 10, 5, 20)

    def test_empty_window_yields_empty_results(self, setup):
        result = tasks.t1_equality(setup.frameworks["RAW"], 40_000)
        assert result.row_count == 0

    def test_heavy_task_empty_window_raises(self, setup, ctx):
        with pytest.raises(QueryError):
            tasks.t6_statistics(setup.frameworks["RAW"], 40_000, 40_001, ctx)

    def test_task_registries(self):
        assert tasks.SIMPLE_TASKS == ("T1", "T2", "T3", "T4", "T5")
        assert tasks.HEAVY_TASKS == ("T6", "T7", "T8")
