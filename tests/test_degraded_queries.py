"""Degraded-mode queries: quarantined leaves, partial answers, deadlines.

Satellite 4's contract: with every replica of one leaf destroyed, a
``partial_ok`` query still answers from the remaining epochs and its
coverage report names exactly which epochs were skipped and why; strict
mode raises instead.
"""

import pytest

from repro.core import DurabilityConfig, Spate, SpateConfig
from repro.errors import LeafQuarantinedError, QueryDeadlineError, StorageError
from repro.query.explore import ExplorationQuery
from repro.query.sql import Database
from repro.telco import TelcoTraceGenerator, TraceConfig

TRACE = TraceConfig(scale=0.002, days=1, seed=99)
EPOCHS = 48
DEAD_EPOCH = 5


@pytest.fixture()
def warehouse():
    """A durable one-day warehouse (leaf cache off so reads hit the DFS)."""
    generator = TelcoTraceGenerator(TRACE)
    spate = Spate(SpateConfig(
        leaf_cache_bytes=0,
        durability=DurabilityConfig(enabled=True),
    ))
    spate.register_cells(generator.cells_table())
    for snapshot in generator.generate():
        spate.ingest(snapshot)
    spate.finalize()
    return spate


def destroy_leaf(spate, epoch):
    """Corrupt every replica of every block of the leaf's files."""
    leaf = spate.index.find_leaf(epoch)
    for path in leaf.table_paths.values():
        for block_id in spate.dfs.namenode.lookup(path).blocks:
            for node_id in list(spate.dfs.namenode.locations(block_id)):
                spate.dfs.datanodes[node_id].corrupt_block(block_id)
    return leaf


class TestQuarantine:
    def test_verify_leaves_flags_damaged_leaf(self, warehouse):
        destroy_leaf(warehouse, DEAD_EPOCH)
        count, reasons = warehouse.verify_leaves()
        assert count == 1
        assert list(reasons) == [DEAD_EPOCH]
        assert warehouse.index.find_leaf(DEAD_EPOCH).quarantined
        assert warehouse.metrics.leaves_quarantined == 1

    def test_strict_query_refuses_quarantined_leaf(self, warehouse):
        destroy_leaf(warehouse, DEAD_EPOCH)
        warehouse.verify_leaves()
        with pytest.raises(LeafQuarantinedError):
            warehouse.explore("CDR", ("downflux",), None, 0, 9)

    def test_partial_query_skips_and_reports_exactly(self, warehouse):
        destroy_leaf(warehouse, DEAD_EPOCH)
        warehouse.verify_leaves()
        result = warehouse.explore(
            "CDR", ("downflux",), None, 0, 9, partial_ok=True
        )
        coverage = result.coverage
        assert coverage.epochs_skipped == {DEAD_EPOCH: "quarantined"}
        assert coverage.epochs_served == [e for e in range(10) if e != DEAD_EPOCH]
        assert not coverage.complete
        assert "1 quarantined" in coverage.describe()
        assert result.records  # the remaining nine epochs still answer
        assert warehouse.metrics.partial_queries == 1
        assert warehouse.metrics.epochs_skipped_degraded == 1

    def test_partial_answer_equals_strict_answer_minus_dead_epoch(self, warehouse):
        intact = warehouse.explore("CDR", ("downflux",), None, 0, 9)
        destroy_leaf(warehouse, DEAD_EPOCH)
        warehouse.verify_leaves()
        degraded = warehouse.explore(
            "CDR", ("downflux",), None, 0, 9, partial_ok=True
        )
        epoch_column = intact.columns.index("epoch") if "epoch" in intact.columns else None
        if epoch_column is None:
            # Records carry no epoch column: compare by re-querying the
            # surviving epochs strictly, one sub-window at a time.
            survivors = []
            for epoch in range(10):
                if epoch != DEAD_EPOCH:
                    survivors.extend(
                        warehouse.explore("CDR", ("downflux",), None, epoch, epoch).records
                    )
            assert degraded.records == survivors
        else:
            assert degraded.records == [
                r for r in intact.records if int(r[epoch_column]) != DEAD_EPOCH
            ]

    def test_unverified_damage_reads_as_unreadable(self, warehouse):
        """Before verify_leaves runs, the damage surfaces at read time:
        strict raises the storage error, partial records the reason."""
        destroy_leaf(warehouse, DEAD_EPOCH)
        with pytest.raises(StorageError):
            warehouse.explore("CDR", ("downflux",), None, 0, 9)
        result = warehouse.explore(
            "CDR", ("downflux",), None, 0, 9, partial_ok=True
        )
        assert list(result.coverage.epochs_skipped) == [DEAD_EPOCH]
        assert result.coverage.epochs_skipped[DEAD_EPOCH].startswith("unreadable")

    def test_node_restart_plus_verify_lifts_quarantine(self, warehouse):
        """Quarantine is state, not a death sentence: when the replicas
        come back, a verify pass clears the flag and reads succeed."""
        leaf = warehouse.index.find_leaf(DEAD_EPOCH)
        holders = {
            node_id
            for path in leaf.table_paths.values()
            for block_id in warehouse.dfs.namenode.lookup(path).blocks
            for node_id in warehouse.dfs.namenode.locations(block_id)
        }
        for node_id in holders:
            warehouse.dfs.kill_datanode(node_id)
        count, __ = warehouse.verify_leaves()
        assert count >= 1 and leaf.quarantined
        for node_id in holders:
            warehouse.dfs.restart_datanode(node_id)
        count, __ = warehouse.verify_leaves()
        assert count == 0 and not leaf.quarantined
        result = warehouse.explore("CDR", ("downflux",), None, 0, 9)
        assert result.coverage.complete


class TestDeadlines:
    def test_strict_deadline_raises(self, warehouse):
        engine = warehouse._engine()
        query = ExplorationQuery("CDR", ("downflux",), None, 0, 9)
        with pytest.raises(QueryDeadlineError):
            engine.evaluate(query, deadline_s=0.0)

    def test_partial_deadline_reports_skipped_epochs(self, warehouse):
        engine = warehouse._engine()
        query = ExplorationQuery("CDR", ("downflux",), None, 0, 9)
        result = engine.evaluate(query, partial_ok=True, deadline_s=0.0)
        coverage = result.coverage
        assert coverage.deadline_hit
        assert not coverage.complete
        assert set(coverage.epochs_skipped.values()) == {"deadline"}
        assert coverage.epochs_served == []

    def test_explore_accepts_deadline_without_expiry(self, warehouse):
        result = warehouse.explore(
            "CDR", ("downflux",), None, 0, 3, deadline_ms=60_000
        )
        assert result.coverage.complete

    def test_config_default_deadline_is_used(self, warehouse):
        spate = warehouse
        spate.config = SpateConfig(query_deadline_ms=60_000)
        result = spate.explore("CDR", ("downflux",), None, 0, 3)
        assert result.coverage.complete


class TestSqlDegraded:
    def test_strict_registration_raises_on_damage(self, warehouse):
        destroy_leaf(warehouse, DEAD_EPOCH)
        warehouse.verify_leaves()
        db = Database()
        with pytest.raises(LeafQuarantinedError):
            db.register_framework(warehouse, ["CDR"], 0, 9)

    def test_partial_registration_reports_scan_coverage(self, warehouse):
        destroy_leaf(warehouse, DEAD_EPOCH)
        warehouse.verify_leaves()
        db = Database()
        db.register_framework(warehouse, ["CDR"], 0, 9, partial_ok=True)
        coverage = db.scan_coverage["CDR"]
        assert list(coverage["epochs_skipped"]) == [DEAD_EPOCH]
        assert coverage["epochs_served"] == [e for e in range(10) if e != DEAD_EPOCH]
        result = db.execute("SELECT COUNT(*) AS n FROM CDR")
        assert int(result.rows[0][0]) > 0

    def test_sql_deadline_raises_mid_execution(self, warehouse, monkeypatch):
        db = Database()
        db.register_framework(warehouse, ["CDR"], 0, 3)
        import repro.query.sql.executor as executor_module

        ticks = iter(range(0, 10_000, 100))  # each call jumps 100 s
        monkeypatch.setattr(
            executor_module.time, "monotonic", lambda: float(next(ticks))
        )
        with pytest.raises(QueryDeadlineError):
            db.execute("SELECT COUNT(*) AS n FROM CDR", deadline_ms=1000)

    def test_sql_without_deadline_is_unlimited(self, warehouse):
        db = Database()
        db.register_framework(warehouse, ["CDR"], 0, 3)
        result = db.execute("SELECT COUNT(*) AS n FROM CDR")
        assert int(result.rows[0][0]) > 0
