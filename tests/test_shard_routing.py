"""Region-routed scatter and the RegionMap tiling fix.

The legacy tile->group fold ``(row * G + col) % G`` drops the row term
(it is a multiple of the modulus), collapsing the region grid to
vertical stripes.  Layout 2 factors the grid ``cols x rows`` with
``cols * rows == region_groups`` so every tile IS a group; layout 1 is
preserved bit-for-bit behind ``ShardConfig.region_layout`` so existing
warehouses keep their stripe placement.

Routing is a *superset* contract: a query's candidate group set always
includes group 0 (unknown cells and cell-less tables live there) and
every group that can hold a matching row — so routed answers must be
byte-identical to full scatter, across shard counts, both layouts, and
after decay.  These tests pin that contract, the clamp logging for
``replication > shards``, the socket transport's parity, and the
deadline-budget thread-local hygiene fixes.
"""

from __future__ import annotations

import logging
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DurabilityConfig, Spate, SpateConfig
from repro.core.config import ShardConfig
from repro.dfs.filesystem import SimulatedDFS
from repro.errors import (
    ConfigError,
    QueryError,
    ShardError,
    ShardTimeoutError,
    ShardUnavailableError,
)
from repro.query.sql.planner import ScanPredicate, cell_equality_values
from repro.shard import (
    DeadlineBudget,
    RegionMap,
    ShardClient,
    ShardedSpate,
    effective_replication,
    region_grid_shape,
    shards_for_group,
)
from repro.shard import wire
from repro.spatial.geometry import BoundingBox, Point
from repro.telco import TelcoTraceGenerator, TraceConfig

TRACE = TraceConfig(scale=0.002, days=1, seed=41)
EPOCHS = 8


def build_sharded(
    shards: int, epochs: int = EPOCHS, **shard_kwargs
) -> ShardedSpate:
    generator = TelcoTraceGenerator(TRACE)
    warehouse = ShardedSpate(
        SpateConfig(
            sharding=ShardConfig(
                shards=shards,
                group_replication=shard_kwargs.pop("group_replication", 2),
                **shard_kwargs,
            )
        )
    )
    warehouse.register_cells(generator.cells_table())
    for epoch in range(epochs):
        warehouse.ingest(generator.snapshot(epoch))
    return warehouse


def small_box(warehouse: ShardedSpate) -> BoundingBox:
    """A box over ~1/5 of each axis of the service area — spatially
    selective in both dimensions, so both layouts can route."""
    points = list(warehouse.cell_locations.values())
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return BoundingBox(
        min(xs),
        min(ys),
        min(xs) + (max(xs) - min(xs)) * 0.2,
        min(ys) + (max(ys) - min(ys)) * 0.2,
    )


# ----------------------------------------------------------------------
# The tiling fix itself
# ----------------------------------------------------------------------


class TestRegionLayouts:
    def test_grid_shapes(self):
        assert region_grid_shape(8, 1) == (8, 8)
        assert region_grid_shape(8, 2) == (4, 2)
        assert region_grid_shape(16, 2) == (4, 4)
        assert region_grid_shape(12, 2) == (4, 3)
        # Prime counts degenerate to stripes by arithmetic necessity.
        assert region_grid_shape(7, 2) == (7, 1)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            RegionMap({}, 8, layout=3)
        with pytest.raises(ConfigError):
            ShardConfig(region_layout=3)

    def _grid_cells(self, n: int) -> dict[str, Point]:
        """n x n cells on an integer lattice: cell ``r-c`` at (c, r)."""
        return {
            f"{r}-{c}": Point(float(c), float(r))
            for r in range(n)
            for c in range(n)
        }

    def test_layout1_drops_the_row_term(self):
        """The legacy fold reduces to the column: two cells differing
        only in y land in the same group — stripes, not tiles."""
        cells = self._grid_cells(8)
        legacy = RegionMap(cells, 8, layout=1)
        by_column = {}
        for r in range(8):
            for c in range(8):
                group = legacy.group_of(f"{r}-{c}")
                by_column.setdefault(c, set()).add(group)
        # Every column is one group, regardless of row.
        assert all(len(groups) == 1 for groups in by_column.values())

    def test_layout2_tiles_in_two_dimensions(self):
        """The fixed fold distinguishes rows: the 4x2 grid for 8 groups
        is a tile<->group bijection, so all 8 groups are populated and
        some same-column cell pair lands in different groups."""
        cells = self._grid_cells(8)
        fixed = RegionMap(cells, 8, layout=2)
        groups = {fixed.group_of(cid) for cid in cells}
        assert groups == set(range(8))
        assert any(
            fixed.group_of(f"0-{c}") != fixed.group_of(f"7-{c}")
            for c in range(8)
        )

    def test_group_of_unknown_cell_is_zero(self):
        region_map = RegionMap(self._grid_cells(4), 8, layout=2)
        assert region_map.group_of("nowhere") == 0


class TestReplicationClamp:
    def test_effective_replication(self):
        assert effective_replication(3, 2) == 2
        assert effective_replication(1, 2) == 1
        assert effective_replication(2, 5) == 2
        assert effective_replication(0, 0) == 1

    def test_replicas_are_distinct_shards(self):
        for group in range(8):
            chain = shards_for_group(group, 3, 2)
            assert len(chain) == len(set(chain)) == 2

    def test_clamp_is_logged_once_per_pair(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.shard.key"):
            shards_for_group(0, 2, 9)
            shards_for_group(1, 2, 9)
            shards_for_group(5, 2, 9)
        clamp_logs = [
            r for r in caplog.records if "clamped" in r.getMessage()
        ]
        assert len(clamp_logs) == 1
        assert "replication 9 clamped to 2" in clamp_logs[0].getMessage()

    def test_clamp_surfaces_in_metrics(self):
        warehouse = build_sharded(1, epochs=1, group_replication=2)
        try:
            assert warehouse.effective_replication == 1
            assert warehouse.metrics.shard_replication_configured == 2
            assert warehouse.metrics.shard_replication_effective == 1
            summary = warehouse.metrics.summary()
            assert "clamped to the shard count" in summary
        finally:
            warehouse.close()


# ----------------------------------------------------------------------
# Routing soundness (property): candidate sets are supersets
# ----------------------------------------------------------------------


@st.composite
def _cells_and_box(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    coords = st.floats(
        min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
    )
    cells = {
        f"c{i}": Point(draw(coords), draw(coords)) for i in range(n)
    }
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return cells, BoundingBox(x1, y1, x2, y2)


class TestRoutingSoundness:
    @settings(max_examples=120, deadline=None)
    @given(
        data=_cells_and_box(),
        region_groups=st.sampled_from([1, 4, 7, 8, 16]),
        layout=st.sampled_from([1, 2]),
    )
    def test_box_routing_covers_every_contained_cell(
        self, data, region_groups, layout
    ):
        """Any cell whose centroid lies in the box must have its group
        in the candidate set — the superset contract box routing rests
        on — and group 0 is always a candidate."""
        cells, box = data
        region_map = RegionMap(cells, region_groups, layout=layout)
        candidates = region_map.groups_for_box(box)
        assert 0 in candidates
        for cell_id, point in cells.items():
            if box.contains(point):
                assert region_map.group_of(cell_id) in candidates

    @settings(max_examples=60, deadline=None)
    @given(data=_cells_and_box(), layout=st.sampled_from([1, 2]))
    def test_cell_routing_covers_named_cells(self, data, layout):
        cells, __ = data
        region_map = RegionMap(cells, 8, layout=layout)
        named = sorted(cells)[: max(1, len(cells) // 3)]
        candidates = region_map.groups_for_cells(named)
        assert 0 in candidates
        for cell_id in named:
            assert region_map.group_of(cell_id) in candidates


class TestCellEqualityValues:
    def test_extracts_cell_pins(self):
        predicates = [
            ScanPredicate("cell_id", "=", "7"),
            ScanPredicate("duration_s", ">=", 30),
            ScanPredicate("cell_id", "=", 9),
        ]
        assert cell_equality_values("CDR", predicates) == ["7", "9"]

    def test_none_without_cell_pins(self):
        assert cell_equality_values("CDR", []) is None
        assert (
            cell_equality_values("CDR", [ScanPredicate("duration_s", ">", 1)])
            is None
        )
        # Range predicates on the cell column pin nothing.
        assert (
            cell_equality_values("CDR", [ScanPredicate("cell_id", ">", "3")])
            is None
        )
        # Unknown tables have no cell column.
        assert (
            cell_equality_values("NOPE", [ScanPredicate("cell_id", "=", "3")])
            is None
        )


# ----------------------------------------------------------------------
# Routed scatter == full scatter, byte for byte
# ----------------------------------------------------------------------


@pytest.mark.parametrize("shards", [1, 2, 3])
@pytest.mark.parametrize("layout", [1, 2])
class TestRoutedDifferential:
    def test_boxed_explore_matches_full_scatter(self, shards, layout):
        warehouse = build_sharded(shards, region_layout=layout)
        try:
            box = small_box(warehouse)
            args = ("CDR", ("downflux", "upflux"), box, 0, EPOCHS - 1)
            routed = warehouse.explore(*args)
            assert routed.coverage.groups_routed, (shards, layout)
            warehouse.route_queries = False
            full = warehouse.explore(*args)
            assert full.coverage.groups_routed == []
            assert routed.records == full.records
            assert routed.columns == full.columns
            assert {k: v.to_dict() for k, v in routed.aggregates.items()} == {
                k: v.to_dict() for k, v in full.aggregates.items()
            }
        finally:
            warehouse.close()

    def test_cell_pinned_sql_matches_full_scatter(self, shards, layout):
        warehouse = build_sharded(shards, region_layout=layout)
        try:
            cell_id = next(
                cid
                for cid in sorted(warehouse.cell_locations)
                if warehouse._region_map.group_of(cid) != 0
            )
            sql = (
                "SELECT cell_id, COUNT(*) AS n, SUM(duration_s) AS total "
                f"FROM CDR WHERE cell_id = '{cell_id}' GROUP BY cell_id"
            )
            routed = warehouse.sql(sql)
            routed_away = warehouse.last_scan_coverage["groups_routed"]
            assert routed_away, (shards, layout)
            warehouse.route_queries = False
            full = warehouse.sql(sql)
            assert warehouse.last_scan_coverage["groups_routed"] == []
            assert routed.columns == full.columns
            assert routed.rows == full.rows
        finally:
            warehouse.close()

    def test_routing_survives_decay_and_fungus(self, shards, layout):
        warehouse = build_sharded(shards, region_layout=layout)
        try:
            warehouse.decay_groups(older_than_epoch=4, keep_fraction=0.25)
            warehouse.run_decay()
            box = small_box(warehouse)
            args = ("CDR", ("downflux",), box, 0, EPOCHS - 1)
            routed = warehouse.explore(*args)
            warehouse.route_queries = False
            full = warehouse.explore(*args)
            assert routed.records == full.records
            assert {k: v.to_dict() for k, v in routed.aggregates.items()} == {
                k: v.to_dict() for k, v in full.aggregates.items()
            }
        finally:
            warehouse.close()


class TestRoutingGuards:
    def test_unboxed_explore_scatters_to_all_groups(self):
        warehouse = build_sharded(2, epochs=2)
        try:
            result = warehouse.explore(
                "CDR", ("downflux",), None, 0, 1
            )
            assert result.coverage.groups_routed == []
        finally:
            warehouse.close()

    def test_reregistering_cells_after_ingest_disables_routing(self):
        warehouse = build_sharded(2, epochs=2)
        try:
            assert warehouse.route_queries
            generator = TelcoTraceGenerator(TRACE)
            warehouse.register_cells(generator.cells_table())
            assert not warehouse.route_queries
            assert warehouse._route_groups(
                box=small_box(warehouse)
            ) == list(range(warehouse.region_groups))
        finally:
            warehouse.close()

    def test_explain_analyze_itemises_routed_groups(self):
        warehouse = build_sharded(2)
        try:
            cell_id = next(
                cid
                for cid in sorted(warehouse.cell_locations)
                if warehouse._region_map.group_of(cid) != 0
            )
            report = warehouse.explain(
                "SELECT COUNT(*) AS n FROM CDR "
                f"WHERE cell_id = '{cell_id}'"
            )
            assert "groups routed away" in report
        finally:
            warehouse.close()

    def test_coverage_describe_mentions_routing(self):
        warehouse = build_sharded(2)
        try:
            result = warehouse.explore(
                "CDR",
                ("downflux",),
                small_box(warehouse),
                0,
                EPOCHS - 1,
            )
            routed = len(result.coverage.groups_routed)
            assert result.coverage.complete
            assert f"{routed} groups routed away" in result.coverage.describe()
        finally:
            warehouse.close()


# ----------------------------------------------------------------------
# region_layout is part of the warehouse creation record
# ----------------------------------------------------------------------


class TestRegionLayoutRecord:
    def _config(self, layout: int) -> SpateConfig:
        return SpateConfig(
            durability=DurabilityConfig(enabled=True),
            sharding=ShardConfig(region_layout=layout),
        )

    def _build(self, layout: int) -> Spate:
        generator = TelcoTraceGenerator(TRACE)
        spate = Spate(self._config(layout), dfs=SimulatedDFS())
        spate.register_cells(generator.cells_table())
        for epoch in range(3):
            spate.ingest(generator.snapshot(epoch))
        return spate

    def test_layout_recorded_at_creation(self):
        spate = self._build(2)
        assert spate.stored_warehouse_meta()["region_layout"] == 2

    def test_reopen_with_other_layout_fails_fast(self):
        spate = self._build(2)
        dfs = spate.dfs
        del spate
        with pytest.raises(ConfigError, match="region_layout"):
            Spate.open(self._config(1), dfs=dfs)

    def test_reopen_with_same_layout_works(self):
        spate = self._build(1)
        dfs = spate.dfs
        del spate
        reopened = Spate.open(self._config(1), dfs=dfs)
        assert reopened.stored_warehouse_meta()["region_layout"] == 1

    def test_legacy_record_means_layout_one(self):
        """A creation record without the key predates the fix: layout 1
        placement is assumed, so opening with layout 2 must refuse."""
        import json

        spate = self._build(1)
        dfs = spate.dfs
        meta = spate.stored_warehouse_meta()
        del meta["region_layout"]
        dfs.delete_file(Spate.WAREHOUSE_META_PATH)
        dfs.write_file(
            Spate.WAREHOUSE_META_PATH,
            json.dumps(meta, sort_keys=True).encode("utf-8"),
        )
        del spate
        reopened = Spate.open(self._config(1), dfs=dfs)
        assert reopened.stored_warehouse_meta().get("region_layout") is None
        dfs = reopened.dfs
        del reopened
        with pytest.raises(ConfigError, match="region_layout"):
            Spate.open(self._config(2), dfs=dfs)


# ----------------------------------------------------------------------
# Socket transport: real worker processes behind the same ShardClient
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def socket_pair():
    """An inline single-shard reference and a 2-shard socket warehouse
    over the same trace."""
    inline = build_sharded(1, group_replication=1)
    socketed = build_sharded(2, transport="socket")
    yield inline, socketed
    inline.close()
    socketed.close()


class TestSocketTransport:
    def test_read_rows_parity(self, socket_pair):
        inline, socketed = socket_pair
        want = inline.read_rows("CDR", 0, EPOCHS - 1)
        got = socketed.read_rows("CDR", 0, EPOCHS - 1)
        assert got == want

    def test_explore_parity(self, socket_pair):
        inline, socketed = socket_pair
        args = ("CDR", ("downflux", "upflux"), None, 0, EPOCHS - 1)
        want = inline.explore(*args)
        got = socketed.explore(*args)
        assert got.records == want.records
        assert got.columns == want.columns
        assert {k: v.to_dict() for k, v in got.aggregates.items()} == {
            k: v.to_dict() for k, v in want.aggregates.items()
        }

    def test_sql_parity(self, socket_pair):
        inline, socketed = socket_pair
        sql = (
            "SELECT call_type, COUNT(*) AS n, SUM(duration_s) AS total "
            "FROM CDR GROUP BY call_type"
        )
        assert socketed.sql(sql).rows == inline.sql(sql).rows

    def test_routed_explore_parity(self, socket_pair):
        inline, socketed = socket_pair
        box = small_box(socketed)
        args = ("CDR", ("downflux",), box, 0, EPOCHS - 1)
        got = socketed.explore(*args)
        assert got.coverage.groups_routed
        assert got.records == inline.explore(*args).records

    def test_kill_and_recover_over_the_wire(self, socket_pair):
        __, socketed = socket_pair
        sql = "SELECT COUNT(*) AS n FROM CDR"
        want = socketed.sql(sql).rows
        socketed.kill_shard(0)
        with pytest.raises(ShardUnavailableError):
            socketed.workers[0].ping()
        # Replication 2 over 2 shards: every group still answers.
        assert socketed.sql(sql).rows == want
        socketed.recover_shard(0)
        assert socketed.workers[0].ping() == "ok"
        assert socketed.sql(sql).rows == want

    def test_unknown_method_raises_shard_error(self, socket_pair):
        __, socketed = socket_pair
        with pytest.raises(ShardError, match="unknown rpc method"):
            socketed.workers[0].definitely_not_a_method()

    def test_application_error_crosses_by_class(self, socket_pair):
        """A worker-side application error must re-raise as its own
        class, not as a shard failure — the retry stack must not treat
        a deterministic QueryError as retryable."""
        __, socketed = socket_pair
        proxy = socketed.workers[0]
        snapshot_error = None
        try:
            # Duplicate finalize on the worker raises QueryError from
            # the group store.
            proxy.finalize(0)
            proxy.finalize(0)
        except QueryError as exc:
            snapshot_error = exc
        assert isinstance(snapshot_error, QueryError)

    def test_coordinator_restart_reattaches(self, socket_pair):
        inline, socketed = socket_pair
        sql = (
            "SELECT call_type, COUNT(*) AS n FROM CDR GROUP BY call_type"
        )
        want = inline.sql(sql).rows
        revived = ShardedSpate(
            socketed.config, worker_endpoints=socketed.worker_endpoints
        )
        try:
            summary = revived.resync()
            assert summary["frontier"] == EPOCHS - 1
            assert "CDR" in summary["tables"]
            # Reattached coordinators answer by full scatter: the
            # rebuilt map cannot be proven to match old placement.
            assert revived.sql(sql).rows == want
        finally:
            revived.close()
        # The attacher's close must not take the workers down.
        assert socketed.sql(sql).rows == want

    def test_endpoints_require_socket_transport(self):
        with pytest.raises(ShardError, match="socket"):
            ShardedSpate(
                SpateConfig(sharding=ShardConfig(shards=2)),
                worker_endpoints={0: ("127.0.0.1", 1), 1: ("127.0.0.1", 2)},
            )


class TestWireCodec:
    def test_containers_round_trip(self):
        value = {
            "plain": [1, 2.5, None, True, "x"],
            "tuple": (1, "a"),
            "set": {3, 1},
            "frozen": frozenset({"b"}),
            "intkeys": {1: "one", (2, 3): "pair"},
        }
        assert wire.decode_value(wire.encode_value(value)) == value

    def test_dataclasses_round_trip(self):
        stats = ScanPredicate(column="cell_id", op="=", value="7")
        assert wire.decode_value(wire.encode_value(stats)) == stats

    def test_unencodable_value_raises(self):
        with pytest.raises(wire.WireError):
            wire.encode_value(object())

    def test_non_repro_dataclass_refused(self):
        payload = {"__dc__": "os.path:something", "f": {}}
        with pytest.raises(wire.WireError):
            wire.decode_value(payload)

    def test_errors_round_trip_by_class(self):
        for exc in (QueryError("bad sql"), ValueError("nope"),
                    ShardTimeoutError("slow")):
            rebuilt = wire.decode_error(wire.encode_error(exc))
            assert type(rebuilt) is type(exc)
            assert str(rebuilt) == str(exc)

    def test_unknown_error_module_degrades_to_shard_error(self):
        rebuilt = wire.decode_error(
            {"module": "evil", "qualname": "Boom", "message": "x"}
        )
        assert isinstance(rebuilt, ShardError)
        assert "Boom" in str(rebuilt)


# ----------------------------------------------------------------------
# Deadline-budget hygiene on pooled / reused lanes
# ----------------------------------------------------------------------


class _SlowWorker:
    """A worker double whose one method blocks until released."""

    alive = True

    def __init__(self) -> None:
        self.release = threading.Event()
        self.slow_once = True

    def ping(self) -> str:
        return "pong"

    def work(self) -> str:
        if self.slow_once:
            self.slow_once = False
            self.release.wait(timeout=10.0)
        return "done"


class TestThreadLaneHygiene:
    def test_timed_out_call_does_not_poison_the_lane(self):
        """A timed-out RPC keeps running on the shard's single lane;
        the next (fast) call must get a fresh lane instead of queueing
        behind the stale one and deadline-failing through no fault of
        its own."""
        worker = _SlowWorker()
        client = ShardClient(
            {0: worker},
            ShardConfig(transport="thread", rpc_timeout_ms=100),
        )
        try:
            with pytest.raises(ShardTimeoutError):
                client.call(0, "work", retry=False)
            start = time.perf_counter()
            assert client.call(0, "work", retry=False) == "done"
            assert time.perf_counter() - start < 5.0
        finally:
            worker.release.set()
            client.close()

    def test_nested_sql_restores_outer_deadline(self):
        warehouse = build_sharded(1, epochs=2, group_replication=1)
        try:
            sentinel = DeadlineBudget(None)
            warehouse._scan_tls.deadline = sentinel
            warehouse.sql("SELECT COUNT(*) AS n FROM CDR")
            assert warehouse._deadline() is sentinel
            warehouse.explain("SELECT COUNT(*) AS n FROM CDR")
            assert warehouse._deadline() is sentinel
        finally:
            warehouse._scan_tls.deadline = None
            warehouse.close()
