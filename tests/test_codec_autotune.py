"""Adaptive codec selection: selector units, dictionary store,
recompaction, and the headline property — query answers are
byte-identical whether leaves are stored under ``codec="auto"``, any
static codec, or after a background recompaction pass."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.autotune import (
    CodecSelector,
    DictionaryStore,
    resolve_codec,
)
from repro.compression.base import CodecStats
from repro.compression.zstd import ZstdDictionary
from repro.core import DurabilityConfig, Spate, SpateConfig
from repro.core.config import AutotuneConfig, DecayPolicyConfig
from repro.dfs.filesystem import SimulatedDFS
from repro.errors import CompressionError
from repro.telco import TelcoTraceGenerator, TraceConfig

EPOCHS = 12
CANDIDATES = ("gzip-ref", "bz2-ref", "7z-ref")


def _dfs() -> SimulatedDFS:
    return SimulatedDFS(block_size=1 << 20, default_replication=3)


def _build(codec: str, snapshots, cells, **kwargs) -> Spate:
    config = SpateConfig(
        codec=codec,
        autotune=AutotuneConfig(candidates=CANDIDATES, **kwargs),
    )
    spate = Spate(config, dfs=_dfs())
    spate.register_cells(cells)
    for snapshot in snapshots:
        spate.ingest(snapshot)
    spate.finalize()
    return spate


@pytest.fixture(scope="module")
def trace():
    generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=42))
    cells = generator.cells_table()
    return cells, [generator.snapshot(epoch) for epoch in range(EPOCHS)]


@pytest.fixture(scope="module")
def warehouses(trace):
    """auto + every static candidate over the same snapshots; the auto
    warehouse is additionally recompacted (answers must not move)."""
    cells, snapshots = trace
    built = {"auto": _build("auto", snapshots, cells, recompact_after_epochs=4)}
    for name in CANDIDATES:
        built[name] = _build(name, snapshots, cells)
    built["auto"].recompact()
    return built


# ----------------------------------------------------------------------
# CodecSelector
# ----------------------------------------------------------------------


class TestCodecSelector:
    def test_densest_wins_with_zero_latency_weight(self):
        selector = CodecSelector(
            AutotuneConfig(candidates=CANDIDATES, latency_weight=0.0)
        )
        payload = (b"cdr,2016,call,ok," * 600)[: 8 * 1024]
        choice = selector.choose("CDR", payload)
        sizes = {s.label: s.stats.compressed_bytes for s in choice.scores}
        assert sizes[choice.label] == min(sizes.values())

    def test_score_formula(self):
        selector = CodecSelector(
            AutotuneConfig(candidates=CANDIDATES, latency_weight=0.5)
        )
        stats = CodecStats(
            codec="x",
            raw_bytes=1000,
            compressed_bytes=250,
            compress_seconds=0.001,
            decompress_seconds=0.001,
        )
        # density 0.25 + 0.5 * 2000us / 1000 bytes = 1.25
        assert selector.score(stats) == pytest.approx(0.25 + 0.5 * 2.0)

    def test_report_accumulates(self):
        selector = CodecSelector(AutotuneConfig(candidates=CANDIDATES))
        payload = b"telco " * 2000
        for __ in range(3):
            selector.choose("NMS", payload)
        report = selector.report
        assert report.payloads_scored == 3
        assert sum(report.selections.values()) == 3
        assert set(report.by_label) == set(CANDIDATES)
        assert "wins" in report.describe()

    def test_sample_cap_respected(self):
        selector = CodecSelector(
            AutotuneConfig(candidates=("gzip-ref",), sample_bytes=1024)
        )
        selector.choose("CDR", b"z" * (1 << 20))
        assert selector.report.sampled_bytes == 1024

    def test_dictionary_training_and_candidates(self):
        store = DictionaryStore(_dfs())
        selector = CodecSelector(
            AutotuneConfig(
                candidates=("gzip-ref", "zstd"),
                train_dictionaries=True,
                dictionary_window=2,
            ),
            store,
        )
        payload = b"shared-telco-preamble|" * 400
        selector.observe("CDR", payload)
        assert selector.report.dictionaries_trained == 0  # window not full
        selector.observe("CDR", payload)
        assert selector.report.dictionaries_trained == 1
        labels = [c[0] for c in selector.candidates_for("CDR")]
        assert "zstd+dict" in labels
        # The trained dictionary round-trips through the stored blob.
        dict_id = store.latest_for("CDR")
        codec = resolve_codec("zstd", selector.dict_blob(dict_id))
        assert codec.decompress(codec.compress(payload)) == payload

    def test_no_training_without_zstd_candidate(self):
        selector = CodecSelector(
            AutotuneConfig(
                candidates=("gzip-ref",),
                train_dictionaries=True,
                dictionary_window=2,
            ),
            DictionaryStore(_dfs()),
        )
        for __ in range(4):
            selector.observe("CDR", b"abc" * 1000)
        assert selector.report.dictionaries_trained == 0


# ----------------------------------------------------------------------
# DictionaryStore
# ----------------------------------------------------------------------


class TestDictionaryStore:
    def test_put_get_latest(self):
        dfs = _dfs()
        store = DictionaryStore(dfs)
        trained = ZstdDictionary.train([b"common-phrase " * 50] * 4)
        dict_id = store.put("CDR", trained)
        assert store.get(dict_id).data == trained.data
        assert store.latest_for("CDR") == dict_id
        assert store.latest_for("NMS") is None

    def test_survives_reopen(self):
        dfs = _dfs()
        trained = ZstdDictionary.train([b"persist-me " * 60] * 4)
        dict_id = DictionaryStore(dfs).put("NMS", trained)
        fresh = DictionaryStore(dfs)
        assert fresh.get(dict_id).data == trained.data
        assert fresh.latest_for("NMS") == dict_id

    def test_put_is_idempotent(self):
        dfs = _dfs()
        store = DictionaryStore(dfs)
        trained = ZstdDictionary.train([b"dup " * 100] * 4)
        assert store.put("CDR", trained) == store.put("CDR", trained)
        assert len(dfs.list_dir("/spate/dicts")) == 1

    def test_corrupt_and_foreign_files_are_skipped(self):
        dfs = _dfs()
        dfs.write_file("/spate/dicts/CDR-0001-deadbeef.dict", b"not a dict")
        dfs.write_file("/spate/dicts/README.txt", b"unrelated")
        store = DictionaryStore(dfs)
        assert store.latest_for("CDR") is None
        with pytest.raises(CompressionError):
            store.get(0xDEADBEEF)


# ----------------------------------------------------------------------
# Self-describing leaves
# ----------------------------------------------------------------------


class TestLeafTags:
    def test_every_live_leaf_is_tagged(self, warehouses):
        for name, spate in warehouses.items():
            for leaf in spate.index.leaves():
                if leaf.decayed:
                    continue
                for table in leaf.table_paths:
                    codec = leaf.codec_for(table)
                    assert codec is not None, (name, leaf.epoch, table)
                    if name != "auto":
                        assert codec == name

    def test_auto_paths_match_tags(self, warehouses):
        for leaf in warehouses["auto"].index.leaves():
            if leaf.decayed:
                continue
            for table, path in leaf.table_paths.items():
                assert path.endswith("." + leaf.codec_for(table))


# ----------------------------------------------------------------------
# The headline property: answers never depend on the codec
# ----------------------------------------------------------------------


class TestAnswersCodecIndependent:
    @given(
        first=st.integers(min_value=0, max_value=EPOCHS - 1),
        span=st.integers(min_value=0, max_value=EPOCHS - 1),
        table=st.sampled_from(["CDR", "NMS", "MR"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_explore_identical(self, warehouses, first, span, table):
        last = min(first + span, EPOCHS - 1)
        attrs = {"CDR": ("downflux", "upflux"), "NMS": ("kpi",), "MR": ("rssi_dbm",)}
        reference = None
        for spate in warehouses.values():
            result = spate.explore(table, attrs[table], None, first, last)
            answer = (result.records, [h.to_dict() for h in result.highlights])
            if reference is None:
                reference = answer
            else:
                assert answer == reference

    def test_sql_identical(self, warehouses):
        reference = None
        for spate in warehouses.values():
            db = spate.sql_database()
            rows = db.execute(
                "SELECT call_type, COUNT(*) FROM CDR GROUP BY call_type"
            ).rows
            if reference is None:
                reference = rows
            else:
                assert rows == reference


# ----------------------------------------------------------------------
# Recompaction
# ----------------------------------------------------------------------


class TestRecompaction:
    def test_pass_reclaims_and_preserves_answers(self, trace):
        cells, snapshots = trace
        spate = _build("gzip-ref", snapshots, cells, recompact_after_epochs=2)
        before = spate.explore("CDR", ("downflux", "upflux"), None, 0, EPOCHS - 1)
        report = spate.recompact()
        assert report.leaves_considered > 0
        assert report.bytes_after <= report.bytes_before
        after = spate.explore("CDR", ("downflux", "upflux"), None, 0, EPOCHS - 1)
        assert after.records == before.records
        # gzip-ref is never the densest of the candidate set here, so
        # the static warehouse must actually get rewritten.
        assert report.tables_rewritten > 0
        for epoch in report.rewritten_epochs:
            leaf = spate.index.find_leaf(epoch)
            for table in leaf.table_paths:
                assert leaf.codec_for(table) in CANDIDATES

    def test_second_pass_is_noop(self, trace):
        cells, snapshots = trace
        spate = _build("auto", snapshots, cells, recompact_after_epochs=2)
        spate.recompact()
        again = spate.recompact()
        assert not again.mutated
        assert again.tables_rewritten == 0

    def test_max_leaves_caps_the_pass(self, trace):
        cells, snapshots = trace
        spate = _build("gzip-ref", snapshots, cells, recompact_after_epochs=2)
        report = spate.recompact(max_leaves=3)
        assert report.leaves_considered == 3

    def test_replaced_files_are_deleted(self, trace):
        cells, snapshots = trace
        spate = _build("gzip-ref", snapshots, cells, recompact_after_epochs=2)
        report = spate.recompact()
        assert report.replaced_paths
        for path in report.replaced_paths:
            assert not spate.dfs.exists(path)
        # The namespace holds exactly what the index points at.
        expected = {
            path
            for leaf in spate.index.leaves()
            if not leaf.decayed
            for path in leaf.table_paths.values()
        }
        assert set(spate.dfs.list_dir("/spate/snapshots")) == expected

    def test_interleaved_with_decay(self, trace):
        """Recompact mid-stream, keep ingesting past the decay horizon:
        answers still match a never-recompacted static warehouse."""
        cells, snapshots = trace

        def build(codec, recompact_mid):
            config = SpateConfig(
                codec=codec,
                decay=DecayPolicyConfig(keep_epochs=6),
                autotune=AutotuneConfig(
                    candidates=CANDIDATES, recompact_after_epochs=2
                ),
            )
            spate = Spate(config, dfs=_dfs())
            spate.register_cells(cells)
            for snapshot in snapshots[: EPOCHS // 2]:
                spate.ingest(snapshot)
            if recompact_mid:
                spate.recompact()
            for snapshot in snapshots[EPOCHS // 2 :]:
                spate.ingest(snapshot)
            spate.finalize()
            if recompact_mid:
                spate.recompact()
            return spate

        recompacted = build("auto", True)
        plain = build("gzip-ref", False)
        left = recompacted.explore("CDR", ("downflux",), None, 0, EPOCHS - 1)
        right = plain.explore("CDR", ("downflux",), None, 0, EPOCHS - 1)
        assert left.records == right.records
        assert left.used_decayed_data and right.used_decayed_data

    def test_survives_kill_and_recovery(self, trace):
        """The recompact WAL record replays: after a crash the reopened
        warehouse sees the new tags/paths and answers are unchanged."""
        cells, snapshots = trace
        config = SpateConfig(
            codec="gzip-ref",
            durability=DurabilityConfig(enabled=True),
            autotune=AutotuneConfig(
                candidates=CANDIDATES, recompact_after_epochs=2
            ),
        )
        spate = Spate(config, dfs=_dfs())
        dfs = spate.dfs
        spate.register_cells(cells)
        for snapshot in snapshots:
            spate.ingest(snapshot)
        report = spate.recompact()
        assert report.mutated
        tags = {
            leaf.epoch: dict(leaf.table_codecs)
            for leaf in spate.index.leaves()
            if not leaf.decayed
        }
        before = spate.explore("CDR", ("downflux", "upflux"), None, 0, EPOCHS - 1)
        del spate  # crash: only the DFS survives

        reopened = Spate.open(config, dfs=dfs)
        for epoch, expected in tags.items():
            assert dict(reopened.index.find_leaf(epoch).table_codecs) == expected
        after = reopened.explore(
            "CDR", ("downflux", "upflux"), None, 0, EPOCHS - 1
        )
        assert after.records == before.records
