"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

SMALL = ["--scale", "0.002", "--days", "1"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.table == "CDR"
        assert args.first == 0 and args.last == 47


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "columnar" in out

    def test_ingest(self, capsys):
        assert main(["ingest", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "ingested epochs:   48" in out
        assert "replication 3" in out

    def test_ingest_render_index(self, capsys):
        assert main(["ingest", *SMALL, "--render-index"]) == 0
        assert "year 2016" in capsys.readouterr().out

    def test_explore(self, capsys):
        assert main(["explore", *SMALL, "--first", "0", "--last", "5"]) == 0
        out = capsys.readouterr().out
        assert "records:" in out
        assert "downflux" in out

    def test_explore_with_box(self, capsys):
        code = main([
            "explore", *SMALL, "--first", "0", "--last", "5",
            "--box", "0,0,50000,30000",
        ])
        assert code == 0

    def test_explore_bad_box(self, capsys):
        code = main([
            "explore", *SMALL, "--box", "1,2,3",
        ])
        assert code == 2

    def test_explore_custom_attr(self, capsys):
        assert main([
            "explore", *SMALL, "--attr", "duration_s",
            "--first", "0", "--last", "3",
        ]) == 0
        assert "duration_s" in capsys.readouterr().out

    def test_sql(self, capsys):
        assert main([
            "sql", *SMALL,
            "SELECT COUNT(*) AS n FROM CDR",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("n\n")
        assert int(out.splitlines()[1]) > 0

    def test_sql_limit(self, capsys):
        assert main([
            "sql", *SMALL, "--limit", "2",
            "SELECT caller_id FROM CDR",
        ]) == 0
        out = capsys.readouterr().out
        assert "more rows" in out

    def test_highlights(self, capsys):
        assert main(["highlights", *SMALL, "--limit", "2"]) == 0
        assert "highlights in epochs" in capsys.readouterr().out

    def test_explore_with_thread_executor(self, capsys):
        code = main([
            "explore", *SMALL, "--executor", "thread",
            "--first", "0", "--last", "3",
        ])
        assert code == 0
        assert "records:" in capsys.readouterr().out

    def test_metrics(self, capsys):
        assert main(["metrics", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "SPATE warehouse metrics" in out
        assert "leaf cache" in out
        assert "ingest executor" in out

    def test_metrics_reread_hits_cache(self, capsys):
        assert main(["metrics", *SMALL, "--reread"]) == 0
        out = capsys.readouterr().out
        cache_line = next(line for line in out.splitlines() if "leaf cache" in line)
        hits = int(cache_line.split()[2])
        assert hits > 0

    def test_metrics_executor_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--executor", "gpu"])

    def test_bench_codecs(self, capsys):
        assert main([
            "bench-codecs", "--scale", "0.002", "--snapshots", "1",
            "--codecs", "gzip-ref",
        ]) == 0
        out = capsys.readouterr().out
        assert "gzip-ref" in out and "ratio" in out
