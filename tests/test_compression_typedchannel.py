"""Typed-channel codec: containers, zone maps, and selective decode.

The codec's contract has three load-bearing parts:

- **totality** — ``decompress(compress(data)) == data`` for every byte
  string, table-shaped or not (raw fallback);
- **honest zone maps** — the header statistics describe the channel
  cells exactly, under the same ``int()`` coercion the SQL executor
  applies to cell strings;
- **selective decode** — :func:`decode_table` touches only the
  requested channels and reports what it paid for, while preserving
  the columnar layout's projection contract (full schema, blank cells).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import get_codec
from repro.compression.typedchannel import (
    DISTINCT_CAP,
    decode_table,
    read_header,
)
from repro.core.layout import deserialize_table, serialize_table
from repro.core.snapshot import Table
from repro.errors import CorruptStreamError


def sample_table(rows: int = 30) -> Table:
    return Table(
        name="CDR",
        columns=["cell_id", "call_type", "duration_s", "note"],
        rows=[
            [
                f"c{i % 5}",
                ("voice", "sms", "data")[i % 3],
                str(i * 7 - 20),
                "" if i % 4 == 0 else f"n{i}",
            ]
            for i in range(rows)
        ],
    )


@pytest.fixture()
def codec():
    return get_codec("typedchannel")


class TestRoundTrip:
    @pytest.mark.parametrize("layout", ["row", "columnar"])
    def test_table_payloads(self, codec, layout):
        payload = serialize_table(sample_table(), layout)
        blob = codec.compress(payload)
        assert codec.decompress(blob) == payload

    @pytest.mark.parametrize("layout", ["row", "columnar"])
    def test_compresses_realistic_leaf_sizes(self, codec, layout):
        # Zone-map headers cost a few hundred bytes; on anything but a
        # toy leaf the channel compression wins them back.
        payload = serialize_table(sample_table(500), layout)
        blob = codec.compress(payload)
        assert codec.decompress(blob) == payload
        assert len(blob) < len(payload)

    @pytest.mark.parametrize("layout", ["row", "columnar"])
    def test_empty_table(self, codec, layout):
        table = Table(name="T", columns=["a", "b"], rows=[])
        payload = serialize_table(table, layout)
        assert codec.decompress(codec.compress(payload)) == payload

    def test_non_table_payloads_fall_back_to_raw(self, codec):
        for payload in (b"", b"not a table", b"COL1broken", bytes(range(256))):
            blob = codec.compress(payload)
            assert read_header(blob) is None, "raw mode must carry no header"
            assert codec.decompress(blob) == payload

    def test_non_canonical_row_text_falls_back_to_raw(self, codec):
        # Deserializes as a table but does not re-serialize identically
        # (trailing newline variance); committing to row mode would
        # silently rewrite the payload.
        canonical = serialize_table(sample_table(5), "row")
        mutated = canonical + b"\n"
        blob = codec.compress(mutated)
        assert codec.decompress(blob) == mutated

    def test_measure_reports_true_sizes(self, codec):
        payload = serialize_table(sample_table(), "columnar")
        report = codec.measure(payload)
        assert report.compressed_bytes == len(codec.compress(payload))
        assert report.raw_bytes == len(payload)


class TestZoneMaps:
    def _header(self, codec, layout="columnar"):
        payload = serialize_table(sample_table(), layout)
        blob = codec.compress(payload)
        header = read_header(blob)
        assert header is not None
        return header

    @pytest.mark.parametrize("layout", ["row", "columnar"])
    def test_header_matches_table_shape(self, codec, layout):
        header = self._header(codec, layout)
        table = sample_table()
        assert list(header.columns) == table.columns
        assert header.n_rows == len(table.rows)
        assert len(header.zones) == len(table.columns)

    def test_integer_stats_use_executor_coercion(self, codec):
        header = self._header(codec)
        table = sample_table()
        durations = [int(row[2]) for row in table.rows]
        zone = header.zone("duration_s")
        assert zone.int_count == len(durations)
        assert zone.int_min == min(durations)
        assert zone.int_max == max(durations)

    def test_null_counts(self, codec):
        header = self._header(codec)
        table = sample_table()
        blanks = sum(1 for row in table.rows if row[3] == "")
        assert header.zone("note").null_count == blanks
        assert header.zone("cell_id").null_count == 0

    def test_distinct_sets_complete_and_sorted(self, codec):
        header = self._header(codec)
        table = sample_table()
        zone = header.zone("call_type")
        assert zone.distinct == tuple(
            sorted({row[1] for row in table.rows})
        )

    def test_distinct_set_dropped_past_cap(self, codec):
        table = Table(
            name="T",
            columns=["wide"],
            rows=[[f"v{i}"] for i in range(DISTINCT_CAP + 1)],
        )
        blob = codec.compress(serialize_table(table, "columnar"))
        header = read_header(blob)
        assert header.zone("wide").distinct is None

    def test_total_raw_bytes_covers_all_channels(self, codec):
        header = self._header(codec)
        assert header.total_raw_bytes == sum(z.raw_len for z in header.zones)
        assert header.total_raw_bytes > 0

    def test_unknown_column_has_no_zone(self, codec):
        assert self._header(codec).zone("nope") is None


class TestSelectiveDecode:
    @pytest.mark.parametrize("layout", ["row", "columnar"])
    def test_projection_contract(self, codec, layout):
        table = sample_table()
        blob = codec.compress(serialize_table(table, layout))
        loaded, stats = decode_table("CDR", blob, columns=("duration_s",))
        assert loaded.columns == table.columns
        duration = table.columns.index("duration_s")
        for got, want in zip(loaded.rows, table.rows):
            assert got[duration] == want[duration]
            for idx, cell in enumerate(got):
                if idx != duration:
                    assert cell == ""
        assert stats.channels_decoded == 1
        header = read_header(blob)
        assert stats.bytes_decoded == header.zone("duration_s").raw_len
        assert stats.bytes_skipped == header.total_raw_bytes - stats.bytes_decoded

    def test_full_decode_equals_stored_table(self, codec):
        table = sample_table()
        payload = serialize_table(table, "columnar")
        blob = codec.compress(payload)
        loaded, stats = decode_table("CDR", blob)
        assert loaded == deserialize_table("CDR", payload, "columnar")
        assert stats.channels_decoded == len(table.columns)
        assert stats.bytes_skipped == 0

    def test_selecting_unknown_column_decodes_nothing(self, codec):
        blob = codec.compress(serialize_table(sample_table(), "columnar"))
        loaded, stats = decode_table("CDR", blob, columns=("ghost",))
        assert stats.channels_decoded == 0
        assert stats.bytes_decoded == 0
        assert all(cell == "" for row in loaded.rows for cell in row)

    def test_raw_mode_blob_is_rejected(self, codec):
        blob = codec.compress(b"not a table")
        with pytest.raises(CorruptStreamError):
            decode_table("CDR", blob)


class TestProperties:
    @given(
        n_rows=st.integers(0, 25),
        n_cols=st.integers(1, 5),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip_random_tables(self, n_rows, n_cols, seed):
        import random

        rng = random.Random(seed)
        pools = [
            lambda: str(rng.randrange(-500, 500)),
            lambda: rng.choice(["voice", "sms", "data", ""]),
            lambda: f"cell-{rng.randrange(8)}",
            lambda: "x" * rng.randrange(6),
        ]
        columns = [f"col{i}" for i in range(n_cols)]
        makers = [rng.choice(pools) for __ in range(n_cols)]
        table = Table(
            name="T",
            columns=columns,
            rows=[[makers[c]() for c in range(n_cols)] for __ in range(n_rows)],
        )
        codec = get_codec("typedchannel")
        for layout in ("row", "columnar"):
            payload = serialize_table(table, layout)
            assert codec.decompress(codec.compress(payload)) == payload

    @given(data=st.binary(max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_property_total_on_arbitrary_bytes(self, data):
        codec = get_codec("typedchannel")
        assert codec.decompress(codec.compress(data)) == data
