"""Tests for SQL execution semantics."""

import pytest

from repro.errors import QueryError, SqlPlanError
from repro.query.sql import Database


def sample_rows(n: int = 50) -> tuple[list[str], list[list[str]]]:
    """Deterministic relational sample."""
    columns = ["ts", "user", "cell", "plan", "bytes"]
    rows = []
    for i in range(n):
        rows.append([
            f"2016011{i % 9}",
            f"u{i % 7}",
            f"C{i % 5:03d}",
            ["prepaid", "postpaid", "business"][i % 3],
            str((i * 37) % 500),
        ])
    return columns, rows


@pytest.fixture()
def db():
    database = Database()
    columns, rows = sample_rows(30)
    database.register_table("T", columns, rows)
    database.register_table(
        "CELLS",
        ["cell", "region"],
        [["C000", "north"], ["C001", "north"], ["C002", "south"],
         ["C003", "south"], ["C004", "west"]],
    )
    return database


class TestProjectionAndFilter:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM T")
        assert len(result) == 30
        assert result.columns == ["ts", "user", "cell", "plan", "bytes"]

    def test_projection_order_and_alias(self, db):
        result = db.execute("SELECT bytes AS b, user FROM T LIMIT 1")
        assert result.columns == ["b", "user"]

    def test_where_equality(self, db):
        result = db.execute("SELECT user FROM T WHERE cell = 'C001'")
        assert len(result) == 6

    def test_numeric_comparison_coerces_strings(self, db):
        result = db.execute("SELECT bytes FROM T WHERE bytes > 400")
        assert all(int(b) > 400 for b in result.column("bytes"))

    def test_arithmetic_projection(self, db):
        result = db.execute("SELECT bytes + 1 AS b1 FROM T WHERE bytes = 0")
        assert result.rows[0][0] == 1

    def test_division_by_zero_yields_null(self, db):
        result = db.execute("SELECT 1 / 0 AS x FROM T LIMIT 1")
        assert result.rows[0][0] is None

    def test_between_inclusive(self, db):
        result = db.execute("SELECT bytes FROM T WHERE bytes BETWEEN 0 AND 37")
        values = sorted(int(v) for v in result.column("bytes"))
        assert values[0] == 0 and values[-1] == 37

    def test_in_list(self, db):
        result = db.execute("SELECT user FROM T WHERE user IN ('u0', 'u1')")
        assert set(result.column("user")) == {"u0", "u1"}

    def test_not_in(self, db):
        result = db.execute("SELECT DISTINCT user FROM T WHERE user NOT IN ('u0')")
        assert "u0" not in result.column("user")

    def test_like(self, db):
        result = db.execute("SELECT DISTINCT cell FROM T WHERE cell LIKE 'C00_'")
        assert len(result) == 5

    def test_comparison_with_null_is_false(self, db):
        database = Database()
        database.register_table("N", ["a"], [[""], ["5"]])
        result = database.execute("SELECT a FROM N WHERE a > 0")
        assert result.rows == [["5"]]

    def test_is_null_on_empty_string(self, db):
        database = Database()
        database.register_table("N", ["a"], [[""], ["x"]])
        assert len(database.execute("SELECT a FROM N WHERE a IS NULL")) == 1
        assert len(database.execute("SELECT a FROM N WHERE a IS NOT NULL")) == 1


class TestAggregation:
    def test_count_star(self, db):
        assert db.execute("SELECT COUNT(*) FROM T").rows == [[30]]

    def test_aggregates_ignore_nulls(self):
        database = Database()
        database.register_table("N", ["v"], [["1"], [""], ["3"]])
        result = database.execute("SELECT COUNT(v), SUM(v), AVG(v) FROM N")
        assert result.rows == [[2, 4, 2.0]]

    def test_group_by_with_having(self, db):
        result = db.execute(
            "SELECT cell, COUNT(*) AS n FROM T GROUP BY cell HAVING n >= 6"
        )
        assert all(n >= 6 for __, n in result.rows)

    def test_group_by_sum(self, db):
        result = db.execute("SELECT plan, SUM(bytes) AS total FROM T GROUP BY plan")
        assert len(result) == 3
        grand = sum(int(r[-1]) for __, rows in [(0, sample_rows(30)[1])] for r in rows)
        assert sum(r[1] for r in result.rows) == grand

    def test_min_max(self, db):
        result = db.execute("SELECT MIN(bytes), MAX(bytes) FROM T")
        __, rows = sample_rows(30)
        values = [int(r[4]) for r in rows]
        assert result.rows == [[str(min(values)), str(max(values))]] or result.rows == [[min(values), max(values)]]

    def test_count_distinct(self, db):
        result = db.execute("SELECT COUNT(DISTINCT user) FROM T")
        assert result.rows == [[7]]

    def test_aggregate_without_group_on_empty(self):
        database = Database()
        database.register_table("E", ["v"], [])
        result = database.execute("SELECT COUNT(*), SUM(v) FROM E")
        assert result.rows == [[0, None]]

    def test_aggregate_outside_group_context_raises(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("SELECT user FROM T WHERE SUM(bytes) > 5")

    def test_star_with_group_by_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("SELECT * FROM T GROUP BY cell")

    def test_group_key_projection(self, db):
        result = db.execute("SELECT plan FROM T GROUP BY plan ORDER BY plan")
        assert result.column("plan") == ["business", "postpaid", "prepaid"]


class TestJoins:
    def test_inner_join(self, db):
        result = db.execute(
            "SELECT t.user, c.region FROM T t JOIN CELLS c ON t.cell = c.cell"
        )
        assert len(result) == 30
        assert set(result.column("c.region")) == {"north", "south", "west"}

    def test_left_join_preserves_unmatched(self):
        database = Database()
        database.register_table("L", ["k"], [["a"], ["b"]])
        database.register_table("R", ["k", "v"], [["a", "1"]])
        result = database.execute(
            "SELECT L.k, R.v FROM L LEFT JOIN R ON L.k = R.k"
        )
        assert sorted(result.rows) == [["a", "1"], ["b", None]]

    def test_cross_join_cardinality(self):
        database = Database()
        database.register_table("A", ["x"], [["1"], ["2"]])
        database.register_table("B", ["y"], [["p"], ["q"], ["r"]])
        assert len(database.execute("SELECT * FROM A, B")) == 6

    def test_self_join_with_aliases(self, db):
        result = db.execute(
            "SELECT a.user FROM T a JOIN T b ON a.user = b.user "
            "WHERE a.cell != b.cell LIMIT 5"
        )
        assert len(result) == 5

    def test_non_equi_join_condition(self):
        database = Database()
        database.register_table("A", ["x"], [["1"], ["5"]])
        database.register_table("B", ["y"], [["3"]])
        result = database.execute("SELECT * FROM A JOIN B ON A.x < B.y")
        assert result.rows == [["1", "3"]]

    def test_ambiguous_column_raises(self, db):
        with pytest.raises(SqlPlanError, match="ambiguous"):
            db.execute("SELECT cell FROM T a JOIN T b ON a.user = b.user")

    def test_unknown_table_raises(self, db):
        with pytest.raises(SqlPlanError, match="unknown table"):
            db.execute("SELECT * FROM GHOST")

    def test_unknown_column_raises(self, db):
        with pytest.raises(SqlPlanError, match="unknown column"):
            db.execute("SELECT nope FROM T")


class TestSubqueries:
    def test_from_subquery(self, db):
        result = db.execute(
            "SELECT sub.user FROM (SELECT user, bytes FROM T WHERE bytes > 300) sub"
        )
        assert len(result) > 0

    def test_in_subquery(self, db):
        result = db.execute(
            "SELECT DISTINCT user FROM T "
            "WHERE cell IN (SELECT cell FROM CELLS WHERE region = 'north')"
        )
        assert len(result) > 0

    def test_scalar_subquery_comparison(self, db):
        result = db.execute(
            "SELECT bytes FROM T WHERE bytes = (SELECT MAX(bytes) FROM T)"
        )
        assert len(result) >= 1

    def test_scalar_subquery_multiple_rows_raises(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT user FROM T WHERE bytes = (SELECT bytes FROM T)")

    def test_in_subquery_multi_column_raises(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("SELECT user FROM T WHERE cell IN (SELECT cell, region FROM CELLS)")


class TestOrderingAndLimits:
    def test_order_by_numeric(self, db):
        result = db.execute("SELECT bytes FROM T ORDER BY bytes")
        values = [int(v) for v in result.column("bytes")]
        assert values == sorted(values)

    def test_order_by_desc(self, db):
        result = db.execute("SELECT bytes FROM T ORDER BY bytes DESC LIMIT 3")
        values = [int(v) for v in result.column("bytes")]
        assert values == sorted(values, reverse=True)

    def test_order_by_ordinal(self, db):
        result = db.execute("SELECT user, bytes FROM T ORDER BY 2 DESC LIMIT 1")
        __, rows = sample_rows(30)
        assert int(result.rows[0][1]) == max(int(r[4]) for r in rows)

    def test_order_by_alias(self, db):
        result = db.execute(
            "SELECT cell, COUNT(*) AS n FROM T GROUP BY cell ORDER BY n DESC"
        )
        counts = [r[1] for r in result.rows]
        assert counts == sorted(counts, reverse=True)

    def test_order_by_expression_over_base(self, db):
        result = db.execute("SELECT user FROM T ORDER BY bytes DESC LIMIT 1")
        assert len(result) == 1

    def test_limit_zero(self, db):
        assert len(db.execute("SELECT * FROM T LIMIT 0")) == 0

    def test_distinct_then_order(self, db):
        result = db.execute("SELECT DISTINCT plan FROM T ORDER BY plan")
        assert result.column("plan") == ["business", "postpaid", "prepaid"]

    def test_order_by_ordinal_out_of_range(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("SELECT user FROM T ORDER BY 5")


class TestScalarFunctions:
    def test_upper_lower_length(self, db):
        result = db.execute(
            "SELECT UPPER(plan), LOWER(plan), LENGTH(plan) FROM T LIMIT 1"
        )
        plan = db.execute("SELECT plan FROM T LIMIT 1").rows[0][0]
        assert result.rows[0] == [plan.upper(), plan.lower(), len(plan)]

    def test_substr(self, db):
        result = db.execute("SELECT SUBSTR(cell, 1, 1) AS c FROM T LIMIT 1")
        assert result.rows[0][0] == "C"

    def test_abs_round(self, db):
        result = db.execute("SELECT ABS(0 - 5), ROUND(3.7) FROM T LIMIT 1")
        assert result.rows[0] == [5, 4]

    def test_coalesce(self):
        database = Database()
        database.register_table("N", ["a", "b"], [["", "fallback"]])
        result = database.execute("SELECT COALESCE(a, b) FROM N")
        assert result.rows == [["fallback"]]

    def test_unknown_function_raises(self, db):
        with pytest.raises(SqlPlanError, match="unknown function"):
            db.execute("SELECT FROBNICATE(user) FROM T")


class TestResultApi:
    def test_to_dicts(self, db):
        dicts = db.execute("SELECT user, bytes FROM T LIMIT 2").to_dicts()
        assert set(dicts[0]) == {"user", "bytes"}

    def test_missing_column_raises(self, db):
        result = db.execute("SELECT user FROM T LIMIT 1")
        with pytest.raises(QueryError):
            result.column("ghost")

    def test_lazy_table_loader_called(self):
        calls = []

        def loader():
            calls.append(1)
            return [["1"]]

        database = Database()
        database.register_lazy_table("L", ["v"], loader)
        database.execute("SELECT v FROM L")
        database.execute("SELECT v FROM L")
        assert len(calls) == 2  # reloaded per scan, like real storage

    def test_table_names(self, db):
        assert db.table_names() == ["CELLS", "T"]
