"""Sharded warehouse: placement, RPC robustness, failover, identity.

The differential contract under test: ``ShardedSpate`` answers are
byte-identical for every shard count, because the region-group count is
fixed and the coordinator merges in deterministic (epoch, group-rank)
order.  ``ShardedSpate`` with ``shards=1`` is the reference; the chaos
cases then kill shards mid-stream and mid-query and require the same
identity (served via replica failover) or an accurately itemised
degraded answer when no replica is left.
"""

from __future__ import annotations

import time

import pytest

from repro.core import Spate, SpateConfig
from repro.core.config import ShardConfig
from repro.errors import (
    QueryError,
    ShardError,
    ShardTimeoutError,
    ShardUnavailableError,
)
from repro.query.explore import CoverageReport
from repro.shard import (
    CircuitBreaker,
    DeadlineBudget,
    RegionMap,
    ShardClient,
    ShardedSpate,
    groups_for_shard,
    shards_for_group,
    split_snapshot,
)
from repro.spatial.geometry import Point
from repro.telco import TelcoTraceGenerator, TraceConfig

TRACE = TraceConfig(scale=0.002, days=1, seed=99)
EPOCHS = 10


def build_sharded(shards: int, replication: int = 2, **shard_kwargs) -> ShardedSpate:
    generator = TelcoTraceGenerator(TRACE)
    warehouse = ShardedSpate(SpateConfig(sharding=ShardConfig(
        shards=shards, group_replication=replication, **shard_kwargs
    )))
    warehouse.register_cells(generator.cells_table())
    for epoch in range(EPOCHS):
        warehouse.ingest(generator.snapshot(epoch))
    warehouse.finalize()
    return warehouse


@pytest.fixture(scope="module")
def reference() -> ShardedSpate:
    """The single-shard truth every shard count must reproduce."""
    return build_sharded(1)


@pytest.fixture(scope="module")
def sharded3() -> ShardedSpate:
    return build_sharded(3)


class TestPlacement:
    def test_replicas_land_on_distinct_shards(self):
        for shards in (1, 2, 3, 5, 8):
            for group in range(8):
                chain = shards_for_group(group, shards, replication=2)
                assert len(chain) == len(set(chain))
                assert all(0 <= s < shards for s in chain)
                assert chain[0] == group % shards

    def test_every_group_is_hosted(self):
        for shards in (1, 2, 3, 5):
            hosted = set()
            for shard in range(shards):
                hosted.update(groups_for_shard(shard, shards, 8, 2))
            assert hosted == set(range(8))

    def test_losing_one_shard_keeps_every_group_live(self):
        for shards in (2, 3, 5):
            for dead in range(shards):
                for group in range(8):
                    chain = shards_for_group(group, shards, replication=2)
                    assert any(s != dead for s in chain)

    def test_region_map_is_deterministic_and_total(self):
        generator = TelcoTraceGenerator(TRACE)
        cells = generator.cells_table()
        idx = cells.column_index("cell_id")
        locations = {
            row[idx]: Point(float(row[cells.column_index("x")]),
                            float(row[cells.column_index("y")]))
            for row in cells.rows
        }
        a = RegionMap(locations, 8)
        b = RegionMap(locations, 8)
        for cell_id in locations:
            group = a.group_of(cell_id)
            assert group == b.group_of(cell_id)
            assert 0 <= group < 8
        assert a.group_of("no-such-cell") == 0


class TestSplit:
    def test_split_partitions_without_loss_or_reorder(self):
        generator = TelcoTraceGenerator(TRACE)
        warehouse = ShardedSpate(SpateConfig())
        warehouse.register_cells(generator.cells_table())
        snapshot = generator.snapshot(0)
        subs = split_snapshot(snapshot, warehouse._group_of_cell, 8)
        assert len(subs) == 8
        for name, table in snapshot.tables.items():
            # Every sub-snapshot carries every table (maybe empty).
            for sub in subs:
                assert name in sub.tables
                assert sub.tables[name].columns == table.columns
            merged = [row for sub in subs for row in sub.tables[name].rows]
            assert sorted(map(tuple, merged)) == sorted(map(tuple, table.rows))
            # Relative order within each group is preserved.
            for sub in subs:
                rows = sub.tables[name].rows
                positions = [table.rows.index(row) for row in rows]
                assert positions == sorted(positions)


class TestShardIdentity:
    """N-shard scatter-gather must be byte-identical to single-shard."""

    @pytest.mark.parametrize("shards", [2, 3])
    def test_read_rows_identical(self, reference, shards, sharded3):
        warehouse = sharded3 if shards == 3 else build_sharded(shards)
        for table in ("CDR", "NMS", "MR"):
            assert warehouse.read_rows(table, 0, EPOCHS - 1) == \
                reference.read_rows(table, 0, EPOCHS - 1)

    def test_explore_identical(self, reference, sharded3):
        want = reference.explore("CDR", ("downflux", "upflux"), None, 0, EPOCHS - 1)
        got = sharded3.explore("CDR", ("downflux", "upflux"), None, 0, EPOCHS - 1)
        assert got.records == want.records
        assert got.columns == want.columns
        assert {k: v.to_dict() for k, v in got.aggregates.items()} == \
            {k: v.to_dict() for k, v in want.aggregates.items()}
        assert got.snapshots_read == want.snapshots_read
        assert got.coverage.complete and want.coverage.complete

    def test_sql_identical(self, reference, sharded3):
        sql = ("SELECT call_type, COUNT(*) AS n, SUM(duration_s) AS d "
               "FROM CDR GROUP BY call_type ORDER BY call_type")
        want = reference.sql(sql)
        got = sharded3.sql(sql)
        assert got.columns == want.columns
        assert got.rows == want.rows

    def test_highlights_identical(self, reference, sharded3):
        want = [h.to_dict() for h in reference.highlights(0, EPOCHS - 1)]
        got = [h.to_dict() for h in sharded3.highlights(0, EPOCHS - 1)]
        assert sorted(want, key=str) == sorted(got, key=str)

    def test_aggregates_match_plain_spate(self, reference):
        """Sharding permutes within-epoch row order but must never
        change what the rows *are*: multiset and aggregates agree with
        the unsharded warehouse."""
        generator = TelcoTraceGenerator(TRACE)
        plain = Spate(SpateConfig())
        plain.register_cells(generator.cells_table())
        for epoch in range(EPOCHS):
            plain.ingest(generator.snapshot(epoch))
        plain.finalize()
        want = plain.explore("CDR", ("downflux",), None, 0, EPOCHS - 1)
        got = reference.explore("CDR", ("downflux",), None, 0, EPOCHS - 1)
        assert sorted(map(tuple, want.records)) == sorted(map(tuple, got.records))
        assert {k: v.to_dict() for k, v in want.aggregates.items()} == \
            {k: v.to_dict() for k, v in got.aggregates.items()}

    def test_spate_create_routes_by_shard_count(self):
        assert isinstance(Spate.create(SpateConfig()), Spate)
        sharded = Spate.create(
            SpateConfig(sharding=ShardConfig(shards=2))
        )
        assert isinstance(sharded, ShardedSpate)


class TestFailover:
    def test_kill_one_shard_serves_from_replicas(self, reference):
        warehouse = build_sharded(3)
        warehouse.kill_shard(1)
        want = reference.read_rows("CDR", 0, EPOCHS - 1)
        assert warehouse.read_rows("CDR", 0, EPOCHS - 1) == want
        assert warehouse.client.counters.failovers > 0

    def test_kill_mid_query_fails_over_in_flight(self, reference):
        """A shard dying *during* the scatter: remaining groups fail
        over to replicas and the answer stays identical."""
        warehouse = build_sharded(3)
        state = {"rpcs": 0}

        def hook(shard_id: int, method: str) -> None:
            state["rpcs"] += 1
            if state["rpcs"] == 4 and warehouse.workers[0].alive:
                warehouse.kill_shard(0)

        warehouse.client.before_invoke = hook
        got = warehouse.explore("CDR", ("downflux",), None, 0, EPOCHS - 1)
        warehouse.client.before_invoke = None
        want = reference.explore("CDR", ("downflux",), None, 0, EPOCHS - 1)
        assert got.records == want.records
        assert got.coverage.complete
        assert warehouse.client.counters.failovers > 0

    def test_partial_ok_degrades_with_shards_skipped(self):
        """replication=1: a dead shard's groups have no replica, so
        partial_ok must itemise the skipped shard slices and strict
        queries must raise."""
        warehouse = build_sharded(2, replication=1)
        warehouse.kill_shard(1)
        got = warehouse.explore(
            "CDR", ("downflux",), None, 0, EPOCHS - 1, partial_ok=True
        )
        assert got.coverage.shards_skipped
        assert not got.coverage.complete
        assert all(
            reason in ("dead", "breaker_open", "timeout", "error")
            for reason in got.coverage.shards_skipped.values()
        )
        assert warehouse.client.counters.shards_skipped > 0
        with pytest.raises(ShardError):
            warehouse.explore("CDR", ("downflux",), None, 0, EPOCHS - 1)

    def test_recover_shard_replays_missed_mutations(self, reference):
        warehouse = build_sharded(3)
        generator = TelcoTraceGenerator(TRACE)
        ref2 = build_sharded(1)
        warehouse.kill_shard(2)
        extra = generator.snapshot(EPOCHS)
        with pytest.raises(QueryError):
            warehouse.ingest(extra)  # stream already finalized
        # Rebuild un-finalized warehouses to exercise catch-up properly.
        warehouse = ShardedSpate(SpateConfig(sharding=ShardConfig(shards=3)))
        truth = ShardedSpate(SpateConfig(sharding=ShardConfig(shards=1)))
        generator = TelcoTraceGenerator(TRACE)
        cells = generator.cells_table()
        warehouse.register_cells(cells)
        truth.register_cells(cells)
        snapshots = [generator.snapshot(epoch) for epoch in range(EPOCHS)]
        for snapshot in snapshots[:4]:
            warehouse.ingest(snapshot)
            truth.ingest(snapshot)
        warehouse.kill_shard(0)
        for snapshot in snapshots[4:]:
            warehouse.ingest(snapshot)  # shard 0's copies are buffered
            truth.ingest(snapshot)
        replayed = warehouse.recover_shard(0)
        assert replayed > 0
        warehouse.finalize()
        truth.finalize()
        assert warehouse.read_rows("CDR", 0, EPOCHS - 1) == \
            truth.read_rows("CDR", 0, EPOCHS - 1)
        # The recovered shard serves its groups again: kill the OTHER
        # shards' ability to answer by checking shard 0 directly.
        worker = warehouse.workers[0]
        assert worker.alive and worker.restarts == 1

    def test_heartbeat_detects_and_suspects_dead_shard(self):
        warehouse = build_sharded(3, heartbeat_miss_limit=2)
        assert all(warehouse.heartbeat().values())
        warehouse.kill_shard(1)
        health = warehouse.heartbeat()
        assert health[1] is False and health[0] and health[2]
        assert 1 not in warehouse._suspected  # one miss is not enough
        warehouse.heartbeat()
        assert 1 in warehouse._suspected
        # Suspected shards go to the back of every failover chain.
        for group in range(warehouse.region_groups):
            chain = warehouse._chain(group)
            if 1 in chain:
                assert chain[-1] == 1
        assert warehouse.client.counters.heartbeat_misses >= 2
        warehouse.recover_shard(1)
        assert 1 not in warehouse._suspected
        assert all(warehouse.heartbeat().values())


class TestRpcStack:
    def test_circuit_breaker_trips_and_sheds(self):
        breaker = CircuitBreaker(threshold=3, cooldown_rpcs=2)
        for __ in range(3):
            assert breaker.allow()
            breaker.on_failure()
        assert breaker.trips == 1 and breaker.open
        assert not breaker.allow()  # shed 1
        assert not breaker.allow()  # shed 2
        assert breaker.allow()      # half-open probe
        breaker.on_success()
        assert breaker.failures == 0 and not breaker.open

    def test_breaker_sheds_calls_to_dead_shard(self):
        warehouse = build_sharded(2, breaker_threshold=2,
                                  breaker_cooldown_rpcs=4, rpc_retries=0)
        warehouse.kill_shard(0)
        client = warehouse.client
        for __ in range(2):
            with pytest.raises(ShardUnavailableError):
                client.call(0, "ping", retry=False)
        assert client.breakers[0].open
        with pytest.raises(ShardUnavailableError, match="breaker"):
            client.call(0, "ping", retry=False)
        assert client.counters.breaker_trips == 1

    def test_deadline_budget_expires_rpcs(self):
        warehouse = build_sharded(2)
        budget = DeadlineBudget(1)
        time.sleep(0.01)
        assert budget.expired()
        with pytest.raises(ShardTimeoutError):
            warehouse.client.call(0, "ping", deadline=budget)

    def test_retries_are_bounded_and_budgeted(self):
        warehouse = build_sharded(2, rpc_retries=2, rpc_retry_budget=3,
                                  breaker_threshold=99)
        warehouse.kill_shard(0)
        client = warehouse.client
        with pytest.raises(ShardUnavailableError):
            client.call(0, "ping")
        assert client.counters.retries == 2
        assert client.counters.retry_budget_spent == 2
        with pytest.raises(ShardUnavailableError):
            client.call(0, "ping")
        # Budget had 1 token left: the second call retried once.
        assert client.counters.retries == 3
        assert client.counters.retry_budget_exhausted >= 0
        assert client.modeled_backoff_s > 0  # inline transport models it

    def test_application_errors_do_not_retry_or_fail_over(self, sharded3):
        retries_before = sharded3.client.counters.retries
        failovers_before = sharded3.client.counters.failovers
        with pytest.raises(Exception) as err:
            sharded3.sql("SELECT nope FROM CDR WHERE")
        assert not isinstance(err.value, ShardError)
        # A deterministic application error must not look like a shard
        # failure: no retries, no failovers, all breakers stay closed.
        assert sharded3.client.counters.failovers == failovers_before
        assert sharded3.client.counters.retries == retries_before
        assert all(not b.open for b in sharded3.client.breakers.values())

    def test_thread_transport_matches_inline(self, reference):
        warehouse = build_sharded(2, transport="thread")
        try:
            assert warehouse.read_rows("CDR", 0, EPOCHS - 1) == \
                reference.read_rows("CDR", 0, EPOCHS - 1)
        finally:
            warehouse.close()


class TestCoverageMergeAccumulates:
    """Satellite: reasons from multiple sources accumulate instead of
    last-writer-wins."""

    def test_distinct_reasons_join(self):
        a = CoverageReport(epochs_served=[0, 1], epochs_skipped={2: "deadline"})
        b = CoverageReport(epochs_served=[0], epochs_skipped={2: "quarantined"})
        a.merge(b)
        assert a.epochs_skipped[2] == "deadline + quarantined"

    def test_same_reason_not_duplicated(self):
        a = CoverageReport(epochs_skipped={2: "deadline"})
        a.merge(CoverageReport(epochs_skipped={2: "deadline"}))
        assert a.epochs_skipped[2] == "deadline"

    def test_three_sources_accumulate(self):
        merged = CoverageReport()
        merged.merge(CoverageReport(epochs_skipped={5: "deadline"}))
        merged.merge(CoverageReport(epochs_skipped={5: "unreadable: gone"}))
        merged.merge(CoverageReport(
            shards_skipped={"g3@s1": "dead"}, deadline_hit=True
        ))
        assert merged.epochs_skipped[5] == "deadline + unreadable: gone"
        assert merged.shards_skipped == {"g3@s1": "dead"}
        assert merged.deadline_hit
        assert not merged.complete

    def test_skipped_epoch_beats_served_and_pruned(self):
        a = CoverageReport(epochs_served=[1], epochs_pruned=[2, 3])
        b = CoverageReport(epochs_skipped={1: "dead"}, epochs_served=[2])
        a.merge(b)
        assert a.epochs_served == [2]
        assert a.epochs_skipped == {1: "dead"}
        assert a.epochs_pruned == [3]

    def test_shard_reasons_accumulate_across_merges(self):
        a = CoverageReport(shards_skipped={"g1@s0": "timeout"})
        a.merge(CoverageReport(shards_skipped={"g1@s0": "breaker_open"}))
        assert a.shards_skipped["g1@s0"] == "timeout + breaker_open"


class TestShardMetrics:
    def test_counters_flow_into_warehouse_metrics(self):
        warehouse = build_sharded(3)
        warehouse.kill_shard(0)
        warehouse.heartbeat()
        warehouse.read_rows("CDR", 0, EPOCHS - 1)
        warehouse.recover_shard(0)
        metrics = warehouse.metrics
        assert metrics.shard_rpcs > 0
        assert metrics.shard_failovers > 0
        assert metrics.shard_heartbeat_misses > 0
        assert metrics.shard_recoveries == 1
        summary = metrics.summary()
        assert "shards:" in summary
        assert "failovers" in summary

    def test_explain_analyze_renders_shard_skips(self):
        warehouse = build_sharded(2, replication=1)
        warehouse.kill_shard(1)
        report = warehouse.explain(
            "SELECT COUNT(*) FROM CDR", partial_ok=True
        )
        assert "shard slices skipped" in report
