"""Tests for the UI layer: heatmap rendering and query templates."""

import pytest

from repro.query.sql import Database
from repro.spatial.geometry import BoundingBox, Point
from repro.ui import QUERY_TEMPLATES, HeatmapRenderer, render_heatmap, run_template

AREA = BoundingBox(0, 0, 100, 100)


class TestHeatmap:
    def test_dimensions(self):
        rendered = render_heatmap(
            [(Point(10, 10), 1.0)], AREA, cols=20, rows=5
        )
        lines = rendered.split("\n")
        assert len(lines) == 6  # 5 rows + footer
        assert all(len(line) == 20 for line in lines[:5])

    def test_title_line(self):
        rendered = render_heatmap([], AREA, title="Coverage")
        assert rendered.startswith("Coverage\n")

    def test_empty_samples_render(self):
        rendered = render_heatmap([], AREA, cols=10, rows=3)
        assert "[0.0 .. 0.0]" in rendered

    def test_hot_tile_gets_darker_glyph(self):
        ramp = " .:-=+*#%@"
        rendered = HeatmapRenderer(AREA, cols=10, rows=10).render(
            [(Point(5, 5), 0.0), (Point(95, 95), 100.0)]
        )
        grid_lines = rendered.split("\n")[:-1]
        # North-up rendering: the hot NE sample is on the first line.
        assert "@" in grid_lines[0]
        assert any(ch == ramp[0] or ch == " " for ch in grid_lines[-1])

    def test_samples_outside_area_ignored(self):
        rendered = render_heatmap(
            [(Point(500, 500), 9.0)], AREA, cols=5, rows=5
        )
        assert "[0.0 .. 0.0]" in rendered

    def test_mean_per_tile(self):
        renderer = HeatmapRenderer(AREA, cols=1, rows=1)
        rendered = renderer.render([(Point(1, 1), 2.0), (Point(2, 2), 4.0)])
        assert "[3.0 .. 3.0]" in rendered


class TestTemplates:
    @pytest.fixture()
    def db(self):
        database = Database()
        database.register_table(
            "CDR",
            ["ts", "cell_id", "drop_flag", "downflux", "upflux"],
            [
                ["201601180030", "C001", "1", "100", "10"],
                ["201601180030", "C001", "0", "200", "20"],
                ["201601180100", "C002", "1", "300", "30"],
                ["201601190000", "C001", "1", "999", "99"],  # out of window
            ],
        )
        database.register_table(
            "NMS",
            ["ts", "cellid", "kpi", "val"],
            [
                ["201601180030", "C001", "rssi_avg", "70"],
                ["201601180030", "C002", "congestion", "5"],
            ],
        )
        return database

    def test_registry_entries_well_formed(self):
        for name, (description, builder) in QUERY_TEMPLATES.items():
            assert description
            sql = builder("201601180000", "201601182359")
            assert sql.upper().startswith("SELECT")

    def test_drop_calls_template(self, db):
        result = run_template(db, "drop_calls", "201601180000", "201601182359")
        assert dict(result.rows) == {"C001": 1, "C002": 1}

    def test_downflux_template_sums(self, db):
        result = run_template(db, "downflux_upflux", "201601180000", "201601182359")
        by_cell = {r[0]: (r[1], r[2]) for r in result.rows}
        assert by_cell["C001"] == (300, 30)

    def test_rssi_template(self, db):
        result = run_template(db, "rssi_heatmap", "201601180000", "201601182359")
        assert result.rows == [["C001", 70.0]]

    def test_busiest_cells_template(self, db):
        result = run_template(db, "busiest_cells", "201601180000", "201601182359")
        assert result.rows[0][0] == "C001"

    def test_unknown_template_raises(self, db):
        with pytest.raises(KeyError):
            run_template(db, "nonexistent", "0", "1")
