"""Tests for the shared evaluation harness."""

import pytest

from repro.evaluation import build_frameworks, format_table, ingest_trace
from repro.evaluation.harness import bench_codec, bench_scale
from repro.telco import TelcoTraceGenerator, TraceConfig


class TestEnvKnobs:
    def test_bench_scale_default(self, monkeypatch):
        monkeypatch.delenv("SPATE_BENCH_SCALE", raising=False)
        assert bench_scale(0.123) == 0.123

    def test_bench_scale_override(self, monkeypatch):
        monkeypatch.setenv("SPATE_BENCH_SCALE", "0.05")
        assert bench_scale() == 0.05

    def test_bench_scale_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("SPATE_BENCH_SCALE", "not-a-number")
        assert bench_scale(0.5) == 0.5

    def test_bench_codec_override(self, monkeypatch):
        monkeypatch.setenv("SPATE_BENCH_CODEC", "snappy")
        assert bench_codec() == "snappy"

    def test_bench_codec_default(self, monkeypatch):
        monkeypatch.delenv("SPATE_BENCH_CODEC", raising=False)
        assert bench_codec() == "gzip-ref"


@pytest.fixture(scope="module")
def harness_run():
    generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=79))
    setup = build_frameworks(generator, codec="gzip-ref", model_io=True)
    runs = ingest_trace(setup)
    return setup, runs


class TestSetup:
    def test_three_frameworks(self, harness_run):
        setup, __ = harness_run
        assert set(setup.frameworks) == {"RAW", "SHAHED", "SPATE"}

    def test_separate_filesystems(self, harness_run):
        setup, __ = harness_run
        filesystems = {id(fw.dfs) for fw in setup.frameworks.values()}
        assert len(filesystems) == 3

    def test_io_model_attached_by_default(self, harness_run):
        setup, __ = harness_run
        for framework in setup.frameworks.values():
            assert framework.dfs.io_model is not None
            assert framework.modeled_io_seconds() > 0.0

    def test_model_io_false_disables_model(self):
        generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=79))
        setup = build_frameworks(generator, codec="gzip-ref", model_io=False)
        for framework in setup.frameworks.values():
            assert framework.dfs.io_model is None

    def test_cell_locations_and_clusters(self, harness_run):
        setup, __ = harness_run
        locations = setup.cell_locations
        clusters = setup.cell_clusters()
        assert set(locations) == set(clusters)
        assert all(c.startswith(("BSC", "RNC", "MME")) for c in clusters.values())


class TestRuns:
    def test_every_framework_has_all_reports(self, harness_run):
        __, runs = harness_run
        for run in runs.values():
            assert len(run.reports) == 48

    def test_mean_ingest_subset_filter(self, harness_run):
        __, runs = harness_run
        run = runs["SPATE"]
        subset = run.mean_ingest_seconds(epochs={0, 1, 2})
        assert subset > 0
        assert run.mean_ingest_seconds(epochs=set()) == 0.0

    def test_stored_bytes_by_groups_everything(self, harness_run):
        from repro.telco.workload import day_period_of_epoch

        __, runs = harness_run
        run = runs["RAW"]
        grouped = run.stored_bytes_by(day_period_of_epoch)
        assert sum(grouped.values()) == sum(r.stored_bytes for r in run.reports)

    def test_spate_is_smallest(self, harness_run):
        __, runs = harness_run
        assert (
            runs["SPATE"].stored_bytes()
            < runs["RAW"].stored_bytes()
            == runs["SHAHED"].stored_bytes()
        )


class TestFormatTable:
    def test_nan_for_missing_cells(self):
        text = format_table("T", ["a", "b"], {"X": {"a": 1.0}})
        assert "nan" in text

    def test_precision(self):
        text = format_table("T", ["a"], {"X": {"a": 1.23456}}, precision=2)
        assert "1.23" in text
        assert "1.2346" not in text

    def test_empty_rows(self):
        text = format_table("T", [], {"X": {}})
        assert text.startswith("T")
