"""Tests for the Evict Grouped Individuals fungus (partial decay)."""

import pytest

from repro.core import Spate, SpateConfig
from repro.errors import IndexError_
from repro.index.fungus import EvictGroupedIndividuals, busiest_cells
from repro.telco import TelcoTraceGenerator, TraceConfig


@pytest.fixture()
def loaded_spate():
    generator = TelcoTraceGenerator(TraceConfig(scale=0.004, days=1, seed=71))
    spate = Spate(SpateConfig(codec="gzip-ref"))
    spate.register_cells(generator.cells_table())
    for epoch in range(16, 28):  # busy daytime epochs
        spate.ingest(generator.snapshot(epoch))
    spate.finalize()
    return spate


class TestBusiestCells:
    def test_returns_top_fraction(self, loaded_spate):
        all_cells = busiest_cells(loaded_spate.index, "CDR", 1.0)
        top = busiest_cells(loaded_spate.index, "CDR", 0.25)
        assert 0 < len(top) <= len(all_cells)
        assert top <= all_cells

    def test_invalid_fraction(self, loaded_spate):
        with pytest.raises(IndexError_):
            busiest_cells(loaded_spate.index, "CDR", 0.0)
        with pytest.raises(IndexError_):
            busiest_cells(loaded_spate.index, "CDR", 1.5)

    def test_empty_index(self):
        from repro.index.temporal import TemporalIndex

        assert busiest_cells(TemporalIndex(), "CDR", 0.5) == set()


class TestGroupedDecay:
    def test_reclaims_bytes_and_drops_records(self, loaded_spate):
        spate = loaded_spate
        before_bytes = spate.storage_stats().logical_bytes
        report = spate.decay_groups(older_than_epoch=22, keep_fraction=0.2)
        after_bytes = spate.storage_stats().logical_bytes
        assert report.leaves_rewritten > 0
        assert report.records_dropped > 0
        assert after_bytes < before_bytes
        assert report.bytes_reclaimed == report.bytes_before - report.bytes_after

    def test_kept_cells_fully_preserved(self, loaded_spate):
        spate = loaded_spate
        report = spate.decay_groups(older_than_epoch=22, keep_fraction=0.2)
        kept = report.kept_cells
        # Records of retained cells survive in thinned snapshots...
        columns, rows = spate.read_rows("CDR", 16, 21)
        cell_idx = columns.index("cell_id")
        assert rows, "thinned leaves must still be scannable"
        assert {row[cell_idx] for row in rows} <= kept

    def test_recent_leaves_untouched(self, loaded_spate):
        spate = loaded_spate
        before = spate.read_snapshot(25).serialize()
        spate.decay_groups(older_than_epoch=22, keep_fraction=0.2)
        assert spate.read_snapshot(25).serialize() == before

    def test_idempotent(self, loaded_spate):
        spate = loaded_spate
        spate.decay_groups(older_than_epoch=22, keep_fraction=0.2)
        second = spate.decay_groups(older_than_epoch=22, keep_fraction=0.2)
        assert second.records_dropped == 0

    def test_empty_keep_set_rejected(self, loaded_spate):
        fungus = EvictGroupedIndividuals(
            dfs=loaded_spate.dfs,
            index=loaded_spate.index,
            codec=loaded_spate.codec,
        )
        with pytest.raises(IndexError_):
            fungus.run(22, set())

    def test_leaf_metadata_updated(self, loaded_spate):
        spate = loaded_spate
        leaf = spate.index.leaves()[0]
        before_bytes = leaf.compressed_bytes
        before_records = leaf.record_count
        spate.decay_groups(older_than_epoch=22, keep_fraction=0.1)
        assert leaf.compressed_bytes < before_bytes
        assert leaf.record_count < before_records

    def test_exploration_still_works_after_group_decay(self, loaded_spate):
        spate = loaded_spate
        spate.decay_groups(older_than_epoch=22, keep_fraction=0.2)
        result = spate.explore("CDR", ("downflux",), None, 16, 27)
        assert result.snapshots_read == 12
        # The thinned portion yields fewer records, not errors.
        assert len(result.records) > 0

    def test_summaries_unaffected_by_group_decay(self, loaded_spate):
        """Aggregates computed at ingest time keep full-population truth
        even after the raw records of cold cells are gone."""
        spate = loaded_spate
        day = spate.index.day_nodes()[0]
        count_before = day.summary.record_counts["CDR"]
        spate.decay_groups(older_than_epoch=28, keep_fraction=0.1)
        assert day.summary.record_counts["CDR"] == count_before
