"""Tests for R-tree STR bulk loading and deletion."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.rtree import RTree


def point_entries(n: int, seed: int = 3):
    rng = random.Random(seed)
    entries = []
    for i in range(n):
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        entries.append((BoundingBox(x, y, x, y), i))
    return entries


def brute(entries, box):
    return {p for b, p in entries if box.intersects(b)}


class TestBulkLoad:
    def test_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0
        assert tree.query(BoundingBox(0, 0, 10, 10)) == []

    def test_single_entry(self):
        tree = RTree.bulk_load([(BoundingBox(1, 1, 2, 2), "x")])
        assert tree.query(BoundingBox(0, 0, 3, 3)) == ["x"]

    def test_matches_brute_force(self):
        entries = point_entries(500)
        tree = RTree.bulk_load(entries, max_entries=8)
        for seed in range(15):
            rng = random.Random(seed)
            x0, y0 = rng.uniform(0, 800), rng.uniform(0, 800)
            box = BoundingBox(x0, y0, x0 + 150, y0 + 150)
            assert set(tree.query(box)) == brute(entries, box)

    def test_len_matches(self):
        entries = point_entries(123)
        assert len(RTree.bulk_load(entries)) == 123

    def test_packed_tree_is_shallower_than_incremental(self):
        entries = point_entries(600, seed=9)
        packed = RTree.bulk_load(entries, max_entries=8)
        incremental = RTree(max_entries=8)
        for box, payload in entries:
            incremental.insert(box, payload)
        assert packed.depth <= incremental.depth

    def test_insert_after_bulk_load(self):
        entries = point_entries(60)
        tree = RTree.bulk_load(entries)
        tree.insert_point(Point(5, 5), "new")
        assert "new" in tree.query(BoundingBox(0, 0, 10, 10))
        assert len(tree) == 61

    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)),
                    max_size=120))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_brute(self, raw):
        entries = [
            (BoundingBox(x, y, x, y), i) for i, (x, y) in enumerate(raw)
        ]
        tree = RTree.bulk_load(entries, max_entries=5)
        box = BoundingBox(25, 25, 75, 75)
        assert set(tree.query(box)) == brute(entries, box)


class TestDelete:
    def test_delete_existing(self):
        tree = RTree()
        box = BoundingBox(1, 1, 1, 1)
        tree.insert(box, "a")
        assert tree.delete(box, "a")
        assert len(tree) == 0
        assert tree.query(BoundingBox(0, 0, 2, 2)) == []

    def test_delete_missing_returns_false(self):
        tree = RTree()
        tree.insert(BoundingBox(1, 1, 1, 1), "a")
        assert not tree.delete(BoundingBox(1, 1, 1, 1), "b")
        assert not tree.delete(BoundingBox(9, 9, 9, 9), "a")
        assert len(tree) == 1

    def test_delete_many_keeps_queries_exact(self):
        entries = point_entries(300, seed=17)
        tree = RTree(max_entries=6)
        for box, payload in entries:
            tree.insert(box, payload)
        rng = random.Random(1)
        removed = set()
        for box, payload in rng.sample(entries, 150):
            assert tree.delete(box, payload)
            removed.add(payload)
        remaining = [(b, p) for b, p in entries if p not in removed]
        assert len(tree) == 150
        probe = BoundingBox(200, 200, 700, 700)
        assert set(tree.query(probe)) == brute(remaining, probe)

    def test_delete_everything_then_reuse(self):
        entries = point_entries(80, seed=21)
        tree = RTree(max_entries=4)
        for box, payload in entries:
            tree.insert(box, payload)
        for box, payload in entries:
            assert tree.delete(box, payload)
        assert len(tree) == 0
        tree.insert_point(Point(1, 2), "again")
        assert tree.query(BoundingBox(0, 0, 5, 5)) == ["again"]

    def test_delete_from_bulk_loaded_tree(self):
        entries = point_entries(200, seed=23)
        tree = RTree.bulk_load(entries, max_entries=8)
        box, payload = entries[50]
        assert tree.delete(box, payload)
        assert payload not in tree.query(box)
        assert len(tree) == 199

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_property_insert_delete_consistency(self, data):
        n = data.draw(st.integers(5, 60))
        entries = point_entries(n, seed=data.draw(st.integers(0, 100)))
        tree = RTree(max_entries=4)
        for box, payload in entries:
            tree.insert(box, payload)
        k = data.draw(st.integers(0, n))
        for box, payload in entries[:k]:
            assert tree.delete(box, payload)
        survivors = entries[k:]
        whole = BoundingBox(0, 0, 1000, 1000)
        assert set(tree.query(whole)) == {p for __, p in survivors}
