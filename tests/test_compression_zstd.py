"""Tests for the ZSTD-like codec, focusing on dictionary support."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.zstd import ZstdCodec, ZstdDictionary
from repro.errors import CompressionError, CorruptStreamError


def telco_sample(seed: int, rows: int = 120) -> bytes:
    return "\n".join(
        f"201601221{(seed + i) % 10}30|U{(seed * 31 + i) % 500:05d}|"
        f"C{(seed + i) % 40:04d}|voice|2G|OK|0"
        for i in range(rows)
    ).encode()


class TestDictionary:
    def test_train_produces_nonempty_dictionary(self):
        samples = [telco_sample(i) for i in range(6)]
        dictionary = ZstdDictionary.train(samples)
        assert len(dictionary.data) > 0

    def test_train_respects_max_size(self):
        samples = [telco_sample(i, rows=500) for i in range(4)]
        dictionary = ZstdDictionary.train(samples, max_size=1024)
        assert len(dictionary.data) <= 1024 + 16  # one shingle of slack

    def test_dict_id_is_stable_and_content_addressed(self):
        d1 = ZstdDictionary(data=b"hello world")
        d2 = ZstdDictionary(data=b"hello world")
        d3 = ZstdDictionary(data=b"different")
        assert d1.dict_id == d2.dict_id
        assert d1.dict_id != d3.dict_id

    def test_dictionary_improves_small_payload_compression(self):
        samples = [telco_sample(i) for i in range(8)]
        dictionary = ZstdDictionary.train(samples)
        payload = telco_sample(99, rows=25)
        plain = ZstdCodec().compress(payload)
        with_dict = ZstdCodec(dictionary=dictionary).compress(payload)
        assert len(with_dict) <= len(plain)

    def test_round_trip_with_dictionary(self):
        dictionary = ZstdDictionary.train([telco_sample(i) for i in range(4)])
        codec = ZstdCodec(dictionary=dictionary)
        payload = telco_sample(7)
        assert codec.decompress(codec.compress(payload)) == payload

    def test_decompress_without_dictionary_fails_clearly(self):
        dictionary = ZstdDictionary.train([telco_sample(i) for i in range(4)])
        compressed = ZstdCodec(dictionary=dictionary).compress(telco_sample(1))
        with pytest.raises(CompressionError, match="dictionary"):
            ZstdCodec().decompress(compressed)

    def test_decompress_with_wrong_dictionary_fails(self):
        right = ZstdDictionary.train([telco_sample(i) for i in range(4)])
        wrong = ZstdDictionary(data=b"not the right dictionary at all")
        compressed = ZstdCodec(dictionary=right).compress(telco_sample(1))
        with pytest.raises(CorruptStreamError, match="mismatch"):
            ZstdCodec(dictionary=wrong).decompress(compressed)

    def test_plain_stream_decompresses_with_dictionary_configured(self):
        # Flag says no-dict, so a dict-configured codec must still work.
        dictionary = ZstdDictionary.train([telco_sample(i) for i in range(4)])
        plain = ZstdCodec().compress(telco_sample(3))
        assert ZstdCodec(dictionary=dictionary).decompress(plain) == telco_sample(3)

    @given(st.binary(max_size=800))
    @settings(max_examples=25, deadline=None)
    def test_property_dict_round_trip(self, payload):
        dictionary = ZstdDictionary.train([telco_sample(i) for i in range(3)])
        codec = ZstdCodec(dictionary=dictionary)
        assert codec.decompress(codec.compress(payload)) == payload


class TestStreamStructure:
    def test_trailing_literals_after_last_match(self):
        # Ends with bytes that can't match anything earlier.
        payload = b"abcdabcdabcd" + bytes([1, 2, 3])
        codec = ZstdCodec()
        assert codec.decompress(codec.compress(payload)) == payload

    def test_match_only_stream(self):
        payload = b"xyzw" * 100
        codec = ZstdCodec()
        assert codec.decompress(codec.compress(payload)) == payload

    def test_literal_only_stream(self):
        payload = bytes(range(64))
        codec = ZstdCodec()
        assert codec.decompress(codec.compress(payload)) == payload
