"""Storage repair concurrent with readers: no torn reads, ever.

``heal()`` holds the warehouse write lock, but replica corruption and
datanode churn happen *underneath* the lock — a reader can hit a block
whose replica was just damaged or whose datanode just died.  The DFS
read path must fail over (CRC check, next replica) so that explore /
SQL / raw-row answers stay byte-identical to the pre-chaos baseline
throughout a corrupt → heal → fsck loop, and the repair counters must
stay consistent in ``WarehouseMetrics``.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import Spate, SpateConfig
from repro.core.config import ShardConfig
from repro.shard import ShardedSpate
from repro.telco import TelcoTraceGenerator, TraceConfig

TRACE = TraceConfig(scale=0.002, days=1, seed=31)
EPOCHS = 8
SQL = "SELECT call_type, COUNT(*) AS n FROM CDR GROUP BY call_type"


@pytest.fixture()
def warehouse() -> Spate:
    generator = TelcoTraceGenerator(TRACE)
    spate = Spate(SpateConfig(codec="gzip-ref"))
    spate.register_cells(generator.cells_table())
    for epoch in range(EPOCHS):
        spate.ingest(generator.snapshot(epoch))
    spate.finalize()
    return spate


def corrupt_one_replica(dfs, rng: random.Random) -> bool:
    """Damage a single replica of a random block that still has at
    least one other live copy (so the data never becomes lost)."""
    files = [m for m in dfs.namenode.files() if m.blocks]
    if not files:
        return False
    meta = rng.choice(files)
    block_id = rng.choice(meta.blocks)
    nodes = list(dfs.namenode.locations(block_id))
    if len(nodes) < 2:
        return False
    return dfs.datanodes[rng.choice(nodes)].corrupt_block(block_id)


class ReaderPool:
    """Threads replaying the same reads and diffing against a baseline."""

    def __init__(self, threads: int = 3) -> None:
        self._threads = threads
        self._stop = threading.Event()
        self.errors: list[BaseException] = []
        self.reads = 0
        self._lock = threading.Lock()

    def run(self, spate, chaos) -> None:
        explore_truth = spate.explore(
            "CDR", ("downflux", "upflux"), None, 0, EPOCHS - 1
        )
        sql_truth = spate.sql(SQL)
        rows_truth = spate.read_rows("CDR", 0, EPOCHS - 1)

        def reader(seed: int) -> None:
            rng = random.Random(seed)
            while not self._stop.is_set():
                try:
                    kind = rng.randrange(3)
                    if kind == 0:
                        result = spate.explore(
                            "CDR", ("downflux", "upflux"), None, 0, EPOCHS - 1
                        )
                        assert result.records == explore_truth.records
                        assert result.coverage.complete
                    elif kind == 1:
                        result = spate.sql(SQL)
                        assert result.rows == sql_truth.rows
                    else:
                        assert spate.read_rows("CDR", 0, EPOCHS - 1) == rows_truth
                    with self._lock:
                        self.reads += 1
                except BaseException as exc:  # noqa: BLE001 — collected
                    self.errors.append(exc)
                    return

        threads = [
            threading.Thread(target=reader, args=(seed,))
            for seed in range(self._threads)
        ]
        for t in threads:
            t.start()
        try:
            chaos()
        finally:
            self._stop.set()
            for t in threads:
                t.join(timeout=60)
        assert not self.errors, f"reader failed mid-repair: {self.errors[0]!r}"
        assert self.reads > 0


class TestHealConcurrentWithReaders:
    def test_corrupt_heal_fsck_loop_never_tears_a_read(self, warehouse):
        pool = ReaderPool()
        rng = random.Random(7)

        def chaos():
            for __ in range(12):
                corrupted = corrupt_one_replica(warehouse.dfs, rng)
                report = warehouse.heal()
                if corrupted:
                    assert report.corrupt_replicas_dropped >= 0
                # fsck is read-only and may overlap readers freely.
                check = warehouse.dfs.fsck()
                assert check.lost_blocks == 0

        pool.run(warehouse, chaos)
        final = warehouse.dfs.fsck()
        assert final.healthy
        assert warehouse.metrics.heal_passes == \
            warehouse.dfs.fault_stats.heal_passes
        assert warehouse.metrics.heal_passes >= 12

    def test_datanode_churn_with_heal_keeps_answers_identical(self, warehouse):
        pool = ReaderPool()
        nodes = sorted(warehouse.dfs.datanodes)

        def chaos():
            for i in range(6):
                victim = nodes[i % len(nodes)]
                warehouse.dfs.kill_datanode(victim)
                warehouse.heal()  # re-replicates onto the live nodes
                warehouse.dfs.restart_datanode(victim)
                warehouse.heal()  # trims the excess copies back down

        pool.run(warehouse, chaos)
        final = warehouse.dfs.fsck()
        assert final.healthy

    def test_fsck_reports_stay_consistent_under_read_load(self, warehouse):
        pool = ReaderPool(threads=2)
        reports = []

        def chaos():
            for __ in range(10):
                reports.append(warehouse.dfs.fsck())

        pool.run(warehouse, chaos)
        assert len({r.blocks for r in reports}) == 1, \
            "fsck must see a stable namespace while only readers run"
        assert all(r.healthy for r in reports)


class TestShardedHealConcurrentWithReaders:
    def test_coordinator_heal_fanout_does_not_disturb_scatter_gather(self):
        generator = TelcoTraceGenerator(TRACE)
        sharded = ShardedSpate(
            SpateConfig(sharding=ShardConfig(shards=2, group_replication=2))
        )
        sharded.register_cells(generator.cells_table())
        for epoch in range(EPOCHS):
            sharded.ingest(generator.snapshot(epoch))
        sharded.finalize()
        try:
            pool = ReaderPool(threads=2)

            def chaos():
                for __ in range(6):
                    reports = sharded.heal()
                    assert len(reports) == sharded.region_groups

            pool.run(sharded, chaos)
        finally:
            sharded.close()
