"""Unit tests for the bit-level reader/writer."""

import pytest
from hypothesis import given, strategies as st

from repro.compression.bitio import BitReader, BitWriter
from repro.errors import CorruptStreamError


class TestBitWriter:
    def test_single_bits_pack_lsb_first(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1, 0, 0, 0, 0):
            writer.write_bit(bit)
        assert writer.getvalue() == bytes([0b00001101])

    def test_write_bits_crosses_byte_boundary(self):
        writer = BitWriter()
        writer.write_bits(0x3FF, 10)  # ten ones
        data = writer.getvalue()
        assert data == bytes([0xFF, 0x03])

    def test_partial_byte_padded_with_zeros(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == bytes([0b00000101])

    def test_align_to_byte_is_idempotent(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.align_to_byte()
        writer.align_to_byte()
        assert writer.getvalue() == bytes([1])

    def test_bit_length_counts_written_bits(self):
        writer = BitWriter()
        writer.write_bits(0, 13)
        assert writer.bit_length == 13

    def test_empty_writer_yields_empty_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_msb_ordering(self):
        writer = BitWriter()
        writer.write_bits_msb(0b110, 3)  # 1 then 1 then 0
        assert writer.getvalue() == bytes([0b00000011])


class TestBitReader:
    def test_round_trip_bits(self):
        writer = BitWriter()
        values = [(5, 3), (0, 1), (1023, 10), (7, 4)]
        for value, count in values:
            writer.write_bits(value, count)
        reader = BitReader(writer.getvalue())
        for value, count in values:
            assert reader.read_bits(count) == value

    def test_read_past_end_raises(self):
        reader = BitReader(b"\x01")
        reader.read_bits(8)
        with pytest.raises(CorruptStreamError):
            reader.read_bit()

    def test_read_bits_zero_count(self):
        reader = BitReader(b"\xff")
        assert reader.read_bits(0) == 0

    def test_bits_remaining(self):
        reader = BitReader(b"\xff\xff")
        assert reader.bits_remaining == 16
        reader.read_bits(5)
        assert reader.bits_remaining == 11

    def test_align_to_byte_discards_partial(self):
        reader = BitReader(bytes([0xFF, 0x01]))
        reader.read_bits(3)
        reader.align_to_byte()
        assert reader.read_bits(8) == 0x01

    @given(st.lists(st.tuples(st.integers(0, 2**20 - 1), st.integers(1, 20))))
    def test_property_round_trip(self, pairs):
        writer = BitWriter()
        for value, count in pairs:
            writer.write_bits(value & ((1 << count) - 1), count)
        reader = BitReader(writer.getvalue())
        for value, count in pairs:
            assert reader.read_bits(count) == value & ((1 << count) - 1)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=100))
    def test_property_single_bit_round_trip(self, bits):
        writer = BitWriter()
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in bits] == bits
