"""Tests for differential compression (the paper's future-work feature)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import get_codec
from repro.compression.differential import (
    IncrementalArchive,
    compress_against,
    decompress_against,
)
from repro.errors import CompressionError


def make_versions(n: int = 6, rows: int = 80) -> list[bytes]:
    """Successive payload versions: low *internal* redundancy (random-ish
    identifiers) but high *cross-version* overlap — only ~10% of lines
    change per version, the regime where delta encoding pays off."""
    import random

    rng = random.Random(5)
    lines = [
        f"20160120|U{rng.randrange(10**8):08d}|C{rng.randrange(10**6):06d}|"
        f"{rng.randrange(10**9)}|{rng.choice('abcdefgh')}"
        for __ in range(rows)
    ]
    versions = []
    for __ in range(n):
        versions.append(("\n".join(lines)).encode())
        for target in rng.sample(range(rows), max(1, rows // 10)):
            lines[target] = (
                f"20160120|U{rng.randrange(10**8):08d}|"
                f"C{rng.randrange(10**6):06d}|{rng.randrange(10**9)}|"
                f"{rng.choice('abcdefgh')}"
            )
    return versions


class TestDeltaStep:
    def test_round_trip(self):
        a, b = make_versions(2)
        delta = compress_against(b, a)
        assert decompress_against(delta, a) == b

    def test_delta_smaller_than_standalone(self):
        a, b = make_versions(2)
        delta = compress_against(b, a)
        standalone = get_codec("gzip").compress(b)
        assert len(delta) < len(standalone)

    def test_wrong_reference_rejected(self):
        from repro.errors import CorruptStreamError

        a, b = make_versions(2)
        delta = compress_against(b, a)
        with pytest.raises(CorruptStreamError):
            decompress_against(delta, b"completely different reference")

    def test_empty_payload(self):
        a, __ = make_versions(2)
        delta = compress_against(b"", a)
        assert decompress_against(delta, a) == b""

    def test_identical_payload_compresses_tiny(self):
        a, __ = make_versions(2)
        delta = compress_against(a, a)
        assert len(delta) < len(a) // 10

    @given(st.binary(max_size=500), st.binary(max_size=500))
    @settings(max_examples=25, deadline=None)
    def test_property_round_trip(self, reference, data):
        delta = compress_against(data, reference)
        assert decompress_against(delta, reference) == data


class TestIncrementalArchive:
    def test_append_read_round_trip(self):
        archive = IncrementalArchive(base_codec_name="gzip-ref", anchor_every=3)
        versions = make_versions(8)
        for payload in versions:
            archive.append(payload)
        for i, payload in enumerate(versions):
            assert archive.read(i) == payload

    def test_anchor_cadence(self):
        archive = IncrementalArchive(base_codec_name="gzip-ref", anchor_every=4)
        for payload in make_versions(9):
            archive.append(payload)
        kinds = [kind for kind, __ in archive.frame_sizes()]
        assert kinds == ["anchor", "delta", "delta", "delta"] * 2 + ["anchor"]

    def test_beats_per_snapshot_compression(self):
        archive = IncrementalArchive(base_codec_name="gzip-ref", anchor_every=8)
        versions = make_versions(8)
        for payload in versions:
            archive.append(payload)
        codec = get_codec("gzip-ref")
        standalone = sum(len(codec.compress(p)) for p in versions)
        assert archive.stats().stored_bytes < standalone

    def test_stats_accounting(self):
        archive = IncrementalArchive(base_codec_name="gzip-ref", anchor_every=2)
        versions = make_versions(5)
        for payload in versions:
            archive.append(payload)
        stats = archive.stats()
        assert stats.frames == 5
        assert stats.anchors == 3
        assert stats.raw_bytes == sum(len(p) for p in versions)
        assert stats.ratio > 1.0

    def test_read_out_of_range(self):
        archive = IncrementalArchive()
        with pytest.raises(IndexError):
            archive.read(0)

    def test_invalid_anchor_cadence(self):
        with pytest.raises(CompressionError):
            IncrementalArchive(anchor_every=0)

    def test_anchor_every_one_means_no_deltas(self):
        archive = IncrementalArchive(base_codec_name="gzip-ref", anchor_every=1)
        for payload in make_versions(4):
            archive.append(payload)
        assert all(kind == "anchor" for kind, __ in archive.frame_sizes())

    def test_len(self):
        archive = IncrementalArchive(base_codec_name="gzip-ref")
        assert len(archive) == 0
        archive.append(b"x" * 100)
        assert len(archive) == 1

    @given(st.lists(st.binary(min_size=0, max_size=300), min_size=1, max_size=8),
           st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_property_arbitrary_payloads(self, payloads, cadence):
        archive = IncrementalArchive(base_codec_name="gzip-ref", anchor_every=cadence)
        for payload in payloads:
            archive.append(payload)
        for i, payload in enumerate(payloads):
            assert archive.read(i) == payload
