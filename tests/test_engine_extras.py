"""Tests for the engine's extra transformations and logistic regression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import EngineContext
from repro.engine.ml import logistic_regression
from repro.errors import EngineError


@pytest.fixture(scope="module")
def ctx():
    context = EngineContext(parallelism=3)
    yield context
    context.shutdown()


class TestUnionSampleSort:
    def test_union_concatenates(self, ctx):
        a = ctx.parallelize([1, 2])
        b = ctx.parallelize([3])
        assert a.union(b).collect() == [1, 2, 3]

    def test_union_keeps_duplicates(self, ctx):
        a = ctx.parallelize([1, 1])
        assert a.union(a).count() == 4

    def test_sample_fraction_bounds(self, ctx):
        data = ctx.parallelize(range(100))
        with pytest.raises(EngineError):
            data.sample(-0.1)
        with pytest.raises(EngineError):
            data.sample(1.5)

    def test_sample_extremes(self, ctx):
        data = ctx.parallelize(range(200))
        assert data.sample(0.0).count() == 0
        assert sorted(data.sample(1.0).collect()) == list(range(200))

    def test_sample_is_roughly_proportional(self, ctx):
        data = ctx.parallelize(range(2000))
        count = data.sample(0.3, seed=5).count()
        assert 400 < count < 800

    def test_sample_deterministic_for_seed(self, ctx):
        data = ctx.parallelize(range(500))
        assert data.sample(0.5, seed=9).collect() == data.sample(0.5, seed=9).collect()

    def test_sort_by(self, ctx):
        data = ctx.parallelize([3, 1, 2])
        assert data.sort_by(lambda x: x).collect() == [1, 2, 3]
        assert data.sort_by(lambda x: x, ascending=False).collect() == [3, 2, 1]

    def test_cache_freezes_pipeline(self, ctx):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        cached = ctx.parallelize([1, 2, 3]).map(spy).cache()
        cached.collect()
        cached.collect()
        assert len(calls) == 3  # map ran once, at cache() time


class TestHistogram:
    def test_basic(self, ctx):
        edges, counts = ctx.parallelize([0.0, 1.0, 2.0, 3.0]).histogram(3)
        assert len(edges) == 4
        assert sum(counts) == 4

    def test_constant_values(self, ctx):
        edges, counts = ctx.parallelize([5.0] * 10).histogram(4)
        assert counts == [10]

    def test_invalid_inputs(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([1.0]).histogram(0)
        with pytest.raises(EngineError):
            ctx.parallelize([]).histogram(3)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=300),
           st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_property_counts_sum(self, values, buckets):
        with EngineContext(parallelism=2) as local:
            __, counts = local.parallelize(values).histogram(buckets)
        assert sum(counts) == len(values)


class TestLogisticRegression:
    def test_separates_linearly_separable_data(self, ctx):
        rng = np.random.default_rng(11)
        lo = rng.normal(loc=[-2, -2], scale=0.5, size=(150, 2))
        hi = rng.normal(loc=[2, 2], scale=0.5, size=(150, 2))
        samples = [(x.tolist(), 0) for x in lo] + [(x.tolist(), 1) for x in hi]
        model = logistic_regression(ctx.parallelize(samples))
        assert model.accuracy(samples) > 0.97
        assert model.n_samples == 300

    def test_probabilities_ordered(self, ctx):
        samples = [([float(i)], int(i > 5)) for i in range(12)]
        model = logistic_regression(ctx.parallelize(samples))
        assert model.predict_proba([0.0]) < model.predict_proba([11.0])

    def test_raw_feature_space_mapping(self, ctx):
        # Features with wildly different scales; the returned model must
        # accept *raw* features.
        rng = np.random.default_rng(3)
        samples = []
        for __ in range(300):
            big = rng.normal(50_000, 10_000)
            label = int(big > 50_000)
            samples.append(([big, rng.normal(0, 1)], label))
        model = logistic_regression(ctx.parallelize(samples))
        assert model.accuracy(samples) > 0.9

    def test_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            logistic_regression(ctx.parallelize([]))

    def test_bad_labels_raise(self, ctx):
        with pytest.raises(EngineError):
            logistic_regression(ctx.parallelize([([1.0], 2)]))

    def test_all_one_class(self, ctx):
        samples = [([float(i)], 1) for i in range(20)]
        model = logistic_regression(ctx.parallelize(samples))
        assert model.predict([5.0]) == 1

    def test_loss_is_finite(self, ctx):
        samples = [([float(i % 3)], i % 2) for i in range(40)]
        model = logistic_regression(ctx.parallelize(samples), iterations=30)
        assert np.isfinite(model.final_loss)
