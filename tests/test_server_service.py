"""The serving layer's request-path contracts.

- **admission** — per-tenant quotas and priorities: over-quota queueing
  is rejected with ``QuotaExceededError``, a full global waiting room
  sheds with ``ServerOverloadedError``, freed slots go to the highest
  priority waiter, and counters land in ``WarehouseMetrics``;
- **backpressure** — the bounded ingest queue parks waiting appenders
  and raises ``IngestBackpressureError`` on ``wait=False`` overflow;
- **deadlines** — time spent queueing is charged against the request's
  budget, so a request that starved in the queue fails (or degrades)
  with a ``deadline`` error code instead of running unbounded;
- **streaming** — ``explore_stream`` yields per-chunk partial results
  whose concatenation equals the unary answer;
- **wire** — requests/responses survive the JSON round-trip and the
  TCP front-end serves real queries over a socket.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core import Spate, SpateConfig
from repro.errors import (
    IngestBackpressureError,
    QuotaExceededError,
    ServerOverloadedError,
    SessionClosedError,
)
from repro.server import (
    AdmissionController,
    QueryRequest,
    QueryResponse,
    ServerConfig,
    SpateServer,
    TenantQuota,
)
from repro.server.service import SpateService
from repro.server.tcp import TcpClient, start_tcp_server


def make_spate(tiny_generator, tiny_snapshots, epochs=6) -> Spate:
    spate = Spate(SpateConfig(codec="gzip-ref"))
    spate.register_cells(tiny_generator.cells_table())
    for snapshot in tiny_snapshots[:epochs]:
        spate.ingest(snapshot)
    return spate


@pytest.fixture()
def spate_six(tiny_generator, tiny_snapshots) -> Spate:
    return make_spate(tiny_generator, tiny_snapshots)


def explore_request(**overrides) -> QueryRequest:
    base = dict(
        op="explore",
        table="CDR",
        attributes=("downflux", "upflux"),
        first_epoch=0,
        last_epoch=5,
    )
    base.update(overrides)
    return QueryRequest(**base)


# ---------------------------------------------------------------------------
# Admission controller (pure asyncio, no warehouse)
# ---------------------------------------------------------------------------


def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_fast_path_admits_up_to_cap(self):
        async def main():
            ctl = AdmissionController(max_concurrent=2)
            await ctl.admit("a")
            await ctl.admit("a")
            assert ctl.running_total == 2
            ctl.release("a")
            ctl.release("a")
            assert ctl.running_total == 0

        run(main())

    def test_waiters_run_when_slots_free(self):
        async def main():
            ctl = AdmissionController(max_concurrent=1)
            await ctl.admit("a")
            waiter = asyncio.ensure_future(ctl.admit("b"))
            await asyncio.sleep(0)
            assert ctl.waiting_total == 1
            ctl.release("a")
            await asyncio.wait_for(waiter, timeout=5)
            assert ctl.running_total == 1
            ctl.release("b")

        run(main())

    def test_priority_order(self):
        async def main():
            quotas = {
                "vip": TenantQuota(priority=10),
                "batch": TenantQuota(priority=1),
            }
            ctl = AdmissionController(max_concurrent=1, quotas=quotas)
            await ctl.admit("batch")
            low = asyncio.ensure_future(ctl.admit("batch"))
            await asyncio.sleep(0)
            high = asyncio.ensure_future(ctl.admit("vip"))
            await asyncio.sleep(0)
            ctl.release("batch")
            await asyncio.wait_for(high, timeout=5)
            assert not low.done(), "low-priority waiter must not jump the vip"
            ctl.release("vip")
            await asyncio.wait_for(low, timeout=5)
            ctl.release("batch")

        run(main())

    def test_global_queue_full_sheds(self):
        async def main():
            ctl = AdmissionController(max_concurrent=1, max_queued=1)
            await ctl.admit("a")
            waiter = asyncio.ensure_future(ctl.admit("a"))
            await asyncio.sleep(0)
            with pytest.raises(ServerOverloadedError):
                await ctl.admit("b")
            ctl.release("a")
            await asyncio.wait_for(waiter, timeout=5)
            ctl.release("a")

        run(main())

    def test_tenant_quota_rejects_only_that_tenant(self):
        async def main():
            quotas = {"greedy": TenantQuota(max_concurrent=1, max_queued=1)}
            ctl = AdmissionController(
                max_concurrent=1, max_queued=10, quotas=quotas
            )
            await ctl.admit("greedy")
            waiter = asyncio.ensure_future(ctl.admit("greedy"))
            await asyncio.sleep(0)
            with pytest.raises(QuotaExceededError):
                await ctl.admit("greedy")
            # Another tenant still queues fine.
            other = asyncio.ensure_future(ctl.admit("polite"))
            await asyncio.sleep(0)
            assert ctl.waiting_total == 2
            ctl.release("greedy")
            await asyncio.wait_for(waiter, timeout=5)
            ctl.release("greedy")
            await asyncio.wait_for(other, timeout=5)
            ctl.release("polite")

        run(main())

    def test_tenant_cap_does_not_block_other_tenants(self):
        async def main():
            quotas = {"capped": TenantQuota(max_concurrent=1)}
            ctl = AdmissionController(max_concurrent=4, quotas=quotas)
            await ctl.admit("capped")
            blocked = asyncio.ensure_future(ctl.admit("capped"))
            await asyncio.sleep(0)
            # A freed-unrelated-slot dispatch must skip the capped tenant
            # and still grant others.
            await asyncio.wait_for(ctl.admit("free"), timeout=5)
            assert not blocked.done()
            ctl.release("capped")
            await asyncio.wait_for(blocked, timeout=5)
            ctl.release("capped")
            ctl.release("free")

        run(main())

    def test_cancelled_waiter_releases_bookkeeping(self):
        async def main():
            ctl = AdmissionController(max_concurrent=1, max_queued=2)
            await ctl.admit("a")
            waiter = asyncio.ensure_future(ctl.admit("a"))
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            assert ctl.waiting_total == 0
            ctl.release("a")
            await asyncio.wait_for(ctl.admit("b"), timeout=5)
            ctl.release("b")
            assert ctl.running_total == 0

        run(main())

    def test_metrics_feed(self):
        from repro.core.metrics import WarehouseMetrics

        async def main():
            metrics = WarehouseMetrics()
            ctl = AdmissionController(
                max_concurrent=1, max_queued=0, metrics=metrics
            )
            await ctl.admit("a")
            with pytest.raises(ServerOverloadedError):
                await ctl.admit("b")
            ctl.release("a")
            assert metrics.requests_admitted == 1
            assert metrics.requests_shed == 1

        run(main())


# ---------------------------------------------------------------------------
# Service: queries, deadlines, streaming
# ---------------------------------------------------------------------------


class TestService:
    def test_explore_matches_direct_call(self, spate_six):
        direct = spate_six.explore(
            "CDR", ("downflux", "upflux"), None, 0, 5
        )
        with SpateServer(spate_six) as server:
            response = server.query(explore_request())
        assert response.ok
        assert response.rows == [list(r) for r in direct.records]
        assert response.coverage["complete"] is True
        assert not response.partial

    def test_sql_matches_direct_call(self, spate_six):
        statement = "SELECT call_type, COUNT(*) AS n FROM CDR GROUP BY call_type"
        direct = spate_six.sql(statement)
        with SpateServer(spate_six) as server:
            response = server.query(QueryRequest(op="sql", sql=statement))
        assert response.ok
        assert response.columns == direct.columns
        assert response.rows == [list(r) for r in direct.rows]

    def test_queue_starved_request_gets_deadline_error(self, spate_six):
        with SpateServer(spate_six) as server:
            # Budget of 0ms is consumed before the warehouse is reached.
            response = server.query(explore_request(deadline_ms=0))
        assert not response.ok
        assert response.error_code == "deadline"

    def test_bad_request_codes(self, spate_six):
        with SpateServer(spate_six) as server:
            no_table = server.query(
                QueryRequest(op="explore", attributes=("downflux",))
            )
            no_sql = server.query(QueryRequest(op="sql"))
        assert (no_table.ok, no_table.error_code) == (False, "bad_request")
        assert (no_sql.ok, no_sql.error_code) == (False, "bad_request")

    def test_query_error_surfaces_as_query_code(self, spate_six):
        with SpateServer(spate_six) as server:
            response = server.query(
                QueryRequest(op="sql", sql="SELECT FROM nonsense !!")
            )
        assert not response.ok
        assert response.error_code == "query"

    def test_metrics_op_reports_serving_counters(self, spate_six):
        with SpateServer(spate_six) as server:
            server.query(explore_request())
            response = server.query(QueryRequest(op="metrics"))
        assert response.ok
        assert "serving admission:" in response.extra["summary"]
        assert response.extra["admission"]["running"] == 0

    def test_stream_concatenation_equals_unary(self, spate_six):
        with SpateServer(spate_six) as server:
            unary = server.query(explore_request())
            chunks = list(
                server.stream_explore(
                    explore_request(op="explore_stream", chunk_epochs=2)
                )
            )
        assert all(c.ok for c in chunks)
        assert len(chunks) == 3
        assert chunks[-1].extra["final"] is True
        streamed_rows = [row for c in chunks for row in c.rows]
        assert streamed_rows == unary.rows
        served = sorted(
            epoch for c in chunks for epoch in c.coverage["epochs_served"]
        )
        assert served == sorted(unary.coverage["epochs_served"])

    def test_rejections_counted_in_metrics(self, tiny_generator, tiny_snapshots):
        spate = make_spate(tiny_generator, tiny_snapshots)
        config = ServerConfig(
            max_concurrent_queries=1,
            max_queued_queries=0,
            quotas={"t": TenantQuota(max_concurrent=1, max_queued=0)},
        )

        async def main():
            async with SpateService(spate, config) as service:
                block = asyncio.Event()
                release = asyncio.Event()

                async def blocker():
                    await service.admission.admit("t")
                    block.set()
                    await release.wait()
                    service.admission.release("t")

                task = asyncio.ensure_future(blocker())
                await block.wait()
                shed = await service.query(
                    explore_request(tenant="other")
                )
                release.set()
                await task
                return shed

        shed = asyncio.run(main())
        assert (shed.ok, shed.error_code) == (False, "overload")
        assert spate.metrics.requests_shed == 1


# ---------------------------------------------------------------------------
# Ingest sessions: ordering + backpressure
# ---------------------------------------------------------------------------


class TestIngestSession:
    def test_appends_ingest_in_order(self, tiny_generator, tiny_snapshots):
        spate = Spate(SpateConfig(codec="gzip-ref"))
        spate.register_cells(tiny_generator.cells_table())
        with SpateServer(spate) as server:
            session = server.ingest_session()
            acks = [session.append(s) for s in tiny_snapshots[:5]]
            stats = [a.result(timeout=60) for a in acks]
            session.close()
        assert all(s is not None for s in stats)
        assert spate.ingested_epochs() == [0, 1, 2, 3, 4]

    def test_nowait_overflow_raises_backpressure(
        self, tiny_generator, tiny_snapshots
    ):
        spate = Spate(SpateConfig(codec="gzip-ref"))
        spate.register_cells(tiny_generator.cells_table())
        config = ServerConfig(ingest_queue_depth=1)

        async def main():
            async with SpateService(spate, config) as service:
                session = service.ingest_session()
                # Flood the depth-1 queue faster than the worker drains.
                overflowed = False
                acks = []
                for snapshot in tiny_snapshots[:8]:
                    try:
                        acks.append(
                            await session.append(snapshot, wait=False)
                        )
                    except IngestBackpressureError:
                        overflowed = True
                        break
                await session.close()
                return overflowed

        assert asyncio.run(main()) is True
        assert spate.metrics.ingest_sheds >= 1

    def test_closed_session_rejects_appends(
        self, tiny_generator, tiny_snapshots
    ):
        spate = Spate(SpateConfig(codec="gzip-ref"))
        spate.register_cells(tiny_generator.cells_table())

        async def main():
            async with SpateService(spate) as service:
                session = service.ingest_session()
                await session.close()
                with pytest.raises(SessionClosedError):
                    await session.append(tiny_snapshots[0])

        asyncio.run(main())

    def test_close_finalize_closes_the_stream(
        self, tiny_generator, tiny_snapshots
    ):
        spate = Spate(SpateConfig(codec="gzip-ref"))
        spate.register_cells(tiny_generator.cells_table())
        with SpateServer(spate) as server:
            session = server.ingest_session()
            session.append(tiny_snapshots[0]).result(timeout=60)
            session.close(finalize=True)
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            spate.ingest(tiny_snapshots[1])


# ---------------------------------------------------------------------------
# Wire format + TCP
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_request_round_trip(self):
        request = explore_request(
            tenant="t9",
            box=(1.0, 2.0, 3.0, 4.0),
            deadline_ms=250,
            partial_ok=True,
        )
        again = QueryRequest.from_dict(request.to_dict())
        assert again == request

    def test_response_round_trip(self):
        response = QueryResponse(
            ok=True,
            columns=["epoch", "downflux"],
            rows=[["1", "22"]],
            aggregates={"downflux": {"count": 1, "total": 22}},
            coverage={"complete": True},
            partial=False,
            latency_ms=1.25,
            extra={"final": True},
        )
        again = QueryResponse.from_dict(response.to_dict())
        assert again.rows == response.rows
        assert again.extra == response.extra

    def test_malformed_requests_rejected(self):
        with pytest.raises(ValueError):
            QueryRequest.from_dict({"op": "drop_tables"})
        with pytest.raises(ValueError):
            QueryRequest.from_dict({"op": "explore", "box": [1, 2]})
        with pytest.raises(ValueError):
            QueryRequest.from_dict("not a dict")


class TestTcp:
    def test_tcp_round_trip(self, spate_six):
        import threading

        port_box: dict[str, int] = {}
        ready = threading.Event()
        done = threading.Event()

        def serve():
            async def main():
                async with SpateService(spate_six) as service:
                    server = await start_tcp_server(service)
                    port_box["port"] = server.sockets[0].getsockname()[1]
                    ready.set()
                    while not done.is_set():
                        await asyncio.sleep(0.02)
                    server.close()
                    await server.wait_closed()

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(timeout=30)
        try:
            with TcpClient("127.0.0.1", port_box["port"]) as client:
                ping = client.request(QueryRequest(op="ping"))
                assert ping.ok and ping.extra["pong"] is True
                response = client.request(explore_request())
                assert response.ok and response.coverage["complete"]
                chunks = list(
                    client.stream(
                        explore_request(op="explore_stream", chunk_epochs=3)
                    )
                )
                assert [c.ok for c in chunks] == [True, True]
                assert chunks[-1].extra["final"] is True
                bad = client.request(QueryRequest(op="sql"))
                assert (bad.ok, bad.error_code) == (False, "bad_request")
        finally:
            done.set()
            thread.join(timeout=30)


# ---------------------------------------------------------------------------
# Deadline accounting
# ---------------------------------------------------------------------------


def test_remaining_deadline_shrinks_while_queued():
    from repro.server.service import _RequestDeadline

    deadline = _RequestDeadline(50)
    assert deadline.remaining_ms() <= 50
    time.sleep(0.06)
    assert deadline.remaining_ms() == 0
    assert _RequestDeadline(None).remaining_ms() is None
