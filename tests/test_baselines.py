"""Tests for the RAW and SHAHED baseline frameworks."""

import pytest

from repro.baselines.raw import RawFramework
from repro.baselines.shahed import ShahedFramework
from repro.dfs import SimulatedDFS
from repro.errors import QueryError
from repro.index.highlights import NumericStats
from repro.spatial.geometry import BoundingBox
from repro.telco import TelcoTraceGenerator, TraceConfig


@pytest.fixture(scope="module")
def generator():
    return TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=23))


@pytest.fixture(scope="module")
def snapshots(generator):
    fresh = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=23))
    return [fresh.snapshot(epoch) for epoch in range(12)]


@pytest.fixture()
def raw(snapshots):
    framework = RawFramework(SimulatedDFS())
    for snapshot in snapshots:
        framework.ingest(snapshot)
    return framework


@pytest.fixture()
def shahed(generator, snapshots):
    framework = ShahedFramework(
        SimulatedDFS(),
        area=generator.topology.area,
        cell_locations={c.cell_id: c.centroid for c in generator.topology.cells},
    )
    for snapshot in snapshots:
        framework.ingest(snapshot)
    return framework


class TestRaw:
    def test_stores_uncompressed(self, raw, snapshots):
        total_raw = sum(
            len(t.serialize()) for s in snapshots for t in s.tables.values()
        )
        assert raw.stored_logical_bytes == total_raw

    def test_read_snapshot_round_trip(self, raw, snapshots):
        restored = raw.read_snapshot(3)
        assert restored.tables["CDR"].rows == snapshots[3].tables["CDR"].rows

    def test_read_table_selective(self, raw, snapshots):
        table = raw.read_table(3, "NMS")
        assert table.rows == snapshots[3].tables["NMS"].rows
        assert raw.read_table(3, "GHOST") is None

    def test_read_unknown_epoch_raises(self, raw):
        with pytest.raises(QueryError):
            raw.read_snapshot(999)

    def test_ingested_epochs(self, raw):
        assert raw.ingested_epochs() == list(range(12))

    def test_read_rows_concatenates(self, raw, snapshots):
        columns, rows = raw.read_rows("CDR", 0, 11)
        expected = sum(len(s.tables["CDR"]) for s in snapshots)
        assert len(rows) == expected
        assert columns == snapshots[0].tables["CDR"].columns

    def test_read_rows_empty_window(self, raw):
        columns, rows = raw.read_rows("CDR", 500, 600)
        assert columns == [] and rows == []

    def test_table_partitions_per_snapshot(self, raw):
        partitions = raw.table_partitions("CDR", 0, 11)
        assert len(partitions) == 12

    def test_ingest_stats(self, raw, snapshots):
        framework = RawFramework(SimulatedDFS())
        stats = framework.ingest(snapshots[0])
        assert stats.raw_bytes == stats.stored_bytes > 0
        assert stats.seconds >= 0


class TestShahed:
    def test_stores_uncompressed_like_raw(self, raw, shahed):
        assert shahed.stored_logical_bytes == raw.stored_logical_bytes

    def test_builds_temporal_aggregate_nodes(self, shahed):
        assert len(shahed.epoch_nodes) == 12
        assert len(shahed.day_nodes) == 1
        assert len(shahed.month_nodes) == 1

    def test_aggregate_query_full_area(self, shahed, generator, snapshots):
        area = generator.topology.area
        stats = shahed.aggregate_query(area, "downflux", 0, 11)
        # Ground truth from the snapshots themselves.
        expected = 0
        for snapshot in snapshots:
            table = snapshot.tables["CDR"]
            idx = table.column_index("downflux")
            expected += sum(
                int(r[idx]) for r in table.rows if r[idx] and r[idx].isdigit()
            )
        assert stats.total == expected

    def test_aggregate_query_epoch_range(self, shahed, generator):
        area = generator.topology.area
        narrow = shahed.aggregate_query(area, "downflux", 0, 2)
        wide = shahed.aggregate_query(area, "downflux", 0, 11)
        assert narrow.count <= wide.count

    def test_aggregate_query_spatial_subset(self, shahed, generator):
        area = generator.topology.area
        west = BoundingBox(area.min_x, area.min_y, area.center.x, area.max_y)
        subset = shahed.aggregate_query(west, "downflux", 0, 11)
        full = shahed.aggregate_query(area, "downflux", 0, 11)
        assert subset.count <= full.count

    def test_unknown_attribute_empty_stats(self, shahed, generator):
        stats = shahed.aggregate_query(generator.topology.area, "ghost", 0, 11)
        assert stats.count == 0

    def test_coarse_day_path_matches_per_epoch_sum(self, shahed, generator):
        """A window covering the whole day must use the day node and give
        exactly the same answer as the per-epoch path."""
        area = generator.topology.area
        coarse = shahed.aggregate_query(area, "downflux", 0, 47)
        per_epoch = NumericStats()
        for node in shahed.epoch_nodes.values():
            per_epoch.merge(node.query(area, "downflux"))
        assert coarse.total == per_epoch.total
        assert coarse.count == per_epoch.count

    def test_day_node_aggregates_match_epoch_sum(self, shahed, generator):
        area = generator.topology.area
        day = next(iter(shahed.day_nodes.values()))
        epoch_total = sum(
            node.query(area, "downflux").total
            for node in shahed.epoch_nodes.values()
        )
        assert day.query(area, "downflux").total == epoch_total
