"""Smoke tests: every example script must run to completion.

These execute the real example mains (the repository's documentation
promises they are runnable); they are the slowest tests in the suite.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "city_traffic_dashboard",
    "privacy_sharing",
    "analytics_pipeline",
    "decay_capacity_planning",
    "traffic_mapping",
    "emergency_response",
    "churn_prediction",
]

EXPECTED_MARKERS = {
    "quickstart": "Temporal index:",
    "city_traffic_dashboard": "Ad-hoc SPATE-SQL:",
    "privacy_sharing": "Mondrian",
    "analytics_pipeline": "T8 regression",
    "decay_capacity_planning": "aggregates survive",
    "traffic_mapping": "Traffic map",
    "emergency_response": "Drop-rate heatmap",
    "churn_prediction": "test accuracy",
}


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    path = EXAMPLES_DIR / f"{name}.py"
    assert path.exists(), f"missing example {path}"
    buffer = io.StringIO()
    argv = sys.argv
    sys.argv = [str(path)]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    output = buffer.getvalue()
    assert EXPECTED_MARKERS[name] in output, (
        f"{name} output missing marker {EXPECTED_MARKERS[name]!r}"
    )


def test_every_example_is_covered():
    on_disk = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)
