"""Tests for the R-tree, quadtree and grid against brute force."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.grid import UniformGrid
from repro.spatial.quadtree import QuadTree
from repro.spatial.rtree import RTree

AREA = BoundingBox(0, 0, 1000, 1000)


def random_points(n: int, seed: int = 7) -> list[Point]:
    rng = random.Random(seed)
    return [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for __ in range(n)]


def brute_force(points: list[Point], box: BoundingBox) -> set[int]:
    return {i for i, p in enumerate(points) if box.contains(p)}


class TestRTree:
    def test_empty_tree_query(self):
        tree = RTree()
        assert tree.query(AREA) == []
        assert len(tree) == 0

    def test_insert_and_query_single(self):
        tree = RTree()
        tree.insert_point(Point(10, 10), "payload")
        assert tree.query(BoundingBox(0, 0, 20, 20)) == ["payload"]
        assert tree.query(BoundingBox(50, 50, 60, 60)) == []

    def test_min_fanout_enforced(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)

    def test_matches_brute_force(self):
        points = random_points(400)
        tree = RTree(max_entries=8)
        for i, point in enumerate(points):
            tree.insert_point(point, i)
        for seed in range(20):
            rng = random.Random(seed)
            x0, y0 = rng.uniform(0, 900), rng.uniform(0, 900)
            box = BoundingBox(x0, y0, x0 + rng.uniform(10, 300), y0 + rng.uniform(10, 300))
            assert set(tree.query(box)) == brute_force(points, box)

    def test_query_count_matches_query(self):
        points = random_points(100, seed=3)
        tree = RTree()
        for i, point in enumerate(points):
            tree.insert_point(point, i)
        box = BoundingBox(100, 100, 600, 600)
        assert tree.query_count(box) == len(tree.query(box))

    def test_items_enumerates_everything(self):
        tree = RTree()
        for i, point in enumerate(random_points(50)):
            tree.insert_point(point, i)
        assert sorted(payload for __, payload in tree.items()) == list(range(50))

    def test_tree_is_balanced(self):
        tree = RTree(max_entries=4)
        for i, point in enumerate(random_points(300, seed=1)):
            tree.insert_point(point, i)
        # 300 entries with fanout 4 must stay logarithmic, not linear.
        assert tree.depth <= 8

    def test_box_entries(self):
        tree = RTree()
        tree.insert(BoundingBox(0, 0, 10, 10), "big")
        tree.insert(BoundingBox(2, 2, 3, 3), "small")
        assert set(tree.query(BoundingBox(1, 1, 4, 4))) == {"big", "small"}

    @given(st.lists(st.tuples(st.floats(0, 1000), st.floats(0, 1000)),
                    min_size=1, max_size=150))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_brute_force(self, raw):
        points = [Point(x, y) for x, y in raw]
        tree = RTree(max_entries=6)
        for i, point in enumerate(points):
            tree.insert_point(point, i)
        box = BoundingBox(250, 250, 750, 750)
        assert set(tree.query(box)) == brute_force(points, box)


class TestQuadTree:
    def test_insert_outside_area_rejected(self):
        tree = QuadTree(AREA)
        with pytest.raises(ValueError):
            tree.insert(Point(-1, 0))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QuadTree(AREA, capacity=0)

    def test_matches_brute_force(self):
        points = random_points(400, seed=11)
        tree = QuadTree(AREA, capacity=8)
        for i, point in enumerate(points):
            tree.insert(point, i)
        for seed in range(20):
            rng = random.Random(seed + 100)
            x0, y0 = rng.uniform(0, 900), rng.uniform(0, 900)
            box = BoundingBox(x0, y0, x0 + rng.uniform(10, 300), y0 + rng.uniform(10, 300))
            assert set(tree.query(box)) == brute_force(points, box)

    def test_duplicates_do_not_recurse_forever(self):
        tree = QuadTree(AREA, capacity=2, max_depth=6)
        for i in range(100):
            tree.insert(Point(500, 500), i)
        assert len(tree) == 100
        assert tree.depth <= 6

    def test_leaf_tiles_partition_area(self):
        tree = QuadTree(AREA, capacity=4)
        for point in random_points(200, seed=5):
            tree.insert(point)
        total = sum(tile.area for tile in tree.leaf_tiles())
        assert total == pytest.approx(AREA.area)

    def test_len_counts_inserts(self):
        tree = QuadTree(AREA)
        for i, point in enumerate(random_points(37)):
            tree.insert(point, i)
        assert len(tree) == 37


class TestUniformGrid:
    def test_tile_of_corners(self):
        grid = UniformGrid(AREA, cols=10, rows=10)
        assert grid.tile_of(Point(0, 0)) == (0, 0)
        assert grid.tile_of(Point(1000, 1000)) == (9, 9)  # max edge folds in

    def test_tile_of_outside_raises(self):
        grid = UniformGrid(AREA)
        with pytest.raises(ValueError):
            grid.tile_of(Point(1001, 0))

    def test_tile_bounds_cover_point(self):
        grid = UniformGrid(AREA, cols=8, rows=8)
        point = Point(333, 777)
        col, row = grid.tile_of(point)
        assert grid.tile_bounds(col, row).contains(point)

    def test_query_superset_of_exact(self):
        grid = UniformGrid(AREA, cols=16, rows=16)
        points = random_points(300, seed=13)
        for i, point in enumerate(points):
            grid.insert(point, i)
        box = BoundingBox(100, 100, 400, 420)
        coarse = set(grid.query(box))
        assert brute_force(points, box) <= coarse

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            UniformGrid(AREA, cols=0)
        with pytest.raises(ValueError):
            UniformGrid(BoundingBox(0, 0, 0, 10))

    def test_bucket_contents(self):
        grid = UniformGrid(AREA, cols=2, rows=2)
        grid.insert(Point(100, 100), "sw")
        grid.insert(Point(900, 900), "ne")
        assert grid.bucket(0, 0) == ["sw"]
        assert grid.bucket(1, 1) == ["ne"]
        assert grid.bucket(0, 1) == []

    def test_tiles_intersecting_disjoint_box(self):
        grid = UniformGrid(AREA)
        assert list(grid.tiles_intersecting(BoundingBox(2000, 2000, 3000, 3000))) == []

    def test_tiles_intersecting_max_edge_agrees_with_tile_of(self):
        # A box lying entirely on the area's max edge used to compute a
        # lower tile index past the last row/col and yield nothing,
        # while tile_of folds max-edge points into the last tile — so
        # query() silently dropped max-edge payloads.
        grid = UniformGrid(AREA, cols=2, rows=2)
        corner = Point(1000, 1000)
        grid.insert(corner, "ne-corner")
        point_box = BoundingBox(1000, 1000, 1000, 1000)
        assert grid.tile_of(corner) in set(grid.tiles_intersecting(point_box))
        assert grid.query(point_box) == ["ne-corner"]
        edge_box = BoundingBox(0, 1000, 1000, 1000)
        assert set(grid.tiles_intersecting(edge_box)) == {(0, 1), (1, 1)}
