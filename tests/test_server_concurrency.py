"""Thread-safety contracts behind the serving layer.

Two layers of guarantees:

- **shared structures** — :class:`LeafCache`, :class:`QueryResultCache`
  and :class:`WarehouseMetrics` take concurrent hits from every reader
  thread; a multi-thread stress pass must leave their invariants intact
  (byte accounting, LRU size bounds, counter totals) and leak no
  exceptions;
- **read-during-ingest** — worker threads querying fixed windows at or
  below the ingest frontier while an ingest session streams epochs must
  observe exactly the answers a quiesced re-run of the same queries
  produces, with no leaked exceptions — the reentrant RW lock makes
  concurrent exploration safe, not merely non-crashing.
"""

from __future__ import annotations

import threading

from repro.core import Spate, SpateConfig
from repro.core.leaf_cache import LeafCache
from repro.core.metrics import WarehouseMetrics, percentile
from repro.core.query_cache import QueryResultCache
from repro.core.snapshot import Table
from repro.server import QueryRequest, ServerConfig, SpateServer

THREADS = 8
ROUNDS = 300


def run_threads(worker, n=THREADS):
    """Run ``worker(thread_index)`` on N threads; re-raise any failure."""
    errors: list[BaseException] = []

    def wrapped(index: int) -> None:
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(n)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "worker thread hung"
    if errors:
        raise errors[0]
    return errors


def make_table(name: str, rows: int = 4) -> Table:
    table = Table(name=name, columns=["a", "b"])
    for i in range(rows):
        table.append([str(i), str(i * 2)])
    return table


class TestLeafCacheThreadSafety:
    def test_concurrent_mixed_operations(self):
        cache = LeafCache(capacity_bytes=64 * 1024)

        def worker(index: int) -> None:
            for round_no in range(ROUNDS):
                epoch = (index * ROUNDS + round_no) % 32
                cache.put(epoch, "CDR", make_table("CDR"), nbytes=1024)
                cache.get(epoch, "CDR")
                cache.has(epoch, "CDR")
                if round_no % 17 == 0:
                    cache.invalidate_epoch(epoch)
                if round_no % 91 == 0:
                    cache.clear()
                len(cache)
                cache.current_bytes

        run_threads(worker)
        # Invariants survived: accounting never exceeds capacity and the
        # stats counters saw every probe.
        assert 0 <= cache.current_bytes <= 64 * 1024
        stats = cache.stats()
        assert stats.hits + stats.misses >= THREADS * ROUNDS

    def test_eviction_accounting_under_contention(self):
        # Capacity of 3 entries: concurrent puts force constant LRU
        # eviction; byte accounting must stay exact.
        cache = LeafCache(capacity_bytes=3 * 100)

        def worker(index: int) -> None:
            for round_no in range(ROUNDS):
                cache.put((index, round_no), "CDR", make_table("CDR"), 100)

        run_threads(worker)
        assert cache.current_bytes == len(cache) * 100
        assert len(cache) <= 3


class TestQueryCacheThreadSafety:
    def test_concurrent_put_get_clear(self):
        cache = QueryResultCache(capacity=16)

        def worker(index: int) -> None:
            for round_no in range(ROUNDS):
                key = ("sql", f"q{round_no % 24}")
                cache.put(key, version=1, result=[round_no, index])
                value = cache.get(key, version=1)
                # A hit must be a deep copy: mutating it cannot poison
                # the cached entry other threads read.
                if value is not None:
                    value.append("mutated")
                if round_no % 50 == 0:
                    cache.clear()
                len(cache)

        run_threads(worker)
        assert len(cache) <= 16
        for round_no in range(24):
            value = cache.get(("sql", f"q{round_no}"), version=1)
            if value is not None:
                assert "mutated" not in value

    def test_version_mismatch_is_safe_concurrently(self):
        cache = QueryResultCache(capacity=8)
        cache.put("k", version=1, result=["v1"])

        def worker(index: int) -> None:
            for round_no in range(ROUNDS):
                cache.put("k", version=round_no % 3, result=[round_no])
                cache.get("k", version=(round_no + 1) % 3)

        run_threads(worker)


class TestMetricsThreadSafety:
    def test_counters_sum_exactly(self):
        metrics = WarehouseMetrics()

        def worker(index: int) -> None:
            for round_no in range(ROUNDS):
                metrics.on_request_admitted(f"tenant-{index % 3}")
                metrics.on_request_done(float(round_no % 50), ok=True)
                metrics.on_request_rejected(shed=round_no % 2 == 0)
                metrics.on_ingest_enqueued(queue_depth=round_no % 5)
                metrics.on_query_cache(hit=round_no % 2 == 0)

        run_threads(worker)
        total = THREADS * ROUNDS
        assert metrics.requests_admitted == total
        assert metrics.requests_completed == total
        assert metrics.requests_rejected + metrics.requests_shed == total
        assert sum(metrics.tenant_queries.values()) == total
        assert metrics.ingest_queue_depth_max == 4
        # The latency reservoir kept every sample (total < cap) and the
        # percentile helper sees a coherent distribution.
        assert metrics.query_latency_ms(100.0) == 49.0
        assert 0.0 <= percentile(metrics._latency_samples_ms, 50.0) <= 49.0
        # summary() renders without tripping over concurrent updates.
        assert "serving admission:" in metrics.summary()


class TestReadDuringIngest:
    def test_queries_during_ingest_match_quiesced_rerun(
        self, tiny_generator, tiny_snapshots
    ):
        """The acceptance check: N reader threads explore fixed windows
        below the frontier while an ingest session streams epochs; every
        answer must be byte-identical to the same query re-run after
        quiesce, and no thread may leak an exception."""
        spate = Spate(SpateConfig(codec="gzip-ref"))
        spate.register_cells(tiny_generator.cells_table())
        total_epochs = 16
        snapshots = tiny_snapshots[:total_epochs]

        live_answers: dict[tuple, dict] = {}
        answers_lock = threading.Lock()
        reader_errors: list[BaseException] = []

        def reader(server, ready_epochs, stop, index):
            try:
                while not stop.is_set():
                    frontier = len(ready_epochs) - 1
                    if frontier < 1:
                        continue
                    # Fixed window entirely at/below the ingest frontier.
                    last = (index + frontier) % (frontier + 1)
                    first = max(0, last - 3)
                    request = QueryRequest(
                        op="explore",
                        tenant=f"reader-{index}",
                        table="CDR",
                        attributes=("downflux", "upflux"),
                        first_epoch=first,
                        last_epoch=last,
                    )
                    response = server.query(request, timeout=120)
                    assert response.ok, response.error
                    assert response.coverage["complete"] is True
                    with answers_lock:
                        live_answers[(first, last)] = {
                            "rows": response.rows,
                            "columns": response.columns,
                        }
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                reader_errors.append(exc)

        ready_epochs: list[int] = []
        stop = threading.Event()
        with SpateServer(
            spate, ServerConfig(max_concurrent_queries=4)
        ) as server:
            session = server.ingest_session()
            readers = [
                threading.Thread(
                    target=reader, args=(server, ready_epochs, stop, i)
                )
                for i in range(4)
            ]
            for thread in readers:
                thread.start()
            try:
                for snapshot in snapshots:
                    session.append(snapshot).result(timeout=120)
                    ready_epochs.append(snapshot.epoch)
            finally:
                stop.set()
                for thread in readers:
                    thread.join(timeout=120)
            session.close()

            assert not reader_errors, f"reader leaked: {reader_errors[0]!r}"
            assert not any(t.is_alive() for t in readers)
            assert live_answers, "no queries completed during ingest"

            # Quiesced re-run: identical windows must yield identical
            # bytes now that ingest has stopped.
            for (first, last), seen in live_answers.items():
                again = server.query(
                    QueryRequest(
                        op="explore",
                        table="CDR",
                        attributes=("downflux", "upflux"),
                        first_epoch=first,
                        last_epoch=last,
                    )
                )
                assert again.ok
                assert again.columns == seen["columns"]
                assert again.rows == seen["rows"], (
                    f"window [{first}, {last}] diverged between live and "
                    "quiesced execution"
                )
        assert spate.ingested_epochs() == list(range(total_epochs))

    def test_sql_during_ingest_is_exception_free(
        self, tiny_generator, tiny_snapshots
    ):
        spate = Spate(SpateConfig(codec="gzip-ref"))
        spate.register_cells(tiny_generator.cells_table())
        statement = (
            "SELECT call_type, COUNT(*) AS n FROM CDR GROUP BY call_type"
        )
        responses: list = []
        with SpateServer(spate) as server:
            session = server.ingest_session()
            acks = [session.append(s) for s in tiny_snapshots[:8]]

            def sql_reader(index: int) -> None:
                acks[min(index, len(acks) - 1)].result(timeout=120)
                responses.append(
                    server.query(
                        QueryRequest(
                            op="sql",
                            sql=statement,
                            first_epoch=0,
                            last_epoch=index,
                        ),
                        timeout=120,
                    )
                )

            run_threads(sql_reader, n=6)
            session.close()
        assert len(responses) == 6
        assert all(r.ok for r in responses), [
            (r.error_code, r.error) for r in responses if not r.ok
        ]
