"""Tests for geometry primitives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.geometry import BoundingBox, Point

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def boxes():
    return st.tuples(coords, coords, coords, coords).map(
        lambda t: BoundingBox(
            min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3])
        )
    )


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Point(1, 2), Point(-4, 7)
        assert a.distance_to(b) == b.distance_to(a)


class TestBoundingBox:
    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(10, 0, 0, 10)

    def test_degenerate_point_box_is_valid(self):
        box = BoundingBox(5, 5, 5, 5)
        assert box.contains(Point(5, 5))
        assert box.area == 0.0

    def test_contains_is_inclusive(self):
        box = BoundingBox(0, 0, 10, 10)
        for point in (Point(0, 0), Point(10, 10), Point(0, 10), Point(5, 5)):
            assert box.contains(point)
        assert not box.contains(Point(10.001, 5))

    def test_from_points(self):
        box = BoundingBox.from_points([Point(1, 5), Point(-2, 3), Point(4, 4)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2, 3, 4, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_around(self):
        box = BoundingBox.around(Point(10, 20), 3)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (7, 17, 13, 23)

    def test_around_asymmetric(self):
        box = BoundingBox.around(Point(0, 0), 2, 5)
        assert box.width == 4 and box.height == 10

    def test_intersects_touching_counts(self):
        a = BoundingBox(0, 0, 5, 5)
        b = BoundingBox(5, 5, 9, 9)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_disjoint(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        assert not a.intersects(b)

    def test_contains_box(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(2, 2, 8, 8)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_union_covers_both(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(5, -3, 6, 0)
        union = a.union(b)
        assert union.contains_box(a) and union.contains_box(b)

    def test_enlargement_zero_for_contained(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(1, 1, 2, 2)
        assert outer.enlargement(inner) == 0.0

    def test_expand_to(self):
        box = BoundingBox(0, 0, 1, 1).expand_to(Point(5, -2))
        assert box.contains(Point(5, -2))
        assert box.contains(Point(0, 0))

    @given(boxes(), boxes())
    @settings(max_examples=80, deadline=None)
    def test_property_intersection_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(boxes(), boxes())
    @settings(max_examples=80, deadline=None)
    def test_property_union_contains_operands(self, a, b):
        union = a.union(b)
        assert union.contains_box(a)
        assert union.contains_box(b)

    @given(boxes(), coords, coords)
    @settings(max_examples=80, deadline=None)
    def test_property_center_inside(self, box, __, ___):
        assert box.contains(box.center)
