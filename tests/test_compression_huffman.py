"""Unit and property tests for canonical Huffman coding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    MAX_CODE_LENGTH,
    canonical_codes,
    code_lengths,
    read_length_table,
    write_length_table,
)


class TestCodeLengths:
    def test_empty_frequencies(self):
        assert code_lengths({}) == {}

    def test_single_symbol_gets_length_one(self):
        assert code_lengths({42: 100}) == {42: 1}

    def test_two_symbols_get_one_bit_each(self):
        lengths = code_lengths({0: 10, 1: 1})
        assert lengths == {0: 1, 1: 1}

    def test_skewed_distribution_gives_short_code_to_frequent(self):
        lengths = code_lengths({0: 1000, 1: 10, 2: 10, 3: 10})
        assert lengths[0] < lengths[1]

    def test_kraft_inequality_holds(self):
        freqs = {i: (i + 1) ** 3 for i in range(40)}
        lengths = code_lengths(freqs)
        kraft = sum(2.0 ** -l for l in lengths.values())
        assert kraft <= 1.0 + 1e-9

    def test_lengths_respect_cap(self):
        # Fibonacci-like frequencies force deep trees.
        freqs = {}
        a, b = 1, 1
        for i in range(40):
            freqs[i] = a
            a, b = b, a + b
        lengths = code_lengths(freqs)
        assert max(lengths.values()) <= MAX_CODE_LENGTH
        kraft = sum(2.0 ** -l for l in lengths.values())
        assert kraft <= 1.0 + 1e-9

    @given(st.dictionaries(st.integers(0, 255), st.integers(1, 10000), min_size=1))
    @settings(max_examples=50, deadline=None)
    def test_property_kraft_and_cap(self, freqs):
        lengths = code_lengths(freqs)
        assert set(lengths) == set(freqs)
        assert max(lengths.values()) <= MAX_CODE_LENGTH
        assert sum(2.0 ** -l for l in lengths.values()) <= 1.0 + 1e-9


class TestCanonicalCodes:
    def test_codes_are_prefix_free(self):
        lengths = code_lengths({i: i + 1 for i in range(20)})
        codes = canonical_codes(lengths)
        rendered = {
            format(code, f"0{length}b") for code, length in codes.values()
        }
        for a in rendered:
            for b in rendered:
                if a != b:
                    assert not b.startswith(a)

    def test_deterministic_assignment(self):
        lengths = {5: 2, 3: 2, 7: 1}
        assert canonical_codes(lengths) == canonical_codes(dict(lengths))


class TestEncoderDecoder:
    def test_round_trip(self):
        message = [1, 2, 3, 1, 1, 2, 9, 1, 1, 1]
        freqs = {s: message.count(s) for s in set(message)}
        lengths = code_lengths(freqs)
        encoder = HuffmanEncoder(lengths)
        writer = BitWriter()
        for symbol in message:
            encoder.encode_symbol(writer, symbol)
        reader = BitReader(writer.getvalue())
        decoder = HuffmanDecoder(lengths)
        assert [decoder.decode_symbol(reader) for _ in message] == message

    def test_encoded_bits_matches_length(self):
        lengths = code_lengths({0: 100, 1: 1, 2: 1})
        encoder = HuffmanEncoder(lengths)
        assert encoder.encoded_bits(0) == lengths[0]

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_property_round_trip(self, message):
        freqs = {s: message.count(s) for s in set(message)}
        lengths = code_lengths(freqs)
        encoder = HuffmanEncoder(lengths)
        writer = BitWriter()
        for symbol in message:
            encoder.encode_symbol(writer, symbol)
        decoder = HuffmanDecoder(lengths)
        reader = BitReader(writer.getvalue())
        assert [decoder.decode_symbol(reader) for _ in message] == message


class TestLengthTable:
    def test_round_trip(self):
        lengths = {0: 3, 5: 1, 17: 7, 31: 15}
        writer = BitWriter()
        write_length_table(writer, lengths, 32)
        reader = BitReader(writer.getvalue())
        assert read_length_table(reader, 32) == lengths

    def test_absent_symbols_read_back_absent(self):
        writer = BitWriter()
        write_length_table(writer, {}, 16)
        reader = BitReader(writer.getvalue())
        assert read_length_table(reader, 16) == {}
