"""Unit and property tests for the LZ77 tokenizer."""

from hypothesis import given, settings, strategies as st

from repro.compression.lz77 import MIN_MATCH, Token, reconstruct, tokenize


def roundtrip(data: bytes, **kwargs) -> bytes:
    return reconstruct(iter(tokenize(data, **kwargs)))


class TestTokenize:
    def test_empty_input_yields_no_tokens(self):
        assert list(tokenize(b"")) == []

    def test_short_input_all_literals(self):
        tokens = list(tokenize(b"ab"))
        assert all(not t.is_match for t in tokens)
        assert bytes(t.literal for t in tokens) == b"ab"

    def test_repetition_produces_matches(self):
        data = b"abcdabcdabcdabcd"
        tokens = list(tokenize(data))
        assert any(t.is_match for t in tokens)

    def test_match_fields(self):
        data = b"0123456789" * 10
        for token in tokenize(data):
            if token.is_match:
                assert token.length >= MIN_MATCH
                assert token.distance >= 1

    def test_incompressible_input_round_trips(self):
        data = bytes(range(256))
        assert roundtrip(data) == data

    def test_run_of_zeros_round_trips(self):
        data = b"\x00" * 5000
        tokens = list(tokenize(data))
        assert roundtrip(data) == data
        # RLE-like input should compress to far fewer tokens than bytes.
        assert len(tokens) < len(data) // 10

    def test_window_limits_distance(self):
        data = b"UNIQUE01" + b"x" * 300 + b"UNIQUE01"
        for token in tokenize(data, window_size=64):
            if token.is_match:
                assert token.distance <= 64

    def test_dictionary_start_emits_only_payload_tokens(self):
        dictionary = b"the quick brown fox "
        payload = b"the quick brown fox jumps"
        full = dictionary + payload
        tokens = list(tokenize(full, start=len(dictionary)))
        assert reconstruct_with_prefix(dictionary, tokens) == payload

    def test_dictionary_enables_cross_boundary_matches(self):
        dictionary = b"ABCDEFGHIJKLMNOP" * 4
        payload = b"ABCDEFGHIJKLMNOP"
        tokens = list(tokenize(dictionary + payload, start=len(dictionary),
                               window_size=1 << 12))
        assert any(t.is_match for t in tokens)

    def test_lazy_matching_toggle(self):
        data = b"aabcaabcaabcabcabcabc"
        assert roundtrip(data, lazy=True) == data
        assert roundtrip(data, lazy=False) == data

    @given(st.binary(max_size=2000))
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, data):
        assert roundtrip(data) == data

    @given(
        st.binary(min_size=1, max_size=60),
        st.integers(min_value=2, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_repeated_blocks_round_trip(self, block, repeats):
        data = block * repeats
        assert roundtrip(data) == data


def reconstruct_with_prefix(prefix: bytes, tokens) -> bytes:
    out = bytearray(prefix)
    for token in tokens:
        if token.is_match:
            start = len(out) - token.distance
            for i in range(token.length):
                out.append(out[start + i])
        else:
            out.append(token.literal)
    return bytes(out[len(prefix):])


class TestReconstruct:
    def test_literal_only(self):
        tokens = [Token(literal=c) for c in b"hello"]
        assert reconstruct(iter(tokens)) == b"hello"

    def test_overlapping_match(self):
        # "aaaa..." style RLE uses distance 1 with long length.
        tokens = [Token(literal=ord("a")), Token(length=9, distance=1)]
        assert reconstruct(iter(tokens)) == b"a" * 10

    def test_invalid_distance_raises(self):
        import pytest

        tokens = [Token(literal=ord("a")), Token(length=4, distance=5)]
        with pytest.raises(ValueError):
            reconstruct(iter(tokens))
