"""Tests for the highlights module: summaries, merging, detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import HighlightsConfig
from repro.core.snapshot import Snapshot, Table
from repro.index.highlights import (
    AttributeSummary,
    CategoricalStats,
    HighlightSummary,
    NumericStats,
    summarize_snapshot,
)


def make_snapshot(epoch: int = 0, drop_flags=None) -> Snapshot:
    drop_flags = drop_flags or (["0"] * 19 + ["1"])
    snapshot = Snapshot(epoch=epoch)
    cdr = Table(
        name="CDR",
        columns=["ts", "cell_id", "drop_flag", "downflux", "result",
                 "call_type", "upflux", "duration_s"],
    )
    for i, flag in enumerate(drop_flags):
        cdr.append([
            "201601180000",
            f"C{i % 3:03d}",
            flag,
            str(100 * (i + 1)),
            "OK" if i else "FAIL",
            "voice",
            str(10 * i),
            str(60),
        ])
    snapshot.add_table(cdr)
    return snapshot


class TestNumericStats:
    def test_streaming_accumulation(self):
        stats = NumericStats()
        for value in (5, -3, 10, 0):
            stats.add(value)
        assert stats.count == 4
        assert stats.total == 12
        assert stats.minimum == -3
        assert stats.maximum == 10
        assert stats.mean == 3.0

    def test_empty_mean_is_zero(self):
        assert NumericStats().mean == 0.0

    def test_merge(self):
        a = NumericStats()
        b = NumericStats()
        for v in (1, 2):
            a.add(v)
        for v in (10, -5):
            b.add(v)
        a.merge(b)
        assert (a.count, a.total, a.minimum, a.maximum) == (4, 8, -5, 10)

    def test_merge_with_empty_is_identity(self):
        a = NumericStats()
        a.add(7)
        before = (a.count, a.total, a.minimum, a.maximum)
        a.merge(NumericStats())
        assert (a.count, a.total, a.minimum, a.maximum) == before

    def test_copy_is_independent(self):
        a = NumericStats()
        a.add(1)
        b = a.copy()
        b.add(100)
        assert a.count == 1 and b.count == 2

    @given(st.lists(st.integers(-10**6, 10**6), min_size=1),
           st.lists(st.integers(-10**6, 10**6), min_size=1))
    @settings(max_examples=50, deadline=None)
    def test_property_merge_equals_combined(self, xs, ys):
        merged = NumericStats()
        for v in xs:
            merged.add(v)
        other = NumericStats()
        for v in ys:
            other.add(v)
        merged.merge(other)
        combined = NumericStats()
        for v in xs + ys:
            combined.add(v)
        assert merged == combined


class TestAttributeSummary:
    def test_numeric_detection(self):
        summary = AttributeSummary()
        summary.add("42")
        summary.add("-7")
        assert summary.numeric is not None
        assert summary.numeric.count == 2

    def test_categorical_only_for_text(self):
        summary = AttributeSummary()
        summary.add("voice")
        assert summary.numeric is None
        assert summary.categorical.counts["voice"] == 1

    def test_empty_values_not_counted_as_numeric(self):
        summary = AttributeSummary()
        summary.add("")
        assert summary.numeric is None
        assert summary.categorical.counts[""] == 1

    def test_distinct_cap_enforced_on_merge(self):
        a = AttributeSummary(max_distinct=10)
        b = AttributeSummary(max_distinct=10)
        for i in range(8):
            a.add(f"v{i}")
        for i in range(8, 16):
            b.add(f"v{i}")
        a.merge(b)
        assert len(a.categorical.counts) <= 10

    def test_merge_combines_numeric(self):
        a = AttributeSummary()
        b = AttributeSummary()
        a.add("1")
        b.add("9")
        a.merge(b)
        assert a.numeric.count == 2 and a.numeric.maximum == 9


class TestSummarizeSnapshot:
    CONFIG = HighlightsConfig()

    def test_record_counts(self):
        summary = summarize_snapshot(make_snapshot(), self.CONFIG)
        assert summary.record_counts["CDR"] == 20

    def test_tracked_attributes_present(self):
        summary = summarize_snapshot(make_snapshot(), self.CONFIG)
        attrs = summary.attributes["CDR"]
        assert "drop_flag" in attrs and "downflux" in attrs

    def test_per_cell_numeric_stats(self):
        summary = summarize_snapshot(make_snapshot(), self.CONFIG)
        cells = summary.per_cell["CDR"]
        assert set(cells) == {"C000", "C001", "C002"}
        total = sum(s["downflux"].count for s in cells.values())
        assert total == 20

    def test_cell_stats_aggregation(self):
        summary = summarize_snapshot(make_snapshot(), self.CONFIG)
        stats = summary.cell_stats("CDR", {"C000", "C001"}, "downflux")
        all_stats = summary.cell_stats("CDR", {"C000", "C001", "C002"}, "downflux")
        assert stats.count < all_stats.count == 20

    def test_untracked_table_ignored(self):
        snapshot = make_snapshot()
        snapshot.add_table(Table(name="MISC", columns=["z"], rows=[["1"]]))
        summary = summarize_snapshot(snapshot, self.CONFIG)
        assert "MISC" not in summary.attributes


class TestHighlightDetection:
    def test_rare_value_detected(self):
        summary = summarize_snapshot(make_snapshot(), HighlightsConfig())
        highlights = summary.detect_highlights(theta=0.10)
        rare = [h for h in highlights if h.attribute == "drop_flag" and h.value == "1"]
        assert len(rare) == 1
        assert rare[0].frequency == 1
        assert rare[0].rate == pytest.approx(1 / 20)

    def test_frequent_value_not_a_highlight(self):
        summary = summarize_snapshot(make_snapshot(), HighlightsConfig())
        highlights = summary.detect_highlights(theta=0.10)
        assert not any(
            h.attribute == "drop_flag" and h.value == "0" for h in highlights
        )

    def test_theta_zero_detects_nothing(self):
        summary = summarize_snapshot(make_snapshot(), HighlightsConfig())
        assert summary.detect_highlights(theta=0.0) == []

    def test_highlight_kind_tagging(self):
        summary = summarize_snapshot(make_snapshot(), HighlightsConfig())
        highlights = summary.detect_highlights(theta=0.10)
        kinds = {h.value: h.kind for h in highlights}
        assert kinds.get("FAIL") == "categorical"
        assert all(
            kind == "numeric" for value, kind in kinds.items() if value.isdigit()
        )


class TestSummaryMerge:
    def test_merge_accumulates_counts(self):
        config = HighlightsConfig()
        day = HighlightSummary(level="day", period="2016-01-18")
        for epoch in range(3):
            day.merge(summarize_snapshot(make_snapshot(epoch), config))
        assert day.record_counts["CDR"] == 60

    def test_merge_preserves_per_cell_breakdown(self):
        config = HighlightsConfig()
        day = HighlightSummary(level="day", period="2016-01-18")
        day.merge(summarize_snapshot(make_snapshot(0), config))
        day.merge(summarize_snapshot(make_snapshot(1), config))
        assert day.cell_stats("CDR", {"C000"}, "downflux").count > 0

    def test_merge_into_empty_copies(self):
        config = HighlightsConfig()
        source = summarize_snapshot(make_snapshot(), config)
        target = HighlightSummary(level="day", period="x")
        target.merge(source)
        # Mutating the source afterwards must not affect the target.
        source.attributes["CDR"]["downflux"].add("999999")
        assert (
            target.attributes["CDR"]["downflux"].numeric.count
            != source.attributes["CDR"]["downflux"].numeric.count
        )
