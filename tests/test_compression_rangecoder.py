"""Unit and property tests for the adaptive binary range coder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.rangecoder import (
    BitModel,
    PROB_INIT,
    RangeDecoder,
    RangeEncoder,
    new_bit_tree,
)
from repro.errors import CorruptStreamError


class TestBitModel:
    def test_initial_probability_is_half(self):
        assert BitModel().prob == PROB_INIT

    def test_adapts_toward_observed_bit(self):
        model = BitModel()
        encoder = RangeEncoder()
        for _ in range(50):
            encoder.encode_bit(model, 0)
        assert model.prob > PROB_INIT  # higher prob == more likely zero


class TestRoundTrip:
    def test_single_model_bits(self):
        bits = [0, 1, 1, 0, 0, 0, 1, 0] * 25
        encoder = RangeEncoder()
        enc_model = BitModel()
        for bit in bits:
            encoder.encode_bit(enc_model, bit)
        data = encoder.finish()
        decoder = RangeDecoder(data)
        dec_model = BitModel()
        assert [decoder.decode_bit(dec_model) for _ in bits] == bits

    def test_direct_bits(self):
        values = [(0, 1), (1, 1), (255, 8), (12345, 14), (0, 5)]
        encoder = RangeEncoder()
        for value, count in values:
            encoder.encode_direct_bits(value, count)
        decoder = RangeDecoder(encoder.finish())
        for value, count in values:
            assert decoder.decode_direct_bits(count) == value

    def test_bit_tree(self):
        symbols = [0, 3, 255, 128, 1, 77]
        encoder = RangeEncoder()
        enc_tree = new_bit_tree(8)
        for symbol in symbols:
            encoder.encode_bit_tree(enc_tree, symbol, 8)
        decoder = RangeDecoder(encoder.finish())
        dec_tree = new_bit_tree(8)
        assert [decoder.decode_bit_tree(dec_tree, 8) for _ in symbols] == symbols

    def test_mixed_stream(self):
        encoder = RangeEncoder()
        model = BitModel()
        tree = new_bit_tree(4)
        encoder.encode_bit(model, 1)
        encoder.encode_direct_bits(9, 6)
        encoder.encode_bit_tree(tree, 13, 4)
        encoder.encode_bit(model, 0)
        decoder = RangeDecoder(encoder.finish())
        d_model = BitModel()
        d_tree = new_bit_tree(4)
        assert decoder.decode_bit(d_model) == 1
        assert decoder.decode_direct_bits(6) == 9
        assert decoder.decode_bit_tree(d_tree, 4) == 13
        assert decoder.decode_bit(d_model) == 0

    def test_skewed_bits_compress(self):
        bits = [0] * 5000 + [1]
        encoder = RangeEncoder()
        model = BitModel()
        for bit in bits:
            encoder.encode_bit(model, bit)
        data = encoder.finish()
        # ~5000 near-certain bits must cost far below 5000/8 bytes.
        assert len(data) < 200

    def test_too_short_stream_rejected(self):
        with pytest.raises(CorruptStreamError):
            RangeDecoder(b"abc")

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=3000))
    @settings(max_examples=40, deadline=None)
    def test_property_adaptive_round_trip(self, bits):
        encoder = RangeEncoder()
        model = BitModel()
        for bit in bits:
            encoder.encode_bit(model, bit)
        decoder = RangeDecoder(encoder.finish())
        dec_model = BitModel()
        assert [decoder.decode_bit(dec_model) for _ in bits] == bits

    @given(st.lists(st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 16))))
    @settings(max_examples=40, deadline=None)
    def test_property_direct_bits_round_trip(self, pairs):
        encoder = RangeEncoder()
        for value, count in pairs:
            encoder.encode_direct_bits(value & ((1 << count) - 1), count)
        decoder = RangeDecoder(encoder.finish())
        for value, count in pairs:
            assert decoder.decode_direct_bits(count) == value & ((1 << count) - 1)
