"""Parallel, pruned query execution must be invisible in the answers.

Three contracts from the read-path redesign:

- **identity** — fanning leaf decodes out over any executor backend and
  pruning leaves via day summaries must leave exploration answers
  byte-identical to the serial, unpruned reference path;
- **deadlines** — ``deadline_ms`` + ``partial_ok`` still cancel cleanly
  under a parallel scan: skipped epochs are itemized exactly and no
  worker threads leak beyond the shared pool;
- **decay safety** — pruning stays sound after decay and fungus rewrite
  leaves underneath their (now superset) day summaries.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import types

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.query.explore as explore_mod
from repro.engine.executor import get_executor
from repro.errors import QueryDeadlineError
from repro.spatial.geometry import BoundingBox

PARALLEL_BACKENDS = ["thread", "process"]
ALL_BACKENDS = ["serial", *PARALLEL_BACKENDS]


def configure(spate, backend: str, pruning: bool):
    """Point an existing warehouse at another executor / pruning mode."""
    spate.config = dataclasses.replace(
        spate.config, executor=backend, query_pruning=pruning
    )
    spate.executor = get_executor(backend, workers=2)
    return spate


def answer(result):
    """Everything a caller can observe from an exploration answer."""
    return (
        result.columns,
        result.records,
        {
            attr: (s.count, s.total, s.minimum, s.maximum)
            for attr, s in sorted(result.aggregates.items())
        },
    )


def centered_box(area, fx: float, fy: float, fw: float) -> BoundingBox:
    return BoundingBox(
        area.min_x + fx * area.width,
        area.min_y + fy * area.height,
        min(area.min_x + (fx + fw) * area.width, area.max_x),
        min(area.min_y + (fy + fw) * area.height, area.max_y),
    )


class TestParallelPrunedIdentity:
    """Parallel + pruned answers equal the serial unpruned reference."""

    @given(
        fx=st.floats(0.0, 0.8),
        fy=st.floats(0.0, 0.8),
        fw=st.floats(0.05, 0.4),
        first=st.integers(0, 40),
        span=st.integers(0, 10),
    )
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_property_box_queries_identical_across_backends(
        self, spate_day, fx, fy, fw, first, span
    ):
        last = min(first + span, 47)
        box = centered_box(spate_day.area, fx, fy, fw)

        configure(spate_day, "serial", pruning=False)
        reference = spate_day.explore("CDR", ("downflux",), box, first, last)
        assert not reference.coverage.epochs_pruned

        for backend in ALL_BACKENDS:
            configure(spate_day, backend, pruning=True)
            result = spate_day.explore("CDR", ("downflux",), box, first, last)
            assert answer(result) == answer(reference), backend
            assert result.coverage.complete
            served = set(result.coverage.epochs_served)
            pruned = set(result.coverage.epochs_pruned)
            assert not served & pruned
            assert served | pruned == set(reference.coverage.epochs_served)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_full_window_scan_identical(self, spate_day, backend):
        configure(spate_day, "serial", pruning=False)
        reference = spate_day.explore("CDR", ("upflux", "duration_s"), None, 0, 47)
        configure(spate_day, backend, pruning=True)
        result = spate_day.explore("CDR", ("upflux", "duration_s"), None, 0, 47)
        assert answer(result) == answer(reference)
        assert result.scan_stats.backend == backend

    def test_scan_stats_account_for_every_leaf(self, spate_day):
        configure(spate_day, "thread", pruning=True)
        box = centered_box(spate_day.area, 0.0, 0.0, 0.25)
        result = spate_day.explore("CDR", ("downflux",), box, 0, 47)
        stats = result.scan_stats
        assert stats.leaves_scanned + stats.leaves_pruned == 48
        if stats.leaves_scanned:
            assert stats.bytes_decompressed > 0 or stats.cache_hits > 0


class TestDeadlineUnderParallelScan:
    """deadline_ms + partial_ok cancellation with a fanned-out decode."""

    @pytest.fixture()
    def ticking_clock(self, monkeypatch):
        """Deterministic monotonic clock: one second per observation."""
        ticks = itertools.count(start=0.0, step=1.0)
        fake = types.SimpleNamespace(monotonic=lambda: next(ticks))
        monkeypatch.setattr(explore_mod, "time", fake)
        return fake

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_partial_deadline_itemizes_exactly(
        self, spate_day, ticking_clock, backend
    ):
        configure(spate_day, backend, pruning=True)
        result = spate_day.explore(
            "CDR", ("downflux",), None, 0, 47,
            deadline_ms=10_000, partial_ok=True,
        )
        coverage = result.coverage
        assert coverage.deadline_hit
        assert not coverage.complete
        served = set(coverage.epochs_served)
        skipped = set(coverage.epochs_skipped)
        assert skipped, "the ticking clock must expire mid-scan"
        assert set(coverage.epochs_skipped.values()) == {"deadline"}
        assert not served & skipped
        assert served | skipped == set(range(48))
        # The partial answer is a prefix: every served record belongs to
        # an epoch before every skipped one (epoch-order gatekeeping).
        if served and skipped:
            assert max(served) < min(skipped)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_strict_deadline_raises(self, spate_day, ticking_clock, backend):
        configure(spate_day, backend, pruning=True)
        with pytest.raises(QueryDeadlineError):
            spate_day.explore(
                "CDR", ("downflux",), None, 0, 47, deadline_ms=10_000
            )

    def test_no_worker_threads_leak(self, spate_day, ticking_clock):
        configure(spate_day, "thread", pruning=True)
        spate_day.explore(  # warm the shared pool
            "CDR", ("downflux",), None, 0, 5, partial_ok=True
        )
        before = threading.active_count()
        for _ in range(5):
            spate_day.explore(
                "CDR", ("downflux",), None, 0, 47,
                deadline_ms=10_000, partial_ok=True,
            )
        # Pools are shared per (kind, workers): repeated cancelled
        # queries must reuse the same two workers, never stack new ones.
        assert threading.active_count() <= before

    def test_deadline_answer_is_a_served_prefix_of_full_answer(
        self, spate_day, monkeypatch
    ):
        # Scan tick budgets until one expires mid-decode (after the
        # gatekeeping pass but before the last chunk), so part of the
        # window is served and the rest is cancelled.
        configure(spate_day, "thread", pruning=True)
        partial = None
        for budget_ms in range(48_000, 60_000, 1_000):
            ticks = itertools.count(start=0.0, step=1.0)
            fake = types.SimpleNamespace(monotonic=lambda: next(ticks))
            monkeypatch.setattr(explore_mod, "time", fake)
            candidate = spate_day.explore(
                "CDR", ("downflux",), None, 0, 47,
                deadline_ms=budget_ms, partial_ok=True,
            )
            if 0 < len(candidate.coverage.epochs_served) < 48:
                partial = candidate
                break
        assert partial is not None, "no budget expired mid-decode"
        served = partial.coverage.epochs_served
        configure(spate_day, "serial", pruning=False)
        full = spate_day.explore(
            "CDR", ("downflux",), None, min(served), max(served)
        )
        assert answer(partial) == answer(full)


class TestZonePruningIdentity:
    """Typed-channel zone-map pruning must be invisible in SQL answers:
    pruning on (zone gate + selective decode active) equals pruning off
    (full decode), across backends, and still after decay + fungus."""

    @pytest.fixture()
    def typed_day(self, tiny_generator, tiny_snapshots):
        from repro.core import Spate, SpateConfig

        spate = Spate(SpateConfig(
            codec="typedchannel", layout="columnar",
            # No leaf cache: a warm cache would serve decoded tables
            # before the zone gate, leaving the property untested.
            leaf_cache_bytes=0,
        ))
        spate.register_cells(tiny_generator.cells_table())
        for snapshot in tiny_snapshots:
            spate.ingest(snapshot)
        spate.finalize()
        return spate

    @given(
        threshold=st.integers(-10, 800),
        op=st.sampled_from(["=", "<", "<=", ">", ">="]),
        column=st.sampled_from(["duration_s", "upflux", "downflux"]),
    )
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_property_zone_pruned_sql_equals_full_decode(
        self, typed_day, threshold, op, column
    ):
        sql = (
            f"SELECT call_type, COUNT(*) AS n, SUM({column}) AS total "
            f"FROM CDR WHERE {column} {op} {threshold} GROUP BY call_type"
        )
        configure(typed_day, "serial", pruning=False)
        reference = typed_day.sql(sql)
        for backend in ALL_BACKENDS:
            configure(typed_day, backend, pruning=True)
            result = typed_day.sql(sql)
            assert result.columns == reference.columns, backend
            assert result.rows == reference.rows, backend

    @pytest.fixture()
    def typed_decayed(self, typed_day):
        report = typed_day.decay_groups(
            older_than_epoch=30, keep_fraction=0.2
        )
        assert report.leaves_rewritten > 0
        return typed_day

    @given(
        threshold=st.integers(0, 700),
        cell_suffix=st.integers(0, 30),
    )
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_property_zone_pruning_sound_after_decay_and_fungus(
        self, typed_decayed, threshold, cell_suffix
    ):
        typed_day = typed_decayed
        sql = (
            "SELECT cell_id, COUNT(*) AS n FROM CDR "
            f"WHERE duration_s >= {threshold} "
            f"AND cell_id != 'C{cell_suffix:05d}' GROUP BY cell_id"
        )
        configure(typed_day, "serial", pruning=False)
        reference = typed_day.sql(sql)
        configure(typed_day, "thread", pruning=True)
        result = typed_day.sql(sql)
        assert result.columns == reference.columns
        assert result.rows == reference.rows

    def test_zone_gate_actually_fires_on_selective_query(self, typed_day):
        configure(typed_day, "thread", pruning=True)
        typed_day.sql(
            "SELECT COUNT(*) FROM CDR WHERE duration_s >= 400"
        )
        stats = typed_day.last_scan_stats
        assert stats.leaves_zone_pruned > 0
        assert stats.channel_bytes_skipped > 0

    def test_explore_box_identity_with_typed_leaves(self, typed_day):
        box = centered_box(typed_day.area, 0.1, 0.1, 0.3)
        configure(typed_day, "serial", pruning=False)
        reference = typed_day.explore("CDR", ("downflux",), box, 0, 47)
        for backend in ALL_BACKENDS:
            configure(typed_day, backend, pruning=True)
            result = typed_day.explore("CDR", ("downflux",), box, 0, 47)
            assert answer(result) == answer(reference), backend


class TestPruningIsDecaySafe:
    """Summaries outlive decay/fungus as supersets: pruning stays sound."""

    @pytest.fixture()
    def decayed(self, spate_day):
        report = spate_day.decay_groups(older_than_epoch=30, keep_fraction=0.2)
        assert report.leaves_rewritten > 0
        return spate_day

    @given(
        fx=st.floats(0.0, 0.7),
        fy=st.floats(0.0, 0.7),
        fw=st.floats(0.1, 0.3),
    )
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_property_box_pruning_after_fungus(self, decayed, fx, fy, fw):
        box = centered_box(decayed.area, fx, fy, fw)
        configure(decayed, "serial", pruning=False)
        reference = decayed.explore("CDR", ("downflux",), box, 0, 47)
        configure(decayed, "thread", pruning=True)
        result = decayed.explore("CDR", ("downflux",), box, 0, 47)
        assert answer(result) == answer(reference)

    def test_sql_predicate_pruning_after_fungus(self, decayed):
        sql = (
            "SELECT call_type, COUNT(*) AS n, SUM(duration_s) AS total "
            "FROM CDR WHERE duration_s >= 300 GROUP BY call_type"
        )
        configure(decayed, "serial", pruning=False)
        reference = decayed.sql(sql)
        configure(decayed, "thread", pruning=True)
        result = decayed.sql(sql)
        assert result.columns == reference.columns
        assert result.rows == reference.rows

    def test_deadline_truncated_result_never_poisons_cache(
        self, spate_day, monkeypatch
    ):
        """Regression: a deadline that expires mid-scan yields a partial
        answer; caching it would serve the truncation as complete to
        every later caller of the same window."""
        spate_day.config = dataclasses.replace(
            spate_day.config, query_cache_entries=8, executor="thread",
            query_pruning=True,
        )
        from repro.core.query_cache import QueryResultCache

        spate_day.query_cache = QueryResultCache(8)
        spate_day.executor = get_executor("thread", workers=2)

        ticks = itertools.count(start=0.0, step=1.0)
        fake = types.SimpleNamespace(monotonic=lambda: next(ticks))
        monkeypatch.setattr(explore_mod, "time", fake)
        partial = spate_day.explore(
            "CDR", ("downflux",), None, 0, 47,
            deadline_ms=10_000, partial_ok=True,
        )
        assert not partial.coverage.complete
        assert len(spate_day.query_cache) == 0

        monkeypatch.undo()
        full = spate_day.explore("CDR", ("downflux",), None, 0, 47)
        assert full.coverage.complete
        assert spate_day.query_cache.hits == 0  # partial was never served
        assert len(full.records) > len(partial.records)

    def test_cache_put_refuses_incomplete_coverage_directly(self):
        from repro.core.query_cache import QueryResultCache

        class Result:
            def __init__(self, coverage):
                self.coverage = coverage

        class Coverage:
            def __init__(self, complete):
                self.complete = complete

        cache = QueryResultCache(4)
        cache.put("k1", 0, Result(Coverage(complete=False)))
        assert cache.get("k1", 0) is None
        cache.put("k2", 0, Result(Coverage(complete=True)))
        assert cache.get("k2", 0) is not None
        # Dict-shaped coverage (the SQL loaders' form): skipped epochs
        # or a tripped deadline both disqualify.
        cache.put("k3", 0, Result({"epochs_skipped": {3: "deadline"}}))
        assert cache.get("k3", 0) is None
        cache.put("k4", 0, Result({"deadline_hit": True}))
        assert cache.get("k4", 0) is None
        cache.put("k5", 0, Result({"epochs_skipped": {}, "deadline_hit": False}))
        assert cache.get("k5", 0) is not None

    def test_index_version_invalidates_query_cache_on_decay(self, spate_day):
        spate_day.config = dataclasses.replace(
            spate_day.config, query_cache_entries=8
        )
        from repro.core.query_cache import QueryResultCache

        spate_day.query_cache = QueryResultCache(8)
        first = spate_day.explore("CDR", ("downflux",), None, 0, 47)
        again = spate_day.explore("CDR", ("downflux",), None, 0, 47)
        assert answer(again) == answer(first)
        assert spate_day.query_cache.hits == 1

        spate_day.decay_groups(older_than_epoch=30, keep_fraction=0.2)
        after = spate_day.explore("CDR", ("downflux",), None, 0, 47)
        assert spate_day.query_cache.hits == 1  # stale entry not served
        assert len(after.records) <= len(first.records)
