"""Tests for l-diversity."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnonymityUnsatisfiableError, PrivacyError
from repro.privacy import (
    default_cdr_hierarchies,
    is_entropy_l_diverse,
    is_k_anonymous,
    is_l_diverse,
    l_diverse_anonymize,
)


def toy_table(n: int = 60):
    columns = ["cell_id", "plan_type", "tech", "call_type", "disease"]
    rows = []
    sensitive = ["flu", "cold", "ok", "ok", "ok"]
    for i in range(n):
        rows.append([
            f"C{i % 4:04d}",
            ["prepaid", "postpaid", "business", "iot"][i % 4],
            ["2G", "3G", "4G"][i % 3],
            ["voice", "sms", "data"][i % 3],
            sensitive[i % 5],
        ])
    return columns, rows


QUASI = ["cell_id", "plan_type", "tech", "call_type"]


class TestChecks:
    def test_empty_is_diverse(self):
        assert is_l_diverse([], [0], 1, 5)
        assert is_entropy_l_diverse([], [0], 1, 5)

    def test_homogeneous_class_fails(self):
        rows = [["q", "flu"], ["q", "flu"], ["q", "flu"]]
        assert is_l_diverse(rows, [0], 1, 1)
        assert not is_l_diverse(rows, [0], 1, 2)

    def test_distinct_diversity_counts_values(self):
        rows = [["q", "flu"], ["q", "cold"], ["q", "flu"]]
        assert is_l_diverse(rows, [0], 1, 2)
        assert not is_l_diverse(rows, [0], 1, 3)

    def test_entropy_stricter_than_distinct_for_skew(self):
        # 99 "ok" + 1 "flu": distinct 2-diverse but entropy far below log 2.
        rows = [["q", "ok"]] * 99 + [["q", "flu"]]
        assert is_l_diverse(rows, [0], 1, 2)
        assert not is_entropy_l_diverse(rows, [0], 1, 2)

    def test_entropy_passes_for_balanced_classes(self):
        rows = [["q", "a"], ["q", "b"]] * 10
        assert is_entropy_l_diverse(rows, [0], 1, 2)


class TestAnonymizer:
    def test_result_satisfies_both_properties(self):
        columns, rows = toy_table()
        result = l_diverse_anonymize(
            rows, columns, QUASI, "disease", default_cdr_hierarchies(),
            k=3, l=2,
        )
        idx = [columns.index(q) for q in QUASI]
        sens = columns.index("disease")
        assert is_k_anonymous(result.rows, idx, 3)
        assert is_l_diverse(result.rows, idx, sens, 2)

    def test_l_one_reduces_to_k_anonymity(self):
        from repro.privacy import full_domain_anonymize

        columns, rows = toy_table()
        with_l = l_diverse_anonymize(
            rows, columns, QUASI, "disease", default_cdr_hierarchies(),
            k=4, l=1,
        )
        plain = full_domain_anonymize(
            rows, columns, QUASI, default_cdr_hierarchies(), k=4
        )
        assert with_l.levels == plain.levels

    def test_higher_l_generalizes_at_least_as_much(self):
        columns, rows = toy_table(120)
        low = l_diverse_anonymize(
            rows, columns, QUASI, "disease", default_cdr_hierarchies(),
            k=2, l=1,
        )
        high = l_diverse_anonymize(
            rows, columns, QUASI, "disease", default_cdr_hierarchies(),
            k=2, l=3,
        )
        total_low = sum(low.levels.values()) - low.suppressed_rows / len(rows)
        assert sum(high.levels.values()) >= sum(low.levels.values()) or (
            high.suppressed_rows >= low.suppressed_rows
        )

    def test_unsatisfiable_l(self):
        columns, rows = toy_table()
        # Only 3 distinct sensitive values exist; l=4 is impossible.
        with pytest.raises(AnonymityUnsatisfiableError):
            l_diverse_anonymize(
                rows, columns, QUASI, "disease", default_cdr_hierarchies(),
                k=2, l=4, max_suppression=0.0,
            )

    def test_sensitive_in_quasi_rejected(self):
        columns, rows = toy_table()
        with pytest.raises(PrivacyError):
            l_diverse_anonymize(
                rows, columns, QUASI + ["disease"], "disease",
                default_cdr_hierarchies(), k=2, l=2,
            )

    def test_invalid_parameters(self):
        columns, rows = toy_table()
        with pytest.raises(PrivacyError):
            l_diverse_anonymize(
                rows, columns, QUASI, "disease",
                default_cdr_hierarchies(), k=0, l=2,
            )

    def test_empty_input(self):
        columns, __ = toy_table()
        result = l_diverse_anonymize(
            [], columns, QUASI, "disease", default_cdr_hierarchies(), k=3, l=2
        )
        assert result.rows == []

    @given(st.integers(2, 5), st.integers(1, 3), st.integers(40, 120))
    @settings(max_examples=15, deadline=None)
    def test_property_released_set_satisfies_constraints(self, k, l, n):
        columns, rows = toy_table(n)
        try:
            result = l_diverse_anonymize(
                rows, columns, QUASI, "disease",
                default_cdr_hierarchies(), k=k, l=l, max_suppression=0.2,
            )
        except AnonymityUnsatisfiableError:
            return
        idx = [columns.index(q) for q in QUASI]
        sens = columns.index("disease")
        assert is_k_anonymous(result.rows, idx, k)
        assert is_l_diverse(result.rows, idx, sens, l)
