"""Tests for the incremence (ingest/rollup) and decay modules."""

import pytest

from repro.compression import get_codec
from repro.core.config import DecayPolicyConfig, SpateConfig
from repro.core.snapshot import EPOCHS_PER_DAY, Snapshot, Table
from repro.dfs import SimulatedDFS
from repro.index.decay import DecayModule, EvictOldestIndividuals, describe_policy
from repro.index.incremence import IncremenceModule
from repro.index.temporal import TemporalIndex


def snapshot_for(epoch: int) -> Snapshot:
    snap = Snapshot(epoch=epoch)
    cdr = Table(
        name="CDR",
        columns=["ts", "cell_id", "drop_flag", "downflux", "result",
                 "call_type", "upflux", "duration_s"],
    )
    for i in range(10):
        cdr.append([
            str(epoch), f"C{i % 2:03d}", "0", str(i * 10), "OK",
            "voice", "0", "30",
        ])
    snap.add_table(cdr)
    return snap


def build(config: SpateConfig | None = None):
    config = config or SpateConfig(codec="gzip-ref")
    dfs = SimulatedDFS()
    index = TemporalIndex()
    module = IncremenceModule(
        dfs=dfs, index=index, codec=get_codec(config.codec), config=config
    )
    return dfs, index, module, config


class TestIncremence:
    def test_ingest_writes_compressed_file(self):
        dfs, index, module, __ = build()
        report = module.ingest(snapshot_for(0))
        assert report.compressed_bytes < report.raw_bytes
        assert dfs.exists(module.leaf_path(0, "CDR"))
        assert index.leaf_count() == 1

    def test_report_has_stage_timings(self):
        __, __, module, __ = build()
        report = module.ingest(snapshot_for(0))
        assert report.total_seconds >= 0
        assert report.ratio > 1.0

    def test_day_summary_accumulates_during_day(self):
        __, index, module, __ = build()
        for epoch in range(5):
            module.ingest(snapshot_for(epoch))
        day = index.day_nodes()[0]
        assert day.summary is not None
        assert day.summary.record_counts["CDR"] == 50
        assert not day.finalized

    def test_day_finalized_on_boundary(self):
        __, index, module, __ = build()
        for epoch in range(EPOCHS_PER_DAY + 1):
            module.ingest(snapshot_for(epoch))
        days = index.day_nodes()
        assert days[0].finalized
        assert not days[1].finalized

    def test_month_rollup_receives_day_summary(self):
        __, index, module, __ = build()
        for epoch in range(EPOCHS_PER_DAY + 1):
            module.ingest(snapshot_for(epoch))
        month = index.month_nodes()[0]
        assert month.summary is not None
        assert month.summary.record_counts["CDR"] == EPOCHS_PER_DAY * 10

    def test_finalize_closes_trailing_periods(self):
        __, index, module, __ = build()
        for epoch in range(5):
            module.ingest(snapshot_for(epoch))
        module.finalize()
        assert index.day_nodes()[0].finalized
        assert index.month_nodes()[0].finalized
        assert index.years[0].finalized
        assert index.root_summary.record_counts.get("CDR") == 50

    def test_finalize_is_idempotent(self):
        __, index, module, __ = build()
        module.ingest(snapshot_for(0))
        module.finalize()
        module.finalize()
        assert index.root_summary.record_counts["CDR"] == 10

    def test_highlights_detected_at_finalize(self):
        __, index, module, __ = build()
        snap = snapshot_for(0)
        snap.tables["CDR"].rows[0][2] = "1"  # one rare drop flag
        module.ingest(snap)
        # More clean snapshots push the "1" rate below theta_day (5%).
        for epoch in range(1, 4):
            module.ingest(snapshot_for(epoch))
        module.finalize()
        day = index.day_nodes()[0]
        assert any(h.value == "1" and h.attribute == "drop_flag"
                   for h in day.summary.highlights)


class TestDecay:
    def make_loaded(self, keep_epochs: int, days: int = 3):
        config = SpateConfig(
            codec="gzip-ref",
            decay=DecayPolicyConfig(keep_epochs=keep_epochs),
        )
        dfs, index, module, __ = build(config)
        decay = DecayModule(dfs=dfs, index=index, config=config.decay)
        for epoch in range(days * EPOCHS_PER_DAY):
            module.ingest(snapshot_for(epoch))
        return dfs, index, decay

    def test_evicts_leaves_beyond_horizon(self):
        dfs, index, decay = self.make_loaded(keep_epochs=EPOCHS_PER_DAY)
        report = decay.run()
        assert report.leaves_evicted == 2 * EPOCHS_PER_DAY
        assert index.leaf_count() == EPOCHS_PER_DAY
        # Evicted files are gone from the DFS.
        for path in report.evicted_paths:
            assert not dfs.exists(path)

    def test_reclaims_bytes(self):
        dfs, __, decay = self.make_loaded(keep_epochs=EPOCHS_PER_DAY)
        before = dfs.stats().logical_bytes
        report = decay.run()
        after = dfs.stats().logical_bytes
        assert report.bytes_reclaimed == before - after > 0

    def test_idempotent_at_fixed_frontier(self):
        __, __, decay = self.make_loaded(keep_epochs=EPOCHS_PER_DAY)
        decay.run()
        second = decay.run()
        assert second.leaves_evicted == 0
        assert second.bytes_reclaimed == 0

    def test_disabled_policy_evicts_nothing(self):
        config = SpateConfig(
            codec="gzip-ref",
            decay=DecayPolicyConfig(enabled=False, keep_epochs=1),
        )
        dfs, index, module, __ = build(config)
        decay = DecayModule(dfs=dfs, index=index, config=config.decay)
        for epoch in range(10):
            module.ingest(snapshot_for(epoch))
        assert decay.run().leaves_evicted == 0
        assert index.leaf_count() == 10

    def test_summaries_survive_leaf_decay(self):
        __, index, decay = self.make_loaded(keep_epochs=EPOCHS_PER_DAY)
        decay.run()
        decayed_day = index.day_nodes()[0]
        assert decayed_day.live_leaves() == []
        assert decayed_day.summary is not None

    def test_day_summary_horizon(self):
        config = SpateConfig(
            codec="gzip-ref",
            decay=DecayPolicyConfig(
                keep_epochs=1, keep_highlight_days=1,
                keep_highlight_months_days=10_000,
            ),
        )
        dfs, index, module, __ = build(config)
        decay = DecayModule(dfs=dfs, index=index, config=config.decay)
        for epoch in range(3 * EPOCHS_PER_DAY):
            module.ingest(snapshot_for(epoch))
        report = decay.run()
        assert report.day_summaries_evicted >= 1
        assert index.day_nodes()[0].summary is None
        # Month summary still intact.
        assert index.month_nodes()[0].summary is not None

    def test_policy_horizons(self):
        policy = EvictOldestIndividuals(DecayPolicyConfig(keep_epochs=10))
        assert policy.leaf_horizon_epoch(100) == 91

    def test_describe_policy(self):
        text = describe_policy(DecayPolicyConfig())
        assert "Evict Oldest Individuals" in text

    def test_empty_index_decay_is_noop(self):
        config = SpateConfig(codec="gzip-ref")
        dfs, index, module, __ = build(config)
        decay = DecayModule(dfs=dfs, index=index, config=config.decay)
        report = decay.run()
        assert report.leaves_evicted == 0
