"""Adversarial decoder tests: corrupt streams must raise
CorruptStreamError (or round-trip if the corruption missed anything
load-bearing) — never escape with IndexError/KeyError/etc."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import get_codec
from repro.errors import CompressionError

CODECS = ["gzip", "7z", "snappy", "zstd", "gzip-ref"]

#: Valid magics so fuzz inputs reach the real decoder paths.
MAGICS = {
    "gzip": b"\x1f\x9d",
    "7z": b"LZM",
    "snappy": b"SNP",
    "zstd": b"ZST",
    "gzip-ref": b"",
}


def _attempt(codec, payload: bytes) -> None:
    """Decompress must either succeed or raise a CompressionError."""
    try:
        codec.decompress(payload)
    except CompressionError:
        pass  # CorruptStreamError included — the contract
    # Any other exception type propagates and fails the test.


@pytest.mark.parametrize("name", CODECS)
class TestGarbageStreams:
    def test_random_bytes_with_magic(self, name):
        codec = get_codec(name)
        rng = random.Random(7)
        for trial in range(25):
            garbage = MAGICS[name] + bytes(
                rng.randrange(256) for __ in range(rng.randrange(1, 200))
            )
            _attempt(codec, garbage)

    def test_bit_flips_in_valid_stream(self, name):
        codec = get_codec(name)
        payload = b"telco snapshot data " * 40
        compressed = bytearray(codec.compress(payload))
        rng = random.Random(13)
        for trial in range(30):
            mutated = bytearray(compressed)
            pos = rng.randrange(len(mutated))
            mutated[pos] ^= 1 << rng.randrange(8)
            _attempt(codec, bytes(mutated))

    def test_truncations(self, name):
        codec = get_codec(name)
        compressed = codec.compress(b"abcdefgh" * 100)
        for cut in range(0, len(compressed), max(1, len(compressed) // 20)):
            _attempt(codec, compressed[:cut])

    @given(data=st.binary(min_size=0, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_property_arbitrary_prefixed_garbage(self, name, data):
        codec = get_codec(name)
        _attempt(codec, MAGICS[name] + data)


class TestLengthBombs:
    """Headers claiming absurd lengths must not hang or allocate wildly."""

    def test_gzip_like_huge_declared_length(self):
        from repro.compression.varint import encode_varint

        codec = get_codec("gzip")
        # magic + huge raw_len + empty-ish body -> must fail fast.
        bomb = b"\x1f\x9d" + encode_varint(2**40) + b"\x00\x00\x00"
        _attempt(codec, bomb)

    def test_lzma_like_huge_declared_length_fails_fast(self):
        from repro.compression.varint import encode_varint

        codec = get_codec("7z")
        bomb = b"LZM" + encode_varint(2**40) + bytes(16)
        with pytest.raises(CompressionError):
            codec.decompress(bomb)

    def test_snappy_literal_overrun(self):
        from repro.compression.varint import encode_varint

        codec = get_codec("snappy")
        bomb = (
            b"SNP" + encode_varint(10)
            + b"\x00" + encode_varint(2**30) + b"xx"
        )
        with pytest.raises(CompressionError):
            codec.decompress(bomb)
