"""Adversarial decoder tests: corrupt streams must raise
CorruptStreamError (or round-trip if the corruption missed anything
load-bearing) — never escape with IndexError/KeyError/etc."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import get_codec
from repro.errors import CompressionError

CODECS = ["gzip", "7z", "snappy", "zstd", "gzip-ref", "typedchannel"]

#: Valid magics so fuzz inputs reach the real decoder paths.
MAGICS = {
    "gzip": b"\x1f\x9d",
    "7z": b"LZM",
    "snappy": b"SNP",
    "zstd": b"ZST",
    "gzip-ref": b"",
    "typedchannel": b"TCH1",
}


def _attempt(codec, payload: bytes) -> None:
    """Decompress must either succeed or raise a CompressionError."""
    try:
        codec.decompress(payload)
    except CompressionError:
        pass  # CorruptStreamError included — the contract
    # Any other exception type propagates and fails the test.


@pytest.mark.parametrize("name", CODECS)
class TestGarbageStreams:
    def test_random_bytes_with_magic(self, name):
        codec = get_codec(name)
        rng = random.Random(7)
        for trial in range(25):
            garbage = MAGICS[name] + bytes(
                rng.randrange(256) for __ in range(rng.randrange(1, 200))
            )
            _attempt(codec, garbage)

    def test_bit_flips_in_valid_stream(self, name):
        codec = get_codec(name)
        payload = b"telco snapshot data " * 40
        compressed = bytearray(codec.compress(payload))
        rng = random.Random(13)
        for trial in range(30):
            mutated = bytearray(compressed)
            pos = rng.randrange(len(mutated))
            mutated[pos] ^= 1 << rng.randrange(8)
            _attempt(codec, bytes(mutated))

    def test_truncations(self, name):
        codec = get_codec(name)
        compressed = codec.compress(b"abcdefgh" * 100)
        for cut in range(0, len(compressed), max(1, len(compressed) // 20)):
            _attempt(codec, compressed[:cut])

    @given(data=st.binary(min_size=0, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_property_arbitrary_prefixed_garbage(self, name, data):
        codec = get_codec(name)
        _attempt(codec, MAGICS[name] + data)


class TestLengthBombs:
    """Headers claiming absurd lengths must not hang or allocate wildly."""

    def test_gzip_like_huge_declared_length(self):
        from repro.compression.varint import encode_varint

        codec = get_codec("gzip")
        # magic + huge raw_len + empty-ish body -> must fail fast.
        bomb = b"\x1f\x9d" + encode_varint(2**40) + b"\x00\x00\x00"
        _attempt(codec, bomb)

    def test_lzma_like_huge_declared_length_fails_fast(self):
        from repro.compression.varint import encode_varint

        codec = get_codec("7z")
        bomb = b"LZM" + encode_varint(2**40) + bytes(16)
        with pytest.raises(CompressionError):
            codec.decompress(bomb)

    def test_snappy_literal_overrun(self):
        from repro.compression.varint import encode_varint

        codec = get_codec("snappy")
        bomb = (
            b"SNP" + encode_varint(10)
            + b"\x00" + encode_varint(2**30) + b"xx"
        )
        with pytest.raises(CompressionError):
            codec.decompress(bomb)


class TestColumnarStreams:
    """Columnar transform decoders under the same contract: corrupt
    inputs raise CorruptStreamError, never IndexError/ValueError/etc."""

    def _attempt_column(self, payload: bytes, expected=None) -> None:
        from repro.compression.columnar import decode_column

        try:
            decode_column(payload, expected_cells=expected)
        except CompressionError:
            pass

    def test_random_garbage(self):
        rng = random.Random(29)
        for trial in range(60):
            garbage = bytes(
                rng.randrange(256) for __ in range(rng.randrange(0, 80))
            )
            self._attempt_column(garbage)

    def test_bit_flips_in_valid_columns(self):
        from repro.compression.columnar import encode_column

        columns = [
            ["voice"] * 40 + ["sms"] * 20,          # rle/dict
            [str(i * 7) for i in range(60)],        # delta
            [f"cell-{i}" for i in range(60)],       # plain-ish
        ]
        rng = random.Random(31)
        for cells in columns:
            blob = bytearray(encode_column(cells))
            for trial in range(40):
                mutated = bytearray(blob)
                pos = rng.randrange(len(mutated))
                mutated[pos] ^= 1 << rng.randrange(8)
                self._attempt_column(bytes(mutated), expected=len(cells))

    def test_truncations(self):
        from repro.compression.columnar import encode_column

        blob = encode_column([str(i % 9) for i in range(200)])
        for cut in range(len(blob)):
            self._attempt_column(blob[:cut], expected=200)

    def test_cell_count_mismatch_rejected(self):
        from repro.compression.columnar import encode_column

        blob = encode_column(["a", "b", "c"])
        with pytest.raises(CompressionError):
            from repro.compression.columnar import decode_column

            decode_column(blob, expected_cells=4)

    def test_declared_cell_bomb(self):
        from repro.compression.varint import encode_varint

        # plain encoding id 0 + absurd cell count, then nothing.
        self._attempt_column(b"\x00" + encode_varint(2**40))

    def test_per_encoding_cell_count_mismatch_rejected(self):
        from repro.compression.columnar import decode_column, encode_column

        columns = {
            "plain": ["x", "y", "z"],
            "rle": ["a"] * 10,
            "dict": ["p", "q", "p", "q"],
            "delta": ["1", "4", "9"],
        }
        for encoding, cells in columns.items():
            blob = encode_column(cells, encoding=encoding)
            for wrong in (len(cells) - 1, len(cells) + 1, 0):
                if wrong == len(cells):
                    continue
                with pytest.raises(CompressionError):
                    decode_column(blob, expected_cells=wrong)

    def test_per_encoding_trailing_garbage_rejected(self):
        from repro.compression.columnar import decode_column, encode_column

        columns = {
            "plain": ["x", "y", "z"],
            "rle": ["a"] * 10 + ["b"] * 3,
            "dict": ["p", "q", "p", "q"],
            "delta": ["1", "4", "9", "-2"],
        }
        for encoding, cells in columns.items():
            blob = encode_column(cells, encoding=encoding)
            with pytest.raises(CompressionError):
                decode_column(blob + b"\x00", expected_cells=len(cells))
            with pytest.raises(CompressionError):
                decode_column(blob + b"junk", expected_cells=len(cells))

    def test_per_encoding_truncation_never_escapes(self):
        from repro.compression.columnar import encode_column

        columns = {
            "plain": [f"cell-{i}" for i in range(40)],
            "rle": ["on"] * 25 + ["off"] * 15,
            "dict": [str(i % 4) for i in range(40)],
            "delta": [str(i * 13) for i in range(40)],
        }
        for encoding, cells in columns.items():
            blob = encode_column(cells, encoding=encoding)
            for cut in range(len(blob)):
                self._attempt_column(blob[:cut], expected=len(cells))

    def test_rle_zero_length_run_rejected(self):
        from repro.compression.columnar import decode_column, encode_column
        from repro.compression.varint import decode_varint, encode_varint

        # Splice a zero-length run in front of a valid RLE stream: the
        # declared total still matches, so only an explicit run-length
        # check catches it (a naive decoder would loop forever on a
        # stream of zero-runs).
        blob = encode_column(["v"] * 6, encoding="rle")
        encoding_id = blob[:1]
        rest = blob[1:]
        total, pos = decode_varint(rest, 0)
        spliced = (
            encoding_id
            + encode_varint(total)
            + encode_varint(0)  # run length 0
            + encode_varint(1)  # value byte-length
            + b"z"
            + rest[pos:]
        )
        with pytest.raises(CompressionError):
            decode_column(spliced, expected_cells=6)

    def test_rle_overrun_rejected(self):
        from repro.compression.columnar import decode_column, encode_column
        from repro.compression.varint import decode_varint, encode_varint

        # Declared total smaller than the runs actually supply.
        blob = encode_column(["v"] * 6 + ["w"] * 2, encoding="rle")
        encoding_id = blob[:1]
        rest = blob[1:]
        __, pos = decode_varint(rest, 0)
        understated = encoding_id + encode_varint(3) + rest[pos:]
        with pytest.raises(CompressionError):
            decode_column(understated, expected_cells=3)

    @given(
        cells=st.lists(
            st.text(
                alphabet=st.characters(codec="utf-8", max_codepoint=0x2FF),
                max_size=12,
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip_and_never_larger_than_plain(self, cells):
        from repro.compression.columnar import (
            decode_column,
            encode_column,
        )

        auto = encode_column(cells)
        assert decode_column(auto, expected_cells=len(cells)) == cells
        plain = encode_column(cells, encoding="plain")
        assert len(auto) <= len(plain)
        for encoding in ("plain", "rle", "dict", "delta"):
            if encoding == "delta" and not all(
                c.lstrip("-").isdigit() and str(int(c)) == c for c in cells if True
            ):
                continue
            forced = encode_column(cells, encoding=encoding)
            assert decode_column(forced, expected_cells=len(cells)) == cells

    def test_choose_encoding_adversarial_columns(self):
        from repro.compression.columnar import choose_encoding, encode_column

        adversarial = [
            ["a", "b"] * 50,                  # alternating: RLE would lose
            ["x"],                            # single cell
            ["1", "", "3"],                   # empty cell breaks int runs
            ["9" * 400, "1"],                 # huge ints
            [str(2**80), str(-(2**80))],      # beyond any fixed-width delta
            ["00", "0", "-0"],                # non-canonical integers
            ["same"] * 3 + ["diff"] * 97,     # run then churn
        ]
        for cells in adversarial:
            name = choose_encoding(cells)
            auto = encode_column(cells)
            plain = encode_column(cells, encoding="plain")
            assert len(auto) <= len(plain), (cells, name)
            from repro.compression.columnar import decode_column

            assert decode_column(auto, expected_cells=len(cells)) == cells


class TestColumnarTables:
    """Whole-table columnar payloads through deserialize_table."""

    def _table(self):
        from repro.core.snapshot import Table

        return Table(
            name="CDR",
            columns=["caller", "callee", "duration_s"],
            rows=[[f"u{i % 5}", f"u{(i + 1) % 7}", str(i * 3)] for i in range(50)],
        )

    def _attempt_table(self, payload: bytes) -> None:
        from repro.core.layout import deserialize_table
        from repro.errors import SpateError

        try:
            deserialize_table("CDR", payload, "columnar")
        except SpateError:
            pass

    def test_bit_flips(self):
        from repro.core.layout import serialize_table

        blob = bytearray(serialize_table(self._table(), "columnar"))
        rng = random.Random(37)
        for trial in range(80):
            mutated = bytearray(blob)
            pos = rng.randrange(len(mutated))
            mutated[pos] ^= 1 << rng.randrange(8)
            self._attempt_table(bytes(mutated))

    def test_truncations(self):
        from repro.core.layout import serialize_table

        blob = serialize_table(self._table(), "columnar")
        for cut in range(0, len(blob), max(1, len(blob) // 50)):
            self._attempt_table(blob[:cut])

    @given(data=st.binary(min_size=0, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_property_garbage_tables(self, data):
        self._attempt_table(data)


class TestTypedChannelStreams:
    """Typed-channel blobs: header parsing and selective decode must
    uphold the corrupt-stream contract on table-mode payloads too."""

    def _blobs(self):
        from repro.core.layout import serialize_table
        from repro.core.snapshot import Table
        from repro.compression import get_codec

        table = Table(
            name="CDR",
            columns=["cell_id", "call_type", "duration_s"],
            rows=[
                [f"c{i % 6}", ("voice", "sms", "data")[i % 3], str(i * 11)]
                for i in range(40)
            ],
        )
        codec = get_codec("typedchannel")
        return (
            codec,
            codec.compress(serialize_table(table, "columnar")),
            codec.compress(serialize_table(table, "row")),
        )

    def _attempt_header(self, blob: bytes) -> None:
        from repro.compression.typedchannel import read_header

        try:
            read_header(blob)
        except CompressionError:
            pass

    def _attempt_decode_table(self, blob: bytes) -> None:
        from repro.compression.typedchannel import decode_table

        try:
            decode_table("CDR", blob, columns=("duration_s",))
        except CompressionError:
            pass

    def test_bit_flips_both_modes(self):
        codec, columnar, row = self._blobs()
        rng = random.Random(43)
        for blob in (columnar, row):
            for trial in range(60):
                mutated = bytearray(blob)
                pos = rng.randrange(len(mutated))
                mutated[pos] ^= 1 << rng.randrange(8)
                corrupted = bytes(mutated)
                _attempt(codec, corrupted)
                self._attempt_header(corrupted)
                self._attempt_decode_table(corrupted)

    def test_truncations_both_modes(self):
        codec, columnar, row = self._blobs()
        for blob in (columnar, row):
            for cut in range(len(blob)):
                _attempt(codec, blob[:cut])
                self._attempt_header(blob[:cut])
                self._attempt_decode_table(blob[:cut])

    def test_zone_map_distinct_bomb(self):
        from repro.compression.varint import encode_varint

        codec, __, __unused = self._blobs()
        # mode 1, one column, absurd distinct count in the zone map.
        bomb = (
            b"TCH1\x01"
            + encode_varint(1)  # n_columns
            + encode_varint(3)  # n_rows
            + encode_varint(1) + b"c"  # column name
            + encode_varint(0) * 4  # body_len raw_len null_count int_count
            + encode_varint(0) * 2  # zigzag min/max
            + b"\x01" + encode_varint(2**40)  # distinct set bomb
        )
        with pytest.raises(CompressionError):
            codec.decompress(bomb)

    def test_body_length_sum_mismatch(self):
        codec, columnar, __ = self._blobs()
        with pytest.raises(CompressionError):
            codec.decompress(columnar + b"extra")

    @given(data=st.binary(min_size=0, max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_property_garbage_headers(self, data):
        codec, __, __unused = self._blobs()
        for mode in (b"\x00", b"\x01", b"\x02", b"\x7f"):
            blob = b"TCH1" + mode + data
            _attempt(codec, blob)
            self._attempt_header(blob)


class TestDictionaryStreams:
    """zstd streams compressed against a trained shared dictionary."""

    def _codecs(self):
        from repro.compression.zstd import ZstdCodec, ZstdDictionary

        samples = [b"telco-shared-preamble|%d|" % i * 30 for i in range(6)]
        trained = ZstdDictionary.train(samples)
        other = ZstdDictionary.train([b"completely different corpus " * 40])
        return (
            ZstdCodec(dictionary=trained),
            ZstdCodec(dictionary=other),
            ZstdCodec(),
        )

    def test_round_trip_and_wrong_dictionary_rejected(self):
        with_dict, wrong_dict, plain = self._codecs()
        payload = b"telco-shared-preamble|42|" * 50
        blob = with_dict.compress(payload)
        assert with_dict.decompress(blob) == payload
        with pytest.raises(CompressionError):
            wrong_dict.decompress(blob)
        with pytest.raises(CompressionError):
            plain.decompress(blob)
        # The reverse is fine: the stream's flag byte says no dictionary
        # is needed, so a dict-configured codec decodes it without one.
        assert with_dict.decompress(plain.compress(payload)) == payload

    def test_bit_flips(self):
        with_dict, __, __unused = self._codecs()
        blob = bytearray(with_dict.compress(b"shared window data " * 60))
        rng = random.Random(41)
        for trial in range(40):
            mutated = bytearray(blob)
            pos = rng.randrange(len(mutated))
            mutated[pos] ^= 1 << rng.randrange(8)
            _attempt(with_dict, bytes(mutated))

    def test_truncations(self):
        with_dict, __, __unused = self._codecs()
        blob = with_dict.compress(b"truncate me " * 80)
        for cut in range(0, len(blob), max(1, len(blob) // 30)):
            _attempt(with_dict, blob[:cut])

    @given(data=st.binary(min_size=0, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_property_garbage_dict_streams(self, data):
        with_dict, __, __unused = self._codecs()
        _attempt(with_dict, b"ZST" + data)
