"""The shared retry machinery: policy, budget, and both consumers.

One :class:`~repro.core.retry.RetryPolicy` / ``RetryBudget`` pair
meters the DFS transient-write path and the shard RPC path, so this
suite pins the schedule's bounds and determinism once and then checks
each integration charges it the same way.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.retry import RetryBudget, RetryPolicy
from repro.dfs.faults import FaultInjector
from repro.dfs.filesystem import SimulatedDFS


class TestRetryPolicy:
    def test_backoff_is_exponential_with_full_jitter(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.01, max_delay_s=1.0)
        rng = random.Random(7)
        for attempt in range(1, 6):
            cap = min(1.0, 0.01 * 2 ** (attempt - 1))
            for __ in range(50):
                backoff = policy.backoff_s(attempt, rng)
                assert 0.0 <= backoff <= cap

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(max_attempts=30, base_delay_s=0.5, max_delay_s=2.0)
        rng = random.Random(1)
        assert all(policy.backoff_s(20, rng) <= 2.0 for __ in range(100))

    def test_schedule_is_deterministic_per_seed(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.001)
        a = [policy.backoff_s(i, random.Random(42)) for i in range(1, 5)]
        b = [policy.backoff_s(i, random.Random(42)) for i in range(1, 5)]
        assert a == b

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=2).backoff_s(0, random.Random(1))


class TestRetryBudget:
    def test_spend_until_exhausted(self):
        budget = RetryBudget(3)
        assert [budget.try_spend() for __ in range(5)] == [
            True, True, True, False, False
        ]
        assert budget.spent == 3
        assert budget.exhausted_hits == 2
        assert budget.remaining == 0

    def test_unlimited_budget(self):
        budget = RetryBudget(None)
        assert all(budget.try_spend() for __ in range(100))
        assert budget.spent == 100
        assert budget.exhausted_hits == 0

    def test_thread_safe_accounting(self):
        budget = RetryBudget(500)
        granted = []

        def spend():
            wins = sum(budget.try_spend() for __ in range(100))
            granted.append(wins)

        threads = [threading.Thread(target=spend) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(granted) == 500
        assert budget.spent == 500


class TestDfsRetryIntegration:
    """Transient write failures retry with backoff charged as modeled
    I/O and spend the filesystem-wide budget."""

    def _dfs(self, failure_rate: float, **kwargs) -> SimulatedDFS:
        injector = FaultInjector(seed=11, write_failure_rate=failure_rate)
        return SimulatedDFS(
            datanodes=4, default_replication=2,
            fault_injector=injector, **kwargs
        )

    def test_transient_failures_absorbed_and_metered(self):
        dfs = self._dfs(0.3, max_write_retries=5)
        for i in range(40):
            dfs.write_file(f"/f{i}", b"payload-%d" % i * 50)
        stats = dfs.fault_stats
        assert stats.write_retries > 0
        assert stats.retry_budget_spent == stats.write_retries
        assert dfs.modeled_io_seconds > 0.0
        for i in range(40):
            assert dfs.read_file(f"/f{i}").startswith(b"payload")

    def test_exhausted_budget_fails_fast(self):
        dfs = self._dfs(0.9, max_write_retries=10, retry_budget=2)
        from repro.errors import StorageError

        wrote = failed = 0
        for i in range(30):
            try:
                dfs.write_file(f"/f{i}", b"x" * 64)
                wrote += 1
            except StorageError:
                failed += 1
        assert failed > 0
        assert dfs.fault_stats.retry_budget_spent == 2
        assert dfs.fault_stats.retry_budget_exhausted > 0
        assert dfs.retry_budget.remaining == 0

    def test_seeded_backoff_is_reproducible(self):
        def run() -> float:
            dfs = self._dfs(0.3, max_write_retries=5, retry_seed=77)
            for i in range(20):
                dfs.write_file(f"/f{i}", b"y" * 128)
            return dfs.modeled_io_seconds

        assert run() == run()

    def test_budget_counters_reach_warehouse_metrics(self):
        from repro.core import Spate, SpateConfig
        from repro.core.config import FaultToleranceConfig
        from repro.telco import TelcoTraceGenerator, TraceConfig

        generator = TelcoTraceGenerator(
            TraceConfig(scale=0.001, days=1, seed=5)
        )
        spate = Spate(SpateConfig(faults=FaultToleranceConfig(
            enabled=True, seed=3, write_failure_rate=0.2,
            crash_rate=0.0, corruption_rate=0.0,
        )))
        spate.register_cells(generator.cells_table())
        for epoch in range(6):
            try:
                spate.ingest(generator.snapshot(epoch))
            except Exception:
                pass
        spate.metrics.sync_storage_faults(spate.dfs.fault_stats)
        assert spate.metrics.dfs_retry_budget_spent == \
            spate.dfs.fault_stats.retry_budget_spent
