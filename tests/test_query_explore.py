"""Tests for Q(a, b, w) exploration over the SPATE instance."""

import pytest

from repro.core import Spate, SpateConfig
from repro.core.config import DecayPolicyConfig
from repro.core.snapshot import EPOCHS_PER_DAY
from repro.errors import QueryError
from repro.index.temporal import SnapshotLeaf, TemporalIndex
from repro.query.explore import ExplorationEngine, ExplorationQuery
from repro.spatial.geometry import BoundingBox
from repro.telco import TelcoTraceGenerator, TraceConfig


class TestQueryValidation:
    def test_inverted_window_rejected(self):
        with pytest.raises(QueryError):
            ExplorationQuery(
                table="CDR", attributes=("a",), box=None,
                first_epoch=10, last_epoch=5,
            )

    def test_empty_attributes_rejected(self):
        with pytest.raises(QueryError):
            ExplorationQuery(
                table="CDR", attributes=(), box=None,
                first_epoch=0, last_epoch=1,
            )


class TestLiveExploration:
    def test_full_area_full_day(self, spate_day):
        result = spate_day.explore("CDR", ("downflux",), None, 0, 47)
        assert result.snapshots_read == 48
        assert len(result.records) > 0
        assert set(result.resolution_by_day.values()) == {"snapshots"}
        assert not result.used_decayed_data

    def test_window_subsets_records(self, spate_day):
        whole = spate_day.explore("CDR", ("downflux",), None, 0, 47)
        half = spate_day.explore("CDR", ("downflux",), None, 0, 23)
        assert len(half.records) < len(whole.records)
        assert half.snapshots_read == 24

    def test_spatial_filter_subsets(self, spate_day):
        area = spate_day.area
        quadrant = BoundingBox(
            area.min_x, area.min_y, area.center.x, area.center.y
        )
        whole = spate_day.explore("CDR", ("downflux",), None, 0, 47)
        boxed = spate_day.explore("CDR", ("downflux",), quadrant, 0, 47)
        assert len(boxed.records) <= len(whole.records)

    def test_empty_box_returns_nothing(self, spate_day):
        nowhere = BoundingBox(-100, -100, -50, -50)
        result = spate_day.explore("CDR", ("downflux",), nowhere, 0, 47)
        assert result.records == []
        assert result.aggregate("downflux").count == 0

    def test_aggregates_match_records(self, spate_day):
        result = spate_day.explore("CDR", ("downflux",), None, 0, 10)
        stats = result.aggregate("downflux")
        values = [int(r[1]) for r in result.records if r[1]]
        assert stats.count == len(values)
        assert stats.total == sum(values)

    def test_records_tagged_with_epoch(self, spate_day):
        result = spate_day.explore("CDR", ("downflux",), None, 5, 6)
        epochs = {r[0] for r in result.records}
        assert epochs <= {"5", "6"}

    def test_nms_table_query(self, spate_day):
        result = spate_day.explore("NMS", ("val",), None, 0, 5)
        assert result.aggregate("val").count > 0

    def test_untracked_attribute_yields_empty_stats(self, spate_day):
        result = spate_day.explore("CDR", ("caller_id",), None, 0, 3)
        # caller_id is not numeric, so no aggregate; records still flow.
        assert result.aggregate("caller_id").count == 0
        assert len(result.records) > 0


class TestDecayedExploration:
    @pytest.fixture()
    def decayed_spate(self, tiny_generator, tiny_snapshots):
        config = SpateConfig(
            codec="gzip-ref",
            decay=DecayPolicyConfig(keep_epochs=12),
        )
        spate = Spate(config)
        spate.register_cells(tiny_generator.cells_table())
        for snapshot in tiny_snapshots:
            spate.ingest(snapshot)
        spate.finalize()
        return spate

    def test_old_epochs_decayed(self, decayed_spate):
        assert decayed_spate.index.leaf_count() == 12

    def test_read_decayed_snapshot_raises(self, decayed_spate):
        from repro.errors import DecayedDataError

        with pytest.raises(DecayedDataError):
            decayed_spate.read_snapshot(0)

    def test_unknown_epoch_raises(self, decayed_spate):
        with pytest.raises(QueryError):
            decayed_spate.read_snapshot(10_000)

    def test_decayed_window_uses_summaries(self, decayed_spate):
        result = decayed_spate.explore("CDR", ("downflux",), None, 0, 47)
        assert result.used_decayed_data
        # Aggregates survive even though records are gone for old epochs.
        assert result.aggregate("downflux").count > 0

    def test_mixed_window_mixes_resolutions(self, decayed_spate):
        # Ingest a second day so day 1 leaves decay but day 2 stays.
        result = decayed_spate.explore("CDR", ("downflux",), None, 0, 47)
        assert "day" in result.resolution_by_day.values()

    def test_decayed_spatial_filter_uses_per_cell_stats(self, decayed_spate):
        area = decayed_spate.area
        west = BoundingBox(area.min_x, area.min_y, area.center.x, area.max_y)
        whole = decayed_spate.explore("CDR", ("downflux",), None, 0, 23)
        boxed = decayed_spate.explore("CDR", ("downflux",), west, 0, 23)
        assert boxed.aggregate("downflux").count <= whole.aggregate("downflux").count


class TestScanDaySchemaDrift:
    """Leaves of one day can expose different table schemas (e.g. after
    a fungus rewrite drops columns).  Record width must stay uniform."""

    @staticmethod
    def _leaf(epoch: int) -> SnapshotLeaf:
        return SnapshotLeaf(
            epoch=epoch, table_paths={}, raw_bytes=0,
            compressed_bytes=0, record_count=1,
        )

    def _engine(self) -> ExplorationEngine:
        from repro.core import Table

        index = TemporalIndex()
        index.insert_leaf(self._leaf(0))
        index.insert_leaf(self._leaf(1))
        tables = {
            0: Table(
                name="CDR",
                columns=["caller_id", "downflux"],
                rows=[["c1", "10"]],
            ),
            # Same day, narrower schema: downflux is gone.
            1: Table(name="CDR", columns=["caller_id"], rows=[["c2"]]),
        }
        return ExplorationEngine(
            index=index,
            read_leaf_table=lambda leaf, name: tables[leaf.epoch],
            cell_locations={},
        )

    def test_records_keep_uniform_width(self):
        engine = self._engine()
        result = engine.evaluate(
            ExplorationQuery(
                table="CDR", attributes=("downflux",), box=None,
                first_epoch=0, last_epoch=1,
            )
        )
        assert result.columns == ["epoch", "downflux"]
        assert all(len(r) == len(result.columns) for r in result.records)
        # The leaf missing the attribute pads with "" instead of
        # shifting values or changing the row width.
        assert result.records == [["0", "10"], ["1", ""]]
        assert result.aggregate("downflux").count == 1

    def test_columns_come_from_query_not_first_leaf(self):
        engine = self._engine()
        result = engine.evaluate(
            ExplorationQuery(
                table="CDR", attributes=("caller_id", "upflux"), box=None,
                first_epoch=0, last_epoch=1,
            )
        )
        assert result.columns == ["epoch", "caller_id", "upflux"]
        assert all(len(r) == 3 for r in result.records)


class TestCoarseMode:
    def test_coarse_uses_single_covering_node(self, spate_day):
        result = spate_day.explore(
            "CDR", ("downflux",), None, 3, 10, coarse=True
        )
        assert list(result.resolution_by_day) == ["*"]
        assert result.aggregate("downflux").count > 0

    def test_coarse_window_spanning_days_uses_month(self, spate_day):
        result = spate_day.explore(
            "CDR", ("downflux",), None, 0, 2 * EPOCHS_PER_DAY - 1, coarse=True
        )
        assert result.resolution_by_day["*"] in ("month", "year", "root", "day")


class TestHighlightsApi:
    def test_highlights_surface_through_facade(self, spate_day):
        highlights = spate_day.highlights(0, 47)
        assert isinstance(highlights, list)
        for h in highlights:
            assert h.total > 0
            assert 0.0 <= h.rate < 1.0
