"""The README's quickstart snippet must actually run."""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def test_quickstart_snippet_executes(capsys):
    text = README.read_text(encoding="utf-8")
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README must contain a python quickstart block"
    snippet = blocks[0]
    # Shrink the trace so the doc test stays fast.
    snippet = snippet.replace("scale=0.01, days=2", "scale=0.002, days=1")
    namespace: dict = {}
    exec(compile(snippet, str(README), "exec"), namespace)  # noqa: S102
    out = capsys.readouterr().out
    assert "root" in out  # the rendered index tree


def test_readme_mentions_all_packages():
    text = README.read_text(encoding="utf-8")
    for package in (
        "repro.telco", "repro.compression", "repro.dfs", "repro.index",
        "repro.spatial", "repro.query", "repro.engine", "repro.privacy",
        "repro.baselines", "repro.core", "repro.evaluation", "repro.ui",
    ):
        assert package in text, f"README architecture omits {package}"


def test_examples_table_matches_disk():
    text = README.read_text(encoding="utf-8")
    examples_dir = Path(__file__).resolve().parent.parent / "examples"
    for path in examples_dir.glob("*.py"):
        assert path.name in text, f"README examples table omits {path.name}"
