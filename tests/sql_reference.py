"""Naive reference SQL engine for the differential harness.

The fuzzer does not generate SQL text directly: it generates a
constrained :class:`QuerySpec`, which this module can both *render* to
SQL (fed to the production ``Database.execute`` against the warehouse
scan path, with predicate pushdown and parallel decode active) and
*evaluate* directly over plainly materialized rows with the obvious
nested-loop / dict-of-lists algorithms.  Any divergence between the two
answers is a bug in the production path.

The evaluator mirrors the production engine's documented coercion
rules — ``""`` and ``None`` are NULL, comparisons are numeric when both
sides coerce to numbers and lexicographic otherwise, NULL comparisons
are false, aggregates drop NULLs — but shares none of its code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ----------------------------------------------------------------------
# Query specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Filter:
    """One WHERE conjunct: ``column op literal``."""

    table: str
    column: str
    op: str  # =, !=, <, <=, >, >=
    value: object  # int or str literal


@dataclass(frozen=True)
class Agg:
    """One aggregate select item; ``column=None`` means ``COUNT(*)``."""

    func: str  # COUNT, SUM, AVG, MIN, MAX
    column: str | None = None


@dataclass(frozen=True)
class JoinSpec:
    """Equi-join with one other table.  ``left_table`` names the
    already-joined table the condition's left side lives on (None means
    the spec's base table), so chains like CDR->CELL->NMS compose."""

    table: str
    left_column: str
    right_column: str
    kind: str = "inner"  # inner | left
    left_table: str | None = None


@dataclass(frozen=True)
class CaseSpec:
    """One ``CASE WHEN col op literal THEN then ELSE other END`` select
    item over a base-table (or joined-table) column."""

    table: str
    column: str
    op: str
    value: object
    then: object
    other: object


@dataclass(frozen=True)
class OrderSpec:
    """One ORDER BY key over an *output* column alias."""

    column: str
    ascending: bool = True


@dataclass(frozen=True)
class QuerySpec:
    """A constrained SELECT: filters, optional joins/grouping/having/
    ordering/limit, optionally UNIONed with a second branch."""

    table: str
    select: tuple[tuple[str, str], ...] = ()  # (table, column) projections
    aggs: tuple[Agg, ...] = ()
    filters: tuple[Filter, ...] = ()
    join: JoinSpec | None = None
    #: Additional join chain after ``join`` (which is kept for the
    #: original single-join specs); evaluated left to right.
    joins: tuple[JoinSpec, ...] = ()
    #: CASE select items, aliased k0.. after the plain columns.
    cases: tuple[CaseSpec, ...] = ()
    group_by: tuple[str, ...] = ()  # base-table columns
    #: HAVING conjuncts over aggregate aliases: (alias, op, literal).
    having: tuple[tuple[str, str, object], ...] = ()
    order_by: tuple[OrderSpec, ...] = ()
    limit: int | None = None
    #: Render the join chain in implicit comma form (FROM a, b, c with
    #: the equi conditions moved into WHERE) — the shape that exercises
    #: the vectorized engine's cost-based join reordering.
    implicit_join: bool = False
    #: Optional UNION with a second branch of the same column arity.
    union: "QuerySpec | None" = None
    union_all: bool = False

    def all_joins(self) -> tuple[JoinSpec, ...]:
        head = (self.join,) if self.join is not None else ()
        return head + self.joins


# ----------------------------------------------------------------------
# Rendering to SQL
# ----------------------------------------------------------------------


def _ref(spec: QuerySpec, table: str, column: str) -> str:
    """Qualified only when a join makes bare names ambiguous."""
    return f"{table}.{column}" if spec.all_joins() else column


def _literal(value: object) -> str:
    if isinstance(value, int):
        return str(value)
    return "'" + str(value).replace("'", "''") + "'"


def _render_select(spec: QuerySpec) -> str:
    """One SELECT body (no UNION chaining, no trailing ORDER/LIMIT)."""
    items: list[str] = []
    for i, (table, column) in enumerate(spec.select):
        items.append(f"{_ref(spec, table, column)} AS c{i}")
    for i, case in enumerate(spec.cases):
        items.append(
            f"CASE WHEN {_ref(spec, case.table, case.column)} {case.op} "
            f"{_literal(case.value)} THEN {_literal(case.then)} "
            f"ELSE {_literal(case.other)} END AS k{i}"
        )
    for i, agg in enumerate(spec.aggs):
        arg = "*" if agg.column is None else _ref(spec, spec.table, agg.column)
        items.append(f"{agg.func}({arg}) AS a{i}")

    joins = spec.all_joins()
    join_conjuncts: list[str] = []
    if spec.implicit_join and joins:
        # FROM a, b, c — the parser's comma spelling of a cross join;
        # the equi conditions ride in WHERE, which is exactly the shape
        # the cost-based planner flattens and reorders.
        sql = "SELECT {} FROM {}".format(
            ", ".join(items),
            ", ".join([spec.table] + [j.table for j in joins]),
        )
        for join in joins:
            left = join.left_table or spec.table
            join_conjuncts.append(
                f"{left}.{join.left_column} = "
                f"{join.table}.{join.right_column}"
            )
    else:
        sql = f"SELECT {', '.join(items)} FROM {spec.table}"
        for join in joins:
            keyword = "LEFT JOIN" if join.kind == "left" else "JOIN"
            left = join.left_table or spec.table
            sql += (
                f" {keyword} {join.table} ON "
                f"{left}.{join.left_column} = "
                f"{join.table}.{join.right_column}"
            )
    conjuncts = join_conjuncts + [
        f"{_ref(spec, f.table, f.column)} {f.op} {_literal(f.value)}"
        for f in spec.filters
    ]
    if conjuncts:
        sql += " WHERE " + " AND ".join(conjuncts)
    if spec.group_by:
        sql += " GROUP BY " + ", ".join(
            _ref(spec, spec.table, c) for c in spec.group_by
        )
    if spec.having:
        sql += " HAVING " + " AND ".join(
            f"{alias} {op} {_literal(value)}"
            for alias, op, value in spec.having
        )
    return sql


def render_sql(spec: QuerySpec) -> str:
    """Spec -> SELECT text; every output column gets an explicit alias."""
    sql = _render_select(spec)
    if spec.union is not None:
        keyword = "UNION ALL" if spec.union_all else "UNION"
        sql += f" {keyword} " + _render_select(spec.union)
    if spec.order_by:
        sql += " ORDER BY " + ", ".join(
            order.column + ("" if order.ascending else " DESC")
            for order in spec.order_by
        )
    if spec.limit is not None:
        sql += f" LIMIT {spec.limit}"
    return sql


# ----------------------------------------------------------------------
# Naive evaluation
# ----------------------------------------------------------------------


def _is_null(value) -> bool:
    return value is None or value == ""


def _number(value):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                return None
    return None


def _compare(left, right) -> int:
    ln, rn = _number(left), _number(right)
    if ln is not None and rn is not None:
        return (ln > rn) - (ln < rn)
    ls, rs = str(left), str(right)
    return (ls > rs) - (ls < rs)


def _matches(value, op: str, literal) -> bool:
    if _is_null(value) or _is_null(literal):
        return False
    cmp = _compare(value, literal)
    return {
        "=": cmp == 0,
        "!=": cmp != 0,
        "<": cmp < 0,
        "<=": cmp <= 0,
        ">": cmp > 0,
        ">=": cmp >= 0,
    }[op]


def _join_key(value):
    number = _number(value)
    return number if number is not None else value


def _order_rank(value):
    """Independent mirror of the engine's ORDER BY rank: non-NULLs
    first (numbers before strings), NULLs last."""
    null = _is_null(value)
    number = _number(value)
    if number is not None:
        key = (0, number, "")
    else:
        key = (1, 0.0, str(value))
    return (1 if null else 0, key)


class _Asc:
    __slots__ = ("rank",)

    def __init__(self, value):
        self.rank = _order_rank(value)

    def __lt__(self, other):
        return self.rank < other.rank

    def __eq__(self, other):
        return self.rank == other.rank


class _Desc(_Asc):
    __slots__ = ()

    def __lt__(self, other):
        return self.rank > other.rank


def _aggregate(agg: Agg, rows: list[list], idx: int | None):
    if agg.func == "COUNT" and agg.column is None:
        return len(rows)
    values = [row[idx] for row in rows if not _is_null(row[idx])]
    if agg.func == "COUNT":
        return len(values)
    if not values:
        return None
    if agg.func in ("SUM", "AVG"):
        numbers = [n for n in (_number(v) for v in values) if n is not None]
        if not numbers:
            return None
        total = sum(numbers)
        return total if agg.func == "SUM" else total / len(numbers)
    best = values[0]
    for value in values[1:]:
        cmp = _compare(value, best)
        if (agg.func == "MIN" and cmp < 0) or (agg.func == "MAX" and cmp > 0):
            best = value
    return best


@dataclass
class _Relation:
    """Rows plus a (table, column) -> index resolver."""

    fields: list[tuple[str, str]]
    rows: list[list]
    index: dict[tuple[str, str], int] = field(init=False)

    def __post_init__(self) -> None:
        self.index = {f: i for i, f in enumerate(self.fields)}

    def at(self, table: str, column: str) -> int:
        return self.index[(table, column)]


def _case_value(case: CaseSpec, row: list, rel: "_Relation"):
    cell = row[rel.at(case.table, case.column)]
    return case.then if _matches(cell, case.op, case.value) else case.other


def _evaluate_branch(
    spec: QuerySpec, tables: dict[str, tuple[list[str], list[list[str]]]]
) -> tuple[list[str], list[list]]:
    """One SELECT body (joins, filters, grouping, having) — no trailing
    ORDER BY/LIMIT, no UNION chaining."""
    base_columns, base_rows = tables[spec.table]
    rel = _Relation(
        fields=[(spec.table, c) for c in base_columns],
        rows=[list(r) for r in base_rows],
    )

    for join in spec.all_joins():
        right_columns, right_rows = tables[join.table]
        right_fields = [(join.table, c) for c in right_columns]
        right_at = {f: i for i, f in enumerate(right_fields)}
        left_idx = rel.at(join.left_table or spec.table, join.left_column)
        right_idx = right_at[(join.table, join.right_column)]
        bucket: dict[object, list[list]] = {}
        for row in right_rows:
            bucket.setdefault(_join_key(row[right_idx]), []).append(list(row))
        joined: list[list] = []
        for lrow in rel.rows:
            matched = False
            for rrow in bucket.get(_join_key(lrow[left_idx]), []):
                if _matches(lrow[left_idx], "=", rrow[right_idx]):
                    joined.append(lrow + rrow)
                    matched = True
            if not matched and join.kind == "left":
                joined.append(lrow + [None] * len(right_fields))
        rel = _Relation(fields=rel.fields + right_fields, rows=joined)

    for flt in spec.filters:
        idx = rel.at(flt.table, flt.column)
        rel.rows = [r for r in rel.rows if _matches(r[idx], flt.op, flt.value)]

    columns = (
        [f"c{i}" for i in range(len(spec.select))]
        + [f"k{i}" for i in range(len(spec.cases))]
        + [f"a{i}" for i in range(len(spec.aggs))]
    )

    if spec.group_by or spec.aggs:
        key_idx = [rel.at(spec.table, c) for c in spec.group_by]
        groups: dict[tuple, list[list]] = {}
        if spec.group_by:
            for row in rel.rows:
                groups.setdefault(
                    tuple(row[i] for i in key_idx), []
                ).append(row)
        else:
            groups[()] = rel.rows
        out: list[list] = []
        for sig in sorted(groups):
            group_rows = groups[sig]
            row: list = []
            for table, column in spec.select:
                row.append(group_rows[0][rel.at(table, column)])
            for case in spec.cases:
                # Non-aggregate select items read the group's
                # representative (first) row, like the engine.
                row.append(_case_value(case, group_rows[0], rel))
            for agg in spec.aggs:
                idx = (
                    None
                    if agg.column is None
                    else rel.at(spec.table, agg.column)
                )
                row.append(_aggregate(agg, group_rows, idx))
            out.append(row)
        if spec.having:
            having_idx = [
                (columns.index(alias), op, value)
                for alias, op, value in spec.having
            ]
            out = [
                row
                for row in out
                if all(
                    _matches(row[i], op, value) for i, op, value in having_idx
                )
            ]
    else:
        pick = [rel.at(table, column) for table, column in spec.select]
        out = []
        for row in rel.rows:
            projected = [row[i] for i in pick]
            projected.extend(
                _case_value(case, row, rel) for case in spec.cases
            )
            out.append(projected)
    return columns, out


def evaluate(
    spec: QuerySpec, tables: dict[str, tuple[list[str], list[list[str]]]]
) -> tuple[list[str], list[list]]:
    """Evaluate ``spec`` over materialized ``tables`` (name -> cols, rows).

    Returns ``(columns, rows)`` in the same order the production engine
    produces: scan order for plain queries, group-signature order for
    grouped ones, concatenation (+ first-occurrence dedup) for UNIONs,
    stable output-column sort when the spec orders.
    """
    columns, out = _evaluate_branch(spec, tables)

    if spec.union is not None:
        __, branch_rows = _evaluate_branch(spec.union, tables)
        out = out + branch_rows
        if not spec.union_all:
            seen: set[tuple] = set()
            unique: list[list] = []
            for row in out:
                key = tuple(_join_key(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            out = unique

    if spec.order_by:
        keys = [
            (columns.index(order.column), order.ascending)
            for order in spec.order_by
        ]
        out = sorted(
            out,
            key=lambda row: tuple(
                _Asc(row[i]) if asc else _Desc(row[i]) for i, asc in keys
            ),
        )

    if spec.limit is not None:
        out = out[: spec.limit]
    return columns, out
