"""Naive reference SQL engine for the differential harness.

The fuzzer does not generate SQL text directly: it generates a
constrained :class:`QuerySpec`, which this module can both *render* to
SQL (fed to the production ``Database.execute`` against the warehouse
scan path, with predicate pushdown and parallel decode active) and
*evaluate* directly over plainly materialized rows with the obvious
nested-loop / dict-of-lists algorithms.  Any divergence between the two
answers is a bug in the production path.

The evaluator mirrors the production engine's documented coercion
rules — ``""`` and ``None`` are NULL, comparisons are numeric when both
sides coerce to numbers and lexicographic otherwise, NULL comparisons
are false, aggregates drop NULLs — but shares none of its code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ----------------------------------------------------------------------
# Query specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Filter:
    """One WHERE conjunct: ``column op literal``."""

    table: str
    column: str
    op: str  # =, !=, <, <=, >, >=
    value: object  # int or str literal


@dataclass(frozen=True)
class Agg:
    """One aggregate select item; ``column=None`` means ``COUNT(*)``."""

    func: str  # COUNT, SUM, AVG, MIN, MAX
    column: str | None = None


@dataclass(frozen=True)
class JoinSpec:
    """Equi-join of the base table with one other table."""

    table: str
    left_column: str
    right_column: str
    kind: str = "inner"  # inner | left


@dataclass(frozen=True)
class QuerySpec:
    """A constrained SELECT: filters, optional join/grouping/limit."""

    table: str
    select: tuple[tuple[str, str], ...] = ()  # (table, column) projections
    aggs: tuple[Agg, ...] = ()
    filters: tuple[Filter, ...] = ()
    join: JoinSpec | None = None
    group_by: tuple[str, ...] = ()  # base-table columns
    limit: int | None = None


# ----------------------------------------------------------------------
# Rendering to SQL
# ----------------------------------------------------------------------


def _ref(spec: QuerySpec, table: str, column: str) -> str:
    """Qualified only when a join makes bare names ambiguous."""
    return f"{table}.{column}" if spec.join is not None else column


def _literal(value: object) -> str:
    if isinstance(value, int):
        return str(value)
    return "'" + str(value).replace("'", "''") + "'"


def render_sql(spec: QuerySpec) -> str:
    """Spec -> SELECT text; every output column gets an explicit alias."""
    items: list[str] = []
    for i, (table, column) in enumerate(spec.select):
        items.append(f"{_ref(spec, table, column)} AS c{i}")
    for i, agg in enumerate(spec.aggs):
        arg = "*" if agg.column is None else _ref(spec, spec.table, agg.column)
        items.append(f"{agg.func}({arg}) AS a{i}")

    sql = f"SELECT {', '.join(items)} FROM {spec.table}"
    if spec.join is not None:
        keyword = "LEFT JOIN" if spec.join.kind == "left" else "JOIN"
        sql += (
            f" {keyword} {spec.join.table} ON "
            f"{spec.table}.{spec.join.left_column} = "
            f"{spec.join.table}.{spec.join.right_column}"
        )
    if spec.filters:
        conjuncts = [
            f"{_ref(spec, f.table, f.column)} {f.op} {_literal(f.value)}"
            for f in spec.filters
        ]
        sql += " WHERE " + " AND ".join(conjuncts)
    if spec.group_by:
        sql += " GROUP BY " + ", ".join(
            _ref(spec, spec.table, c) for c in spec.group_by
        )
    if spec.limit is not None:
        sql += f" LIMIT {spec.limit}"
    return sql


# ----------------------------------------------------------------------
# Naive evaluation
# ----------------------------------------------------------------------


def _is_null(value) -> bool:
    return value is None or value == ""


def _number(value):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                return None
    return None


def _compare(left, right) -> int:
    ln, rn = _number(left), _number(right)
    if ln is not None and rn is not None:
        return (ln > rn) - (ln < rn)
    ls, rs = str(left), str(right)
    return (ls > rs) - (ls < rs)


def _matches(value, op: str, literal) -> bool:
    if _is_null(value) or _is_null(literal):
        return False
    cmp = _compare(value, literal)
    return {
        "=": cmp == 0,
        "!=": cmp != 0,
        "<": cmp < 0,
        "<=": cmp <= 0,
        ">": cmp > 0,
        ">=": cmp >= 0,
    }[op]


def _join_key(value):
    number = _number(value)
    return number if number is not None else value


def _aggregate(agg: Agg, rows: list[list], idx: int | None):
    if agg.func == "COUNT" and agg.column is None:
        return len(rows)
    values = [row[idx] for row in rows if not _is_null(row[idx])]
    if agg.func == "COUNT":
        return len(values)
    if not values:
        return None
    if agg.func in ("SUM", "AVG"):
        numbers = [n for n in (_number(v) for v in values) if n is not None]
        if not numbers:
            return None
        total = sum(numbers)
        return total if agg.func == "SUM" else total / len(numbers)
    best = values[0]
    for value in values[1:]:
        cmp = _compare(value, best)
        if (agg.func == "MIN" and cmp < 0) or (agg.func == "MAX" and cmp > 0):
            best = value
    return best


@dataclass
class _Relation:
    """Rows plus a (table, column) -> index resolver."""

    fields: list[tuple[str, str]]
    rows: list[list]
    index: dict[tuple[str, str], int] = field(init=False)

    def __post_init__(self) -> None:
        self.index = {f: i for i, f in enumerate(self.fields)}

    def at(self, table: str, column: str) -> int:
        return self.index[(table, column)]


def evaluate(
    spec: QuerySpec, tables: dict[str, tuple[list[str], list[list[str]]]]
) -> tuple[list[str], list[list]]:
    """Evaluate ``spec`` over materialized ``tables`` (name -> cols, rows).

    Returns ``(columns, rows)`` in the same order the production engine
    produces: scan order for plain queries (rows are fed in scan order),
    group-signature order for grouped ones.
    """
    base_columns, base_rows = tables[spec.table]
    rel = _Relation(
        fields=[(spec.table, c) for c in base_columns],
        rows=[list(r) for r in base_rows],
    )

    if spec.join is not None:
        right_columns, right_rows = tables[spec.join.table]
        right_fields = [(spec.join.table, c) for c in right_columns]
        right_at = {f: i for i, f in enumerate(right_fields)}
        left_idx = rel.at(spec.table, spec.join.left_column)
        right_idx = right_at[(spec.join.table, spec.join.right_column)]
        bucket: dict[object, list[list]] = {}
        for row in right_rows:
            bucket.setdefault(_join_key(row[right_idx]), []).append(list(row))
        joined: list[list] = []
        for lrow in rel.rows:
            matched = False
            for rrow in bucket.get(_join_key(lrow[left_idx]), []):
                if _matches(lrow[left_idx], "=", rrow[right_idx]):
                    joined.append(lrow + rrow)
                    matched = True
            if not matched and spec.join.kind == "left":
                joined.append(lrow + [None] * len(right_fields))
        rel = _Relation(fields=rel.fields + right_fields, rows=joined)

    for flt in spec.filters:
        idx = rel.at(flt.table, flt.column)
        rel.rows = [r for r in rel.rows if _matches(r[idx], flt.op, flt.value)]

    columns = [f"c{i}" for i in range(len(spec.select))] + [
        f"a{i}" for i in range(len(spec.aggs))
    ]

    if spec.group_by or spec.aggs:
        key_idx = [rel.at(spec.table, c) for c in spec.group_by]
        groups: dict[tuple, list[list]] = {}
        if spec.group_by:
            for row in rel.rows:
                groups.setdefault(
                    tuple(row[i] for i in key_idx), []
                ).append(row)
        else:
            groups[()] = rel.rows
        out: list[list] = []
        for sig in sorted(groups):
            group_rows = groups[sig]
            row: list = []
            for table, column in spec.select:
                row.append(group_rows[0][rel.at(table, column)])
            for agg in spec.aggs:
                idx = (
                    None
                    if agg.column is None
                    else rel.at(spec.table, agg.column)
                )
                row.append(_aggregate(agg, group_rows, idx))
            out.append(row)
    else:
        pick = [rel.at(table, column) for table, column in spec.select]
        out = [[row[i] for i in pick] for row in rel.rows]

    if spec.limit is not None:
        out = out[: spec.limit]
    return columns, out
