"""Tests for the Table/Snapshot data model and serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.snapshot import (
    EPOCHS_PER_DAY,
    TRACE_ORIGIN,
    Snapshot,
    Table,
    epoch_to_timestamp,
    timestamp_to_epoch,
)

cell_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=12
)


class TestEpochs:
    def test_origin(self):
        assert epoch_to_timestamp(0) == TRACE_ORIGIN

    def test_forty_eight_epochs_per_day(self):
        assert EPOCHS_PER_DAY == 48
        assert epoch_to_timestamp(48).date() != epoch_to_timestamp(47).date()

    def test_round_trip(self):
        for epoch in (0, 1, 47, 48, 1000):
            assert timestamp_to_epoch(epoch_to_timestamp(epoch)) == epoch

    def test_mid_epoch_timestamp_maps_back(self):
        from datetime import timedelta

        when = epoch_to_timestamp(5) + timedelta(minutes=29)
        assert timestamp_to_epoch(when) == 5


class TestTable:
    def test_append_validates_arity(self):
        table = Table(name="T", columns=["a", "b"])
        table.append(["1", "2"])
        with pytest.raises(ValueError, match="arity"):
            table.append(["1"])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table(name="T", columns=["a", "a"])

    def test_column_access(self):
        table = Table(name="T", columns=["x", "y"], rows=[["1", "2"], ["3", "4"]])
        assert table.column_values("y") == ["2", "4"]
        with pytest.raises(KeyError, match="no column"):
            table.column_index("z")

    def test_serialize_round_trip(self):
        table = Table(
            name="T",
            columns=["plain", "weird"],
            rows=[["v", "has|pipe"], ["", "has\nnewline"], ["x", "back\\slash"]],
        )
        restored = Table.deserialize("T", table.serialize())
        assert restored.columns == table.columns
        assert restored.rows == table.rows

    def test_deserialize_arity_mismatch_rejected(self):
        payload = b"a|b\nonly_one\n"
        with pytest.raises(ValueError, match="arity"):
            Table.deserialize("T", payload)

    def test_empty_table_round_trip(self):
        table = Table(name="T", columns=["a"])
        restored = Table.deserialize("T", table.serialize())
        assert restored.rows == []

    def test_len_and_iter(self):
        table = Table(name="T", columns=["a"], rows=[["1"], ["2"]])
        assert len(table) == 2
        assert list(table) == [["1"], ["2"]]

    @given(st.lists(st.lists(cell_text, min_size=3, max_size=3), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip_arbitrary_cells(self, rows):
        table = Table(name="T", columns=["c1", "c2", "c3"], rows=rows)
        restored = Table.deserialize("T", table.serialize())
        assert restored.rows == rows


class TestSnapshot:
    def make(self) -> Snapshot:
        snapshot = Snapshot(epoch=7)
        snapshot.add_table(Table(name="CDR", columns=["a"], rows=[["1"], ["2"]]))
        snapshot.add_table(Table(name="NMS", columns=["b", "c"], rows=[["x", "y"]]))
        return snapshot

    def test_round_trip(self):
        snapshot = self.make()
        restored = Snapshot.deserialize(snapshot.serialize())
        assert restored.epoch == 7
        assert set(restored.tables) == {"CDR", "NMS"}
        assert restored.tables["CDR"].rows == [["1"], ["2"]]

    def test_record_count(self):
        assert self.make().record_count() == 3

    def test_duplicate_table_rejected(self):
        snapshot = self.make()
        with pytest.raises(ValueError, match="already has"):
            snapshot.add_table(Table(name="CDR", columns=["z"]))

    def test_timestamp_property(self):
        assert self.make().timestamp == epoch_to_timestamp(7)

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            Snapshot.deserialize(b"#nope 3\n")

    def test_deterministic_serialization(self):
        assert self.make().serialize() == self.make().serialize()
