"""Tests for the decompressed-leaf LRU cache and its invalidation."""

from __future__ import annotations

import pytest

from repro.core import LeafCache, Spate, SpateConfig, Table
from repro.core.config import DecayPolicyConfig
from repro.telco import TelcoTraceGenerator, TraceConfig


def _table(name: str = "T", rows: int = 1) -> Table:
    return Table(name=name, columns=["a"], rows=[["x"]] * rows)


class TestLeafCacheUnit:
    def test_get_miss_then_hit(self):
        cache = LeafCache(1000)
        assert cache.get(0, "CDR") is None
        cache.put(0, "CDR", _table("CDR"), 100)
        assert cache.get(0, "CDR") is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_byte_accounting(self):
        cache = LeafCache(1000)
        cache.put(0, "A", _table("A"), 300)
        cache.put(0, "B", _table("B"), 200)
        assert cache.current_bytes == 500
        cache.invalidate_epoch(0)
        assert cache.current_bytes == 0 and len(cache) == 0

    def test_reinsert_replaces_charge(self):
        cache = LeafCache(1000)
        cache.put(0, "A", _table("A"), 300)
        cache.put(0, "A", _table("A"), 500)
        assert cache.current_bytes == 500 and len(cache) == 1

    def test_lru_eviction_order(self):
        cache = LeafCache(600)
        cache.put(0, "A", _table("A"), 300)
        cache.put(1, "B", _table("B"), 300)
        cache.get(0, "A")  # refresh A: B becomes the LRU entry
        evicted = cache.put(2, "C", _table("C"), 300)
        assert evicted == 1
        assert cache.has(0, "A") and cache.has(2, "C")
        assert not cache.has(1, "B")
        assert cache.evictions == 1

    def test_oversized_refresh_drops_stale_entry(self):
        # A fungus-rewritten leaf that grew past the cap must not keep
        # serving its pre-rewrite rows from the cache.
        cache = LeafCache(400)
        cache.put(0, "A", _table("A", rows=1), 300)
        cache.put(0, "A", _table("A", rows=2), 500)  # oversized refresh
        assert cache.get(0, "A") is None
        assert cache.current_bytes == 0 and len(cache) == 0

    def test_oversized_payload_not_cached(self):
        cache = LeafCache(100)
        assert cache.put(0, "A", _table("A"), 1000) == 0
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_zero_capacity_disables_storage(self):
        cache = LeafCache(0)
        cache.put(0, "A", _table("A"), 1)
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LeafCache(-1)

    def test_stats_snapshot(self):
        cache = LeafCache(600)
        cache.put(0, "A", _table("A"), 300)
        cache.get(0, "A")
        cache.get(9, "Z")
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.entries == 1 and stats.current_bytes == 300
        assert stats.hit_rate == pytest.approx(0.5)


def _build_spate(**config_kwargs) -> tuple[Spate, TelcoTraceGenerator]:
    generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=11))
    spate = Spate(SpateConfig(codec="gzip-ref", executor="serial", **config_kwargs))
    spate.register_cells(generator.cells_table())
    return spate, generator


class TestLeafCacheIntegration:
    def test_second_read_is_a_hit(self):
        spate, generator = _build_spate(
            decay=DecayPolicyConfig(enabled=False)
        )
        spate.ingest(generator.snapshot(0))
        spate.read_table(0, "CDR")
        spate.read_table(0, "CDR")
        assert spate.metrics.leaf_cache_hits == 1
        assert spate.metrics.leaf_cache_misses == 1
        assert spate.metrics.leaf_cache_bytes > 0

    def test_cached_read_returns_same_rows(self):
        spate, generator = _build_spate(decay=DecayPolicyConfig(enabled=False))
        spate.ingest(generator.snapshot(0))
        first = spate.read_table(0, "CDR")
        second = spate.read_table(0, "CDR")
        assert first is second  # served from cache
        assert first.rows == second.rows

    def test_cache_disabled_by_config(self):
        spate, generator = _build_spate(
            leaf_cache_bytes=0, decay=DecayPolicyConfig(enabled=False)
        )
        spate.ingest(generator.snapshot(0))
        assert spate.leaf_cache is None
        spate.read_table(0, "CDR")
        spate.read_table(0, "CDR")
        assert spate.metrics.leaf_cache_hits == 0

    def test_run_decay_invalidates_cached_epochs(self):
        spate, generator = _build_spate(
            decay=DecayPolicyConfig(enabled=True, keep_epochs=2)
        )
        spate.ingest(generator.snapshot(0))
        spate.read_table(0, "CDR")
        assert spate.leaf_cache.has(0, "CDR")
        for epoch in range(1, 4):
            spate.ingest(generator.snapshot(epoch))
        # keep_epochs=2 with frontier 3 evicts epochs 0 and 1.
        assert not spate.leaf_cache.has(0, "CDR")
        assert spate.metrics.leaf_cache_invalidations >= 1

    def test_decay_groups_invalidate_rewritten_leaves(self):
        spate, generator = _build_spate(decay=DecayPolicyConfig(enabled=False))
        for epoch in range(3):
            spate.ingest(generator.snapshot(epoch))
        spate.finalize()
        before = spate.read_table(0, "CDR")
        report = spate.decay_groups(older_than_epoch=2, keep_fraction=0.1)
        assert report.leaves_rewritten >= 1
        assert 0 in report.rewritten_epochs
        after = spate.read_table(0, "CDR")
        # The rewrite dropped records; a stale cache would return `before`.
        assert after is not before
        assert len(after.rows) < len(before.rows)

    def test_explore_uses_cache_across_queries(self):
        spate, generator = _build_spate(decay=DecayPolicyConfig(enabled=False))
        for epoch in range(4):
            spate.ingest(generator.snapshot(epoch))
        spate.finalize()
        spate.explore("CDR", ("downflux",), None, 0, 3)
        misses_after_first = spate.metrics.leaf_cache_misses
        spate.explore("CDR", ("downflux",), None, 0, 3)
        assert spate.metrics.leaf_cache_misses == misses_after_first
        assert spate.metrics.leaf_cache_hits >= 4
        assert "leaf cache" in spate.metrics.summary()
