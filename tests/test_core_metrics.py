"""Tests for the warehouse metrics registry."""

import pytest

from repro.core import Spate, SpateConfig
from repro.core.config import DecayPolicyConfig
from repro.core.metrics import WarehouseMetrics


class TestRegistry:
    def test_initial_state(self):
        metrics = WarehouseMetrics()
        assert metrics.snapshots_ingested == 0
        assert metrics.mean_compression_ratio == 0.0
        assert metrics.mean_ingest_seconds == 0.0
        assert metrics.epoch_budget_headroom() == float("inf")

    def test_ingest_accounting(self):
        metrics = WarehouseMetrics()
        metrics.on_ingest(records=10, raw_bytes=1000, stored_bytes=100, seconds=0.5)
        metrics.on_ingest(records=20, raw_bytes=2000, stored_bytes=400, seconds=1.5)
        assert metrics.snapshots_ingested == 2
        assert metrics.records_ingested == 30
        assert metrics.mean_compression_ratio == pytest.approx((10 + 5) / 2)
        assert metrics.mean_ingest_seconds == pytest.approx(1.0)
        assert metrics.worst_ingest_seconds == 1.5
        assert metrics.epoch_budget_headroom() == pytest.approx(1800 / 1.5)

    def test_explore_accounting(self):
        metrics = WarehouseMetrics()
        metrics.on_explore(snapshots_read=5, used_decayed=False)
        metrics.on_explore(snapshots_read=0, used_decayed=True)
        assert metrics.exploration_queries == 2
        assert metrics.snapshots_decompressed == 5
        assert metrics.decayed_answers == 1

    def test_decay_accounting(self):
        metrics = WarehouseMetrics()
        metrics.on_decay(leaves_evicted=10, bytes_reclaimed=5000)
        assert metrics.decay_passes == 1
        assert metrics.bytes_reclaimed == 5000

    def test_summary_renders(self):
        metrics = WarehouseMetrics()
        metrics.on_ingest(records=1, raw_bytes=10, stored_bytes=5, seconds=0.01)
        text = metrics.summary()
        assert "snapshots ingested:    1" in text
        assert "2.00x" in text


class TestFacadeIntegration:
    def test_ingest_and_explore_update_metrics(self, tiny_generator):
        from repro.telco import TelcoTraceGenerator, TraceConfig

        generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=99))
        spate = Spate(SpateConfig(codec="gzip-ref"))
        spate.register_cells(tiny_generator.cells_table())
        for epoch in range(5):
            spate.ingest(generator.snapshot(epoch))
        spate.finalize()
        spate.explore("CDR", ("downflux",), None, 0, 4)

        metrics = spate.metrics
        assert metrics.snapshots_ingested == 5
        assert metrics.records_ingested > 0
        assert metrics.mean_compression_ratio > 1.0
        assert metrics.exploration_queries == 1
        assert metrics.snapshots_decompressed == 5
        assert metrics.decayed_answers == 0

    def test_decay_updates_metrics(self, tiny_generator):
        from repro.telco import TelcoTraceGenerator, TraceConfig

        generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=99))
        config = SpateConfig(
            codec="gzip-ref", decay=DecayPolicyConfig(keep_epochs=2)
        )
        spate = Spate(config)
        spate.register_cells(tiny_generator.cells_table())
        for epoch in range(6):
            spate.ingest(generator.snapshot(epoch))
        assert spate.metrics.leaves_evicted == 4
        assert spate.metrics.bytes_reclaimed > 0
