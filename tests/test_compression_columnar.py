"""Tests for the columnar pre-encodings (RLE / delta / dictionary)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.columnar import (
    choose_encoding,
    decode_column,
    delta_decode,
    delta_encode,
    dictionary_decode,
    dictionary_encode,
    encode_column,
    plain_decode,
    plain_encode,
    rle_decode,
    rle_encode,
)
from repro.errors import CorruptStreamError


class TestRle:
    def test_round_trip(self):
        cells = ["a"] * 10 + ["b"] * 3 + ["a"] * 2
        assert rle_decode(rle_encode(cells)) == cells

    def test_empty(self):
        assert rle_decode(rle_encode([])) == []

    def test_compresses_constant_column(self):
        cells = ["OK"] * 10_000
        assert len(rle_encode(cells)) < 32

    @given(st.lists(st.sampled_from(["x", "y", "zz", ""]), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, cells):
        assert rle_decode(rle_encode(cells)) == cells


class TestDelta:
    def test_round_trip(self):
        cells = ["100", "105", "103", "200", "-5"]
        assert delta_decode(delta_encode(cells)) == cells

    def test_monotonic_timestamps_compress_well(self):
        cells = [str(1600000000 + i * 30) for i in range(1000)]
        assert len(delta_encode(cells)) < 6 * len(cells)

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError):
            delta_encode(["1", "x"])

    @given(st.lists(st.integers(-(2**40), 2**40), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, numbers):
        cells = [str(n) for n in numbers]
        assert delta_decode(delta_encode(cells)) == cells


class TestDictionary:
    def test_round_trip(self):
        cells = ["voice", "data", "voice", "sms", "data", "voice"]
        assert dictionary_decode(dictionary_encode(cells)) == cells

    def test_low_cardinality_compresses(self):
        cells = (["GSM"] * 5 + ["LTE"] * 3) * 500
        assert len(dictionary_encode(cells)) < 6 * len(cells)

    @given(st.lists(st.text(max_size=8), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, cells):
        assert dictionary_decode(dictionary_encode(cells)) == cells


class TestPlain:
    @given(st.lists(st.text(max_size=20), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, cells):
        assert plain_decode(plain_encode(cells)) == cells


class TestAutoSelection:
    def test_constant_column_picks_rle(self):
        assert choose_encoding(["x"] * 100) == "rle"

    def test_integers_pick_delta(self):
        assert choose_encoding([str(i) for i in range(100)]) == "delta"

    def test_low_cardinality_text_picks_dict(self):
        cells = ["voice", "data", "sms"] * 100
        assert choose_encoding(cells) in ("dict", "rle")

    def test_high_entropy_text_stays_plain(self):
        cells = [f"user-{i}-{i**2}" for i in range(200)]
        assert choose_encoding(cells) == "plain"

    def test_empty_column(self):
        assert choose_encoding([]) == "plain"

    def test_self_describing_round_trip(self):
        for cells in (
            ["a"] * 50,
            [str(i * 3) for i in range(50)],
            ["p", "q"] * 40,
            [f"blob{i}{i}" for i in range(50)],
            [],
        ):
            assert decode_column(encode_column(cells)) == cells

    def test_explicit_encoding_honored(self):
        cells = ["1", "2", "3"]
        blob = encode_column(cells, encoding="plain")
        assert decode_column(blob) == cells

    def test_unknown_encoding_id_rejected(self):
        with pytest.raises(CorruptStreamError):
            decode_column(bytes([250]) + b"junk")

    def test_empty_payload_rejected(self):
        with pytest.raises(CorruptStreamError):
            decode_column(b"")

    @given(st.lists(st.one_of(
        st.text(max_size=10),
        st.integers(-1000, 1000).map(str),
    ), max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_property_auto_round_trip(self, cells):
        assert decode_column(encode_column(cells)) == cells
