"""Workload replay: diurnal schedule shape and the benchmark artifact.

- the schedule apportions queries by the diurnal load curve (largest
  remainder: exact total, per-epoch share tracks the multiplier) and is
  fully deterministic per seed;
- a short replay against a live server issues every scheduled query,
  ingests every epoch, and writes a ``BENCH_serving.json`` whose schema
  the CI serving-smoke job consumes;
- the CLI gates (``--require-zero-failures``, ``--max-p99-ms``) flip
  the exit code.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.server import WorkloadConfig, run_simulation, simulate
from repro.server.simulate import build_schedule, parse_duration
from repro.telco.workload import load_multiplier


class TestSchedule:
    def test_total_matches_requested_volume(self):
        config = WorkloadConfig(epochs=48, queries_per_epoch=3.0)
        schedule = build_schedule(config)
        assert len(schedule) == 48
        assert sum(len(batch) for batch in schedule) == 144

    def test_deterministic_per_seed(self):
        config = WorkloadConfig(epochs=24, queries_per_epoch=2.0, seed=5)
        first = build_schedule(config)
        second = build_schedule(config)
        assert [[r.to_dict() for r in batch] for batch in first] == [
            [r.to_dict() for r in batch] for batch in second
        ]
        shifted = build_schedule(
            WorkloadConfig(epochs=24, queries_per_epoch=2.0, seed=6)
        )
        assert [[r.to_dict() for r in b] for b in first] != [
            [r.to_dict() for r in b] for b in shifted
        ]

    def test_counts_follow_diurnal_curve(self):
        config = WorkloadConfig(epochs=48, queries_per_epoch=10.0)
        schedule = build_schedule(config)
        counts = [len(batch) for batch in schedule]
        # The busiest epoch by the load curve must be scheduled at least
        # as heavily as the quietest one — the curve has >3x dynamic
        # range, so apportionment cannot flatten it.
        multipliers = [load_multiplier(e) for e in range(48)]
        peak = multipliers.index(max(multipliers))
        trough = multipliers.index(min(multipliers))
        assert counts[peak] > counts[trough]

    def test_queries_target_ingested_windows(self):
        config = WorkloadConfig(epochs=12, queries_per_epoch=4.0)
        schedule = build_schedule(config)
        for epoch, batch in enumerate(schedule):
            for request in batch:
                assert request.last_epoch <= epoch
                assert request.first_epoch >= 0
                assert request.first_epoch <= request.last_epoch
                assert request.op in ("explore", "sql")
                assert request.tenant in config.tenants


class TestReplay:
    @pytest.fixture(scope="class")
    def report(self):
        return run_simulation(
            WorkloadConfig(
                scale=0.001, epochs=8, queries_per_epoch=2.0, seed=2017
            )
        )

    def test_everything_issued_and_answered(self, report):
        assert report.epochs_ingested == 8
        assert report.queries_issued == report.queries_planned
        assert report.ok == report.queries_issued
        assert report.failed == 0
        assert len(report.latencies_ms) == report.queries_issued

    def test_per_tenant_counts_cover_all_tenants_seen(self, report):
        assert sum(report.per_tenant.values()) == report.ok

    def test_percentiles_ordered(self, report):
        pct = report.latency_percentiles()
        assert 0.0 <= pct["p50"] <= pct["p95"] <= pct["p99"] <= pct["max"]

    def test_duration_cap_stops_early(self):
        report = run_simulation(
            WorkloadConfig(
                scale=0.001, epochs=48, queries_per_epoch=1.0, duration_s=0.0
            )
        )
        assert report.epochs_ingested == 0
        assert report.queries_issued == 0


class TestBenchArtifact:
    def test_bench_file_schema(self, tmp_path):
        bench = tmp_path / "BENCH_serving.json"
        report = simulate(
            WorkloadConfig(scale=0.001, epochs=6, queries_per_epoch=2.0),
            bench_file=str(bench),
        )
        payload = json.loads(bench.read_text())
        assert payload["bench"] == "serving"
        assert payload["totals"]["queries_issued"] == report.queries_issued
        assert payload["totals"]["failed"] == 0
        for key in ("p50", "p95", "p99", "mean", "max"):
            assert isinstance(payload["latency_ms"][key], float)
        assert payload["ingest"]["epochs"] == 6
        assert payload["wall_seconds"] >= 0.0
        assert isinstance(payload["per_tenant"], dict)

    def test_describe_is_human_readable(self):
        report = run_simulation(
            WorkloadConfig(scale=0.001, epochs=4, queries_per_epoch=1.0)
        )
        text = report.describe()
        assert "serving workload replay" in text
        assert "p99=" in text


class TestCliGates:
    def test_loadtest_passes_gates(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        code = cli_main([
            "loadtest",
            "--scale", "0.001",
            "--epochs", "6",
            "--queries-per-epoch", "2",
            "--duration", "60s",
            "--bench-file", str(bench),
            "--require-zero-failures",
            "--max-p99-ms", "60000",
        ])
        assert code == 0
        assert bench.exists()
        assert "serving workload replay" in capsys.readouterr().out

    def test_impossible_p99_gate_fails(self, capsys):
        code = cli_main([
            "loadtest",
            "--scale", "0.001",
            "--epochs", "4",
            "--queries-per-epoch", "1",
            "--max-p99-ms", "0.0",
        ])
        assert code == 1
        assert "GATE FAILED" in capsys.readouterr().err


def test_parse_duration():
    assert parse_duration("30s") == 30.0
    assert parse_duration("2m") == 120.0
    assert parse_duration("500ms") == 0.5
    assert parse_duration("45") == 45.0
    with pytest.raises(ValueError):
        parse_duration("soon")
