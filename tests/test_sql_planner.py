"""Tests for predicate pushdown and EXPLAIN."""

import pytest

from repro.query.sql import Database


@pytest.fixture()
def db():
    database = Database()
    database.register_table(
        "CDR",
        ["ts", "user", "cell", "bytes"],
        [[str(i), f"u{i % 3}", f"c{i % 2}", str(i * 10)] for i in range(30)],
    )
    database.register_table(
        "CELLS",
        ["cell", "region"],
        [["c0", "north"], ["c1", "south"]],
    )
    return database


JOIN_SQL = (
    "SELECT CDR.user, CELLS.region FROM CDR JOIN CELLS "
    "ON CDR.cell = CELLS.cell WHERE bytes > 100 AND region = 'north'"
)


class TestPushdownCorrectness:
    def test_join_with_pushdown_matches_manual(self, db):
        joined = db.execute(JOIN_SQL)
        # Same answer computed without the join path.
        manual = db.execute(
            "SELECT user FROM CDR WHERE bytes > 100 AND cell = 'c0'"
        )
        assert sorted(r[0] for r in joined.rows) == sorted(
            r[0] for r in manual.rows
        )
        assert all(r[1] == "north" for r in joined.rows)

    def test_cross_join_with_filters(self, db):
        result = db.execute(
            "SELECT CDR.user FROM CDR, CELLS "
            "WHERE CDR.cell = CELLS.cell AND CELLS.region = 'south' "
            "AND CDR.bytes < 50"
        )
        manual = db.execute(
            "SELECT user FROM CDR WHERE cell = 'c1' AND bytes < 50"
        )
        assert sorted(result.rows) == sorted(manual.rows)

    def test_left_join_does_not_push_into_right(self, db):
        # The filter mentions the right side; with a LEFT JOIN it must
        # apply after NULL-extension, eliminating unmatched rows only
        # via the final filter — classic pushdown trap.
        database = Database()
        database.register_table("L", ["k"], [["a"], ["b"]])
        database.register_table("R", ["k", "v"], [["a", "10"]])
        result = database.execute(
            "SELECT L.k FROM L LEFT JOIN R ON L.k = R.k WHERE v > 5"
        )
        assert result.rows == [["a"]]

    def test_or_predicates_not_split(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM CDR JOIN CELLS ON CDR.cell = CELLS.cell "
            "WHERE bytes > 250 OR region = 'south'"
        )
        manual = db.execute(
            "SELECT COUNT(*) FROM CDR WHERE bytes > 250 OR cell = 'c1'"
        )
        assert result.rows == manual.rows

    def test_ambiguous_conjunct_stays_above_join(self, db):
        # "cell" exists on both sides: not pushable, must still work at
        # the top (where it is genuinely ambiguous -> error).
        from repro.errors import SqlPlanError

        with pytest.raises(SqlPlanError, match="ambiguous"):
            db.execute(
                "SELECT CDR.user FROM CDR JOIN CELLS "
                "ON CDR.cell = CELLS.cell WHERE cell = 'c0'"
            )


class TestExplain:
    def test_scan_with_pushed_predicates(self, db):
        plan = db.explain(JOIN_SQL)
        assert "HashJoin" in plan
        assert "Scan CDR pushed: [(bytes > 100)]" in plan
        assert "Scan CELLS pushed: [(region = 'north')]" in plan

    def test_nested_loop_join_detected(self, db):
        plan = db.explain(
            "SELECT * FROM CDR JOIN CELLS ON CDR.bytes > CELLS.cell"
        )
        assert "NestedLoopJoin" in plan

    def test_cross_join_label(self, db):
        assert "CrossJoin" in db.explain("SELECT * FROM CDR, CELLS")

    def test_aggregate_stage(self, db):
        plan = db.explain(
            "SELECT cell, COUNT(*) AS n FROM CDR GROUP BY cell "
            "HAVING n > 2 ORDER BY n DESC LIMIT 3"
        )
        assert "HashAggregate [keys: cell]" in plan
        assert "Having" in plan
        assert "Sort [n DESC]" in plan
        assert "Limit [3]" in plan

    def test_plain_projection(self, db):
        plan = db.explain("SELECT user FROM CDR")
        assert plan.splitlines()[0] == "Project [user]"
        assert "Scan CDR" in plan

    def test_distinct_stage(self, db):
        assert "Distinct" in db.explain("SELECT DISTINCT user FROM CDR")

    def test_subquery_scan(self, db):
        plan = db.explain(
            "SELECT * FROM (SELECT user FROM CDR) sub WHERE user = 'u1'"
        )
        assert "Subquery AS sub" in plan

    def test_explain_does_not_execute_base_query(self, db):
        calls = []
        db.register_lazy_table("LAZY", ["x"], lambda: calls.append(1) or [["1"]])
        db.explain("SELECT x FROM LAZY WHERE x = '1'")
        assert calls == []  # plan only; no scan
