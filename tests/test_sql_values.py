"""Pins the SQL value-semantics truth table in ``repro.query.sql.values``.

Every comparison, coercion, hashing, and ordering rule the row engine,
the vectorized kernels, and zone-map pruning share lives in one module;
these tests pin the documented truth table so a change there is a
deliberate decision, not an accident that silently diverges a prune
from a filter.
"""

from __future__ import annotations

import pytest

from repro.query.sql.executor import Database
from repro.query.sql.values import (
    as_number,
    compare_values,
    hashable_key,
    is_null,
    is_truthy,
    null_safe_key,
    ordering_key,
    predicate_passes,
    sort_key,
)


class TestNullness:
    @pytest.mark.parametrize("value", [None, ""])
    def test_null_values(self, value):
        assert is_null(value)

    @pytest.mark.parametrize("value", [0, "0", 0.0, False, " ", "None", "x"])
    def test_non_null_values(self, value):
        assert not is_null(value)


class TestNumericView:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            (True, 1),
            (False, 0),
            (7, 7),
            (7.5, 7.5),
            ("7", 7),
            ("007", 7),
            ("-3", -3),
            ("7.5", 7.5),
            ("1e3", 1000.0),
        ],
    )
    def test_parses(self, value, expected):
        assert as_number(value) == expected

    @pytest.mark.parametrize("value", ["", "7a", "x", None, " "])
    def test_no_numeric_view(self, value):
        assert as_number(value) is None

    def test_string_int_stays_int(self):
        # "007" parses as the int 7, not the float 7.0 — GROUP BY
        # signatures and arithmetic depend on the type surviving.
        assert isinstance(as_number("007"), int)


class TestCompare:
    def test_numeric_when_both_sides_numeric(self):
        assert compare_values(7, "007") == 0
        assert compare_values(2, "10") < 0
        assert compare_values(1, 1.0) == 0
        assert compare_values("2.5", 2) > 0

    def test_lexicographic_when_either_side_is_not(self):
        # Classic trap: "2" > "10" under string order, and one
        # non-numeric operand forces string order for both.
        assert compare_values("2", "10x") > 0
        assert compare_values("abc", "abd") < 0

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_null_fails_every_comparison(self, op):
        assert predicate_passes(None, op, 1) is False
        assert predicate_passes("", op, "x") is False
        assert predicate_passes(1, op, None) is False

    def test_predicate_ops(self):
        assert predicate_passes(7, "=", "007")
        assert predicate_passes(7, "!=", 8)
        assert predicate_passes(2, "<", "10")
        # Both sides numeric, so "2" > "10" is the numeric comparison
        # (false), not the lexicographic one (true).
        assert not predicate_passes("2", ">", "10")

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            predicate_passes(1, "~", 1)


class TestTruthiness:
    @pytest.mark.parametrize("value", [None, "", 0, "0", 0.0, False])
    def test_falsy(self, value):
        assert not is_truthy(value)

    @pytest.mark.parametrize("value", [1, "1", -1, "x", True, "0.5"])
    def test_truthy(self, value):
        assert is_truthy(value)


class TestHashKeys:
    def test_null_safe_key_unifies_numeric_equals(self):
        # Hash joins / IN pools / UNION dedup: numeric-equal values must
        # land in the same bucket.
        assert null_safe_key("007") == null_safe_key(7) == null_safe_key(7.0)
        assert null_safe_key("x") == "x"
        assert null_safe_key(None) is None

    def test_hashable_key_keeps_raw_values_distinct(self):
        # GROUP BY signatures keep 7 and "07" in different groups.
        assert hashable_key(7) == 7
        assert hashable_key("07") == "07"
        assert hashable_key(7) != hashable_key("07")
        assert hashable_key(["a"]) == str(["a"])  # unhashable -> str


class TestOrdering:
    def test_ascending_order_classes(self):
        # numbers < strings < NULLs, numbers by value, strings lexically.
        values = [None, "b", 3, "", "a", "10", 2]
        ranked = sorted(values, key=ordering_key)
        assert ranked == [2, 3, "10", "a", "b", "", None]

    def test_empty_string_before_none_within_nulls(self):
        # Long-standing engine quirk, kept for byte-identity.
        assert ordering_key("") < ordering_key(None)

    def test_sort_key_direction(self):
        values = [3, "a", None, 1]
        asc = sorted(values, key=lambda v: sort_key(v, True))
        desc = sorted(values, key=lambda v: sort_key(v, False))
        assert asc == [1, 3, "a", None]
        assert desc == list(reversed(asc))


class TestExecutorBetweenNulls:
    """The PR-9 audit fix: BETWEEN with NULL on any side is false, like
    every other comparison (it previously compared ``str(None)``)."""

    @pytest.fixture()
    def db(self):
        db = Database()
        db.register_table(
            "T",
            ["v", "lo", "hi"],
            [
                ["5", "1", "9"],   # plainly inside
                ["", "1", "9"],    # NULL value
                ["5", "", "9"],    # NULL low bound
                ["5", "1", ""],    # NULL high bound
                ["0", "1", "9"],   # outside
            ],
        )
        return db

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_between_null_is_false(self, db, vectorized):
        got = db.execute(
            "SELECT v FROM T WHERE v BETWEEN lo AND hi",
            vectorized=vectorized,
        )
        assert got.rows == [["5"]]

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_not_between_null_is_false_too(self, db, vectorized):
        # NOT BETWEEN is also a comparison: NULL rows fail it rather
        # than passing by double negation.
        got = db.execute(
            "SELECT v FROM T WHERE v NOT BETWEEN lo AND hi",
            vectorized=vectorized,
        )
        assert got.rows == [["0"]]

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_mixed_numeric_comparison_in_where(self, db, vectorized):
        # "007"-style coercion through a real statement: int literal vs
        # string cells compares numerically.
        db.register_table("U", ["n"], [["007"], ["7.0"], ["8"], ["x"]])
        got = db.execute(
            "SELECT n FROM U WHERE n = 7", vectorized=vectorized
        )
        assert got.rows == [["007"], ["7.0"]]
