"""Tests for the pluggable ingest executor backends.

The load-bearing property is byte-identity: whatever backend runs the
serialize/compress fan-out, the DFS must end up with exactly the same
files holding exactly the same bytes, and the ingest reports must claim
the same sizes — parallelism may only change wall-clock time.
"""

from __future__ import annotations

import pytest

from repro.core import Spate, SpateConfig
from repro.core.config import DecayPolicyConfig
from repro.engine.executor import (
    EXECUTOR_BACKENDS,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_executor,
    resolve_backend,
)
from repro.errors import ConfigError
from repro.telco import TelcoTraceGenerator, TraceConfig

EPOCHS = 4


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"task {x} failed")


def _ingest(executor: str, layout: str) -> tuple[Spate, list]:
    generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=7))
    spate = Spate(SpateConfig(
        codec="gzip-ref",
        layout=layout,
        executor=executor,
        decay=DecayPolicyConfig(enabled=False),
    ))
    spate.register_cells(generator.cells_table())
    reports = []
    for epoch in range(EPOCHS):
        spate.ingest(generator.snapshot(epoch))
        reports.append(spate.last_ingest_report)
    spate.finalize()
    return spate, reports


def _dfs_contents(spate: Spate) -> dict[str, bytes]:
    return {path: spate.dfs.read_file(path) for path in spate.dfs.list_dir("/spate")}


class TestBackendPrimitives:
    def test_serial_map_preserves_order(self):
        backend = SerialBackend()
        assert backend.map(_square, range(10)) == [x * x for x in range(10)]

    def test_thread_map_matches_serial(self):
        backend = ThreadBackend(workers=4)
        assert backend.map(_square, range(50)) == [x * x for x in range(50)]

    def test_run_reports_timing(self):
        results, run = ThreadBackend(workers=2).run(_square, range(8))
        assert results == [x * x for x in range(8)]
        assert run.backend == "thread"
        assert run.tasks == 8
        assert run.wall_seconds > 0.0
        assert run.task_seconds >= 0.0
        assert run.queue_depth == 6
        assert run.speedup >= 0.0

    def test_run_merged_combines_batches(self):
        __, first = SerialBackend().run(_square, range(3))
        __, second = SerialBackend().run(_square, range(5))
        merged = first.merged(second)
        assert merged.tasks == 8
        assert merged.wall_seconds == pytest.approx(
            first.wall_seconds + second.wall_seconds
        )

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError):
            SerialBackend().map(_boom, [1])
        with pytest.raises(ValueError):
            ThreadBackend(workers=2).map(_boom, [1, 2])

    def test_resolve_auto_picks_concrete_backend(self):
        assert resolve_backend("auto") in ("serial", "thread")
        assert resolve_backend("process") == "process"

    def test_get_executor_rejects_unknown(self):
        with pytest.raises(ConfigError):
            get_executor("gpu")

    def test_config_rejects_unknown_executor(self):
        with pytest.raises(ConfigError):
            SpateConfig(executor="gpu")
        with pytest.raises(ConfigError):
            SpateConfig(executor_workers=0)

    def test_all_names_construct(self):
        for name in EXECUTOR_BACKENDS:
            assert get_executor(name).name in ("serial", "thread", "process")


class TestByteIdentity:
    @pytest.mark.parametrize("layout", ["row", "columnar"])
    def test_thread_matches_serial(self, layout):
        serial_spate, serial_reports = _ingest("serial", layout)
        thread_spate, thread_reports = _ingest("thread", layout)
        assert _dfs_contents(serial_spate) == _dfs_contents(thread_spate)
        for left, right in zip(serial_reports, thread_reports):
            assert left.raw_bytes == right.raw_bytes
            assert left.compressed_bytes == right.compressed_bytes
        assert thread_reports[0].executor == "thread"
        assert thread_reports[0].parallel_tasks > 0

    def test_process_matches_serial(self):
        serial_spate, serial_reports = _ingest("serial", "row")
        try:
            process_spate, process_reports = _ingest("process", "row")
        except (OSError, PermissionError) as error:  # pragma: no cover
            pytest.skip(f"process pool unavailable here: {error}")
        assert _dfs_contents(serial_spate) == _dfs_contents(process_spate)
        for left, right in zip(serial_reports, process_reports):
            assert left.raw_bytes == right.raw_bytes
            assert left.compressed_bytes == right.compressed_bytes

    def test_explore_results_match_across_backends(self):
        serial_spate, __ = _ingest("serial", "row")
        thread_spate, __ = _ingest("thread", "row")
        for spate in (serial_spate, thread_spate):
            spate.register_cells(
                TelcoTraceGenerator(
                    TraceConfig(scale=0.002, days=1, seed=7)
                ).cells_table()
            )
        left = serial_spate.explore("CDR", ("downflux",), None, 0, EPOCHS - 1)
        right = thread_spate.explore("CDR", ("downflux",), None, 0, EPOCHS - 1)
        assert left.records == right.records
        assert left.aggregate("downflux").mean == right.aggregate("downflux").mean


class TestMetricsInstrumentation:
    def test_executor_counters_flow_into_metrics(self):
        spate, __ = _ingest("thread", "row")
        metrics = spate.metrics
        assert metrics.executor_backend == "thread"
        assert metrics.executor_tasks > 0
        assert metrics.compress_wall_seconds > 0.0
        assert metrics.parallel_speedup > 0.0
        assert "ingest executor" in metrics.summary()

    def test_index_epoch_lookup_is_wired(self):
        spate, __ = _ingest("serial", "row")
        leaf = spate.index.find_leaf(2)
        assert leaf is not None and leaf.epoch == 2
        assert spate.index.find_leaf(999) is None
        assert spate.read_table(2, "CDR") is not None
