"""The reopen-with-a-different-codec bug, killed two ways.

Tagged leaves (anything written since tags exist) are self-describing:
the configured codec is irrelevant to reads, so reopening under any
codec returns the original answers.  Untagged legacy leaves can't
self-describe, so `Spate.open` consults the warehouse creation record
(`/spate/warehouse.json`): a matching static config migrates the tags
in place; a mismatching one — previously silent corruption — now fails
fast with ConfigError."""

from __future__ import annotations

import pytest

from repro.core import DurabilityConfig, Spate, SpateConfig
from repro.dfs.filesystem import SimulatedDFS
from repro.errors import ConfigError
from repro.telco import TelcoTraceGenerator, TraceConfig

EPOCHS = 6


def _config(codec: str) -> SpateConfig:
    return SpateConfig(codec=codec, durability=DurabilityConfig(enabled=True))


def _build(codec: str):
    generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=7))
    spate = Spate(_config(codec), dfs=SimulatedDFS(
        block_size=1 << 20, default_replication=3
    ))
    spate.register_cells(generator.cells_table())
    for epoch in range(EPOCHS):
        spate.ingest(generator.snapshot(epoch))
    return spate


def _answers(spate: Spate):
    result = spate.explore("CDR", ("downflux", "upflux"), None, 0, EPOCHS - 1)
    return result.records


def _strip_tags(spate: Spate) -> None:
    """Simulate a pre-tagging legacy warehouse: erase every leaf's codec
    tags and checkpoint the stripped state so recovery sees it."""
    for leaf in spate.index.leaves():
        leaf.table_codecs.clear()
        leaf.table_dicts.clear()
    spate.checkpoint()


class TestTaggedLeavesSelfDescribe:
    def test_reopen_with_wrong_codec_reads_correctly(self):
        spate = _build("gzip-ref")
        expected = _answers(spate)
        dfs = spate.dfs
        del spate

        reopened = Spate.open(_config("bz2-ref"), dfs=dfs)
        assert _answers(reopened) == expected
        # New ingests under the new config are tagged with the new
        # codec and coexist with the old leaves in one warehouse.
        generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=7))
        for epoch in range(EPOCHS):
            __ = generator.snapshot(epoch)  # advance mobility state
        reopened.ingest(generator.snapshot(EPOCHS))
        leaf = reopened.index.find_leaf(EPOCHS)
        assert set(leaf.table_codecs.values()) == {"bz2-ref"}

    def test_reopen_as_auto_reads_correctly(self):
        spate = _build("7z-ref")
        expected = _answers(spate)
        dfs = spate.dfs
        del spate
        reopened = Spate.open(_config("auto"), dfs=dfs)
        assert _answers(reopened) == expected


class TestWarehouseCreationRecord:
    def test_written_once_at_creation(self):
        spate = _build("gzip-ref")
        meta = spate.stored_warehouse_meta()
        assert meta is not None and meta["static_codec"] == "gzip-ref"
        dfs = spate.dfs
        del spate
        # A reopen under another codec must not overwrite the record.
        reopened = Spate.open(_config("bz2-ref"), dfs=dfs)
        assert reopened.stored_warehouse_meta()["static_codec"] == "gzip-ref"


class TestUntaggedLegacyLeaves:
    def test_wrong_codec_fails_fast(self):
        spate = _build("gzip-ref")
        _strip_tags(spate)
        dfs = spate.dfs
        del spate
        with pytest.raises(ConfigError):
            Spate.open(_config("bz2-ref"), dfs=dfs)

    def test_matching_codec_migrates_tags(self):
        spate = _build("gzip-ref")
        expected = _answers(spate)
        _strip_tags(spate)
        dfs = spate.dfs
        del spate

        reopened = Spate.open(_config("gzip-ref"), dfs=dfs)
        report = reopened.last_recovery_report
        assert report.leaves_migrated == EPOCHS
        assert report.migrated_codec == "gzip-ref"
        assert "codec migration" in report.summary()
        for leaf in reopened.index.leaves():
            for table in leaf.table_paths:
                assert leaf.codec_for(table) == "gzip-ref"
        assert _answers(reopened) == expected
        # The migration is persisted: a second reopen has nothing to do.
        dfs = reopened.dfs
        del reopened
        again = Spate.open(_config("gzip-ref"), dfs=dfs)
        assert again.last_recovery_report.leaves_migrated == 0

    def test_auto_config_migrates_via_creation_record(self):
        """codec="auto" has no single static codec to assume, but the
        creation record names the original; migration uses it."""
        spate = _build("gzip-ref")
        expected = _answers(spate)
        _strip_tags(spate)
        dfs = spate.dfs
        del spate
        reopened = Spate.open(_config("auto"), dfs=dfs)
        assert reopened.last_recovery_report.leaves_migrated == EPOCHS
        assert _answers(reopened) == expected

    def test_no_record_and_auto_fails_fast(self):
        spate = _build("gzip-ref")
        _strip_tags(spate)
        dfs = spate.dfs
        dfs.delete_file(Spate.WAREHOUSE_META_PATH)
        del spate
        with pytest.raises(ConfigError):
            Spate.open(_config("auto"), dfs=dfs)

    def test_no_record_static_config_is_assumed(self):
        """Without a creation record the configured static codec is the
        only evidence there is; opening with the right one works."""
        spate = _build("gzip-ref")
        expected = _answers(spate)
        _strip_tags(spate)
        dfs = spate.dfs
        dfs.delete_file(Spate.WAREHOUSE_META_PATH)
        del spate
        reopened = Spate.open(_config("gzip-ref"), dfs=dfs)
        assert reopened.last_recovery_report.leaves_migrated == EPOCHS
        assert _answers(reopened) == expected
