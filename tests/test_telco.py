"""Tests for the telco substrate: topology, users, workload, generator."""

import pytest

from repro.core.snapshot import EPOCHS_PER_DAY
from repro.compression.entropy import attribute_entropies
from repro.telco import (
    DAY_PERIODS,
    WEEKDAYS,
    NetworkTopology,
    RadioTech,
    TelcoTraceGenerator,
    TraceConfig,
    day_period_of_epoch,
    load_multiplier,
    weekday_of_epoch,
)
from repro.telco.schema import (
    CDR_COLUMNS,
    CDR_SCHEMA,
    CELL_COLUMNS,
    NMS_COLUMNS,
)
from repro.telco.users import UserPopulation
from repro.telco.workload import (
    day_period_of_hour,
    diurnal_factor,
    epochs_of_day_period,
    epochs_of_weekday,
)


class TestSchema:
    def test_cdr_has_about_200_attributes(self):
        assert 190 <= len(CDR_COLUMNS) <= 210

    def test_nms_has_8_attributes(self):
        assert len(NMS_COLUMNS) == 8

    def test_cell_has_10_attributes(self):
        assert len(CELL_COLUMNS) == 10

    def test_no_duplicate_column_names(self):
        assert len(set(CDR_COLUMNS)) == len(CDR_COLUMNS)

    def test_filler_specs_sample_strings(self):
        import random

        rng = random.Random(0)
        for spec in CDR_SCHEMA[14:]:
            value = spec.sample(rng)
            assert isinstance(value, str)

    def test_core_specs_refuse_to_sample(self):
        import random

        with pytest.raises(ValueError):
            CDR_SCHEMA[0].sample(random.Random(0))


class TestTopology:
    @pytest.fixture(scope="class")
    def topo(self):
        return NetworkTopology.build(n_antennas=100, seed=5)

    def test_antenna_count(self, topo):
        assert len(topo.antennas) == 100

    def test_cells_per_antenna_ratio(self, topo):
        # Sector weights average ~2.75 cells per antenna (paper: 3660/1192 ~ 3.07).
        ratio = len(topo.cells) / len(topo.antennas)
        assert 2.0 <= ratio <= 4.0

    def test_all_cells_inside_area(self, topo):
        for cell in topo.cells:
            assert topo.area.contains(cell.centroid)

    def test_cell_lookup(self, topo):
        cell = topo.cells[0]
        assert topo.cell(cell.cell_id) is cell
        with pytest.raises(KeyError):
            topo.cell("C99999")

    def test_controllers_match_tech(self, topo):
        by_id = {c.controller_id: c for c in topo.controllers}
        for antenna in topo.antennas:
            controller = by_id[antenna.controller_id]
            assert controller.tech == antenna.tech

    def test_deterministic_for_seed(self):
        a = NetworkTopology.build(n_antennas=30, seed=9)
        b = NetworkTopology.build(n_antennas=30, seed=9)
        assert [c.cell_id for c in a.cells] == [c.cell_id for c in b.cells]
        assert a.cells[0].centroid == b.cells[0].centroid

    def test_radio_tech_names(self):
        assert RadioTech.GSM.base_station_kind == "BTS"
        assert RadioTech.UMTS.controller_kind == "RNC"
        assert RadioTech.LTE.base_station_kind == "eNodeB"

    def test_cells_in_box(self, topo):
        found = topo.cells_in(topo.area)
        assert len(found) == len(topo.cells)


class TestUsers:
    @pytest.fixture(scope="class")
    def population(self):
        topo = NetworkTopology.build(n_antennas=40, seed=2)
        return UserPopulation(topo, n_users=500, seed=2)

    def test_population_size(self, population):
        assert len(population.subscribers) == 500

    def test_sample_active_weighted(self, population):
        sample = population.sample_active(100)
        assert len(sample) == 100

    def test_mobility_moves_some_users(self, population):
        before = [s.current_cell_index for s in population.subscribers]
        population.step_mobility()
        after = [s.current_cell_index for s in population.subscribers]
        moved = sum(1 for b, a in zip(before, after) if b != a)
        assert moved > 0

    def test_empty_topology_rejected(self):
        topo = NetworkTopology.build(n_antennas=10, seed=1)
        topo.cells = []
        with pytest.raises(ValueError):
            UserPopulation(topo, n_users=10)


class TestWorkload:
    def test_day_periods_cover_every_hour(self):
        for hour in range(24):
            assert day_period_of_hour(hour) in DAY_PERIODS

    def test_paper_boundaries(self):
        assert day_period_of_hour(5) == "morning"
        assert day_period_of_hour(11) == "morning"
        assert day_period_of_hour(12) == "afternoon"
        assert day_period_of_hour(17) == "evening"
        assert day_period_of_hour(21) == "night"
        assert day_period_of_hour(4) == "night"

    def test_invalid_hour(self):
        with pytest.raises(ValueError):
            day_period_of_hour(24)

    def test_weekday_of_epoch_origin_is_monday(self):
        assert weekday_of_epoch(0) == "Mon"
        assert weekday_of_epoch(EPOCHS_PER_DAY) == "Tue"

    def test_epochs_of_day_period_partition(self):
        total = sum(len(epochs_of_day_period(p)) for p in DAY_PERIODS)
        assert total == 7 * EPOCHS_PER_DAY

    def test_epochs_of_weekday_partition(self):
        total = sum(len(epochs_of_weekday(w)) for w in WEEKDAYS)
        assert total == 7 * EPOCHS_PER_DAY

    def test_unknown_keys_raise(self):
        with pytest.raises(KeyError):
            epochs_of_day_period("brunch")
        with pytest.raises(KeyError):
            epochs_of_weekday("Funday")

    def test_diurnal_peak_and_trough(self):
        assert diurnal_factor(19.0) > diurnal_factor(3.0)

    def test_load_multiplier_positive(self):
        for epoch in range(0, 7 * EPOCHS_PER_DAY, 7):
            assert load_multiplier(epoch) > 0


class TestGenerator:
    @pytest.fixture(scope="class")
    def gen(self):
        return TelcoTraceGenerator(TraceConfig(scale=0.003, days=7, seed=4))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(scale=0)
        with pytest.raises(ValueError):
            TraceConfig(days=0)

    def test_scaled_counts(self):
        config = TraceConfig(scale=0.01)
        assert config.n_users == 3000
        assert config.n_antennas == 11
        assert config.cdr_per_epoch > 0
        assert config.nms_per_epoch > config.cdr_per_epoch

    def test_snapshot_tables_and_schema(self, gen):
        from repro.telco.schema import MR_COLUMNS

        snap = gen.snapshot(10)
        assert set(snap.tables) == {"CDR", "NMS", "MR"}
        assert snap.tables["CDR"].columns == CDR_COLUMNS
        assert snap.tables["NMS"].columns == NMS_COLUMNS
        assert snap.tables["MR"].columns == MR_COLUMNS

    def test_mr_reports_tied_to_sessions(self, gen):
        snap = gen.snapshot(12)
        cdr = snap.tables["CDR"]
        mr = snap.tables["MR"]
        # 1-3 reports per session.
        assert len(cdr) <= len(mr) <= 3 * len(cdr)
        cdr_users = set(cdr.column_values("caller_id"))
        assert set(mr.column_values("user_id")) <= cdr_users

    def test_mr_rssi_physically_plausible(self, gen):
        from repro.telco.radio import NOISE_FLOOR_DBM

        mr = gen.snapshot(13).tables["MR"]
        for value in mr.column_values("rssi_dbm"):
            assert NOISE_FLOOR_DBM <= int(value) <= 25

    def test_cells_table_schema(self, gen):
        cells = gen.cells_table()
        assert cells.columns == CELL_COLUMNS
        assert len(cells) == len(gen.topology.cells)

    def test_cdr_cells_exist_in_topology(self, gen):
        snap = gen.snapshot(11)
        known = {c.cell_id for c in gen.topology.cells}
        cell_idx = snap.tables["CDR"].column_index("cell_id")
        assert all(row[cell_idx] in known for row in snap.tables["CDR"].rows)

    def test_determinism(self):
        a = TelcoTraceGenerator(TraceConfig(scale=0.003, seed=8)).snapshot(5)
        b = TelcoTraceGenerator(TraceConfig(scale=0.003, seed=8)).snapshot(5)
        assert a.serialize() == b.serialize()

    def test_different_seeds_differ(self):
        a = TelcoTraceGenerator(TraceConfig(scale=0.003, seed=8)).snapshot(5)
        b = TelcoTraceGenerator(TraceConfig(scale=0.003, seed=9)).snapshot(5)
        assert a.serialize() != b.serialize()

    def test_load_varies_by_time_of_day(self, gen):
        night = gen.snapshot(6)  # 03:00
        evening = gen.snapshot(38)  # 19:00
        assert len(evening.tables["CDR"]) > len(night.tables["CDR"])

    def test_entropy_profile_matches_figure4(self, gen):
        snap = gen.snapshot(20)
        cdr_entropy = attribute_entropies(snap.tables["CDR"].rows)
        below_one = sum(1 for e in cdr_entropy if e < 1.0)
        # Figure 4 (left): most CDR attributes below 1 bit.
        assert below_one > len(cdr_entropy) * 0.6
        nms_entropy = attribute_entropies(snap.tables["NMS"].rows)
        # Figure 4 (centre): NMS counters are low-entropy (quantized).
        assert max(nms_entropy[2:]) < 7.0

    def test_generate_defaults_to_whole_trace(self):
        gen = TelcoTraceGenerator(TraceConfig(scale=0.003, days=1, seed=3))
        snapshots = list(gen.generate())
        assert len(snapshots) == EPOCHS_PER_DAY
        assert [s.epoch for s in snapshots] == list(range(EPOCHS_PER_DAY))

    def test_record_ids_are_unique(self, gen):
        snap_a = gen.snapshot(30)
        snap_b = gen.snapshot(31)
        idx = snap_a.tables["CDR"].column_index("record_id")
        ids = [r[idx] for r in snap_a.tables["CDR"].rows]
        ids += [r[idx] for r in snap_b.tables["CDR"].rows]
        assert len(ids) == len(set(ids))
