"""Property tests: the vectorized engine is indistinguishable from the
row engine.

Hypothesis drives random predicates/aggregates/orderings over both a
randomly drawn materialized table (adversarial cell values: empty
strings, zero-padded numbers, floats, text) and a real ingested telco
warehouse (scan path with pushdown and projection active).  For every
statement the two engines must return byte-identical answers — or fail
with the same exception class.  Degraded modes ride along: deadline
truncation trips at the same stage and ``partial_ok`` scans report the
same coverage under both engines.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Spate, SpateConfig
from repro.errors import QueryDeadlineError
from repro.query.sql import Database
from repro.telco import TelcoTraceGenerator, TraceConfig

from tests.sql_reference import (
    Agg,
    CaseSpec,
    Filter,
    OrderSpec,
    QuerySpec,
    evaluate,
    render_sql,
)

# ----------------------------------------------------------------------
# Materialized-table property: adversarial cell values
# ----------------------------------------------------------------------

#: Cell pool mixing NULLs, ints, zero-padded ints, floats, and text —
#: every coercion edge in the values truth table.
CELL_POOL = ["", "0", "1", "7", "07", "7.5", "-3", "10", "2", "a", "b", "x"]
T_COLUMNS = ["k", "v", "w"]
OPS = ["=", "!=", "<", "<=", ">", ">="]
AGG_FUNCS = ["COUNT", "SUM", "AVG", "MIN", "MAX"]


def random_local_spec(rng: random.Random) -> QuerySpec:
    """A spec over the three-column table T, weighted toward shapes
    that stress coercion: filters on mixed cells, grouping on nullable
    keys, ordering with ties, CASE, UNION."""
    kind = rng.choice(["plain", "grouped", "order", "case", "union", "having"])
    filters = tuple(
        Filter("T", rng.choice(T_COLUMNS), rng.choice(OPS),
               rng.choice(CELL_POOL + [rng.randint(-2, 12)]))
        for __ in range(rng.randint(0, 2))
    )
    if kind == "grouped" or kind == "having":
        key = rng.choice(T_COLUMNS)
        return QuerySpec(
            table="T",
            select=(("T", key),),
            aggs=(Agg("COUNT"),
                  Agg(rng.choice(AGG_FUNCS), rng.choice(T_COLUMNS))),
            filters=filters,
            group_by=(key,),
            having=((("a0", rng.choice(OPS), rng.randint(0, 5)),)
                    if kind == "having" else ()),
        )
    if kind == "order":
        return QuerySpec(
            table="T",
            select=(("T", "k"), ("T", "v")),
            filters=filters,
            order_by=(OrderSpec("c0", ascending=rng.random() < 0.5),
                      OrderSpec("c1"),),
            limit=rng.randint(1, 10) if rng.random() < 0.5 else None,
        )
    if kind == "case":
        return QuerySpec(
            table="T",
            select=(("T", rng.choice(T_COLUMNS)),),
            cases=(CaseSpec("T", rng.choice(T_COLUMNS), rng.choice(OPS),
                            rng.choice(CELL_POOL), "hi", "lo"),),
            filters=filters,
        )
    if kind == "union":
        branch = QuerySpec(
            table="T",
            select=(("T", rng.choice(T_COLUMNS)),),
            filters=tuple(
                Filter("T", rng.choice(T_COLUMNS), rng.choice(OPS),
                       rng.choice(CELL_POOL))
                for __ in range(rng.randint(0, 1))
            ),
        )
        return QuerySpec(
            table="T",
            select=(("T", rng.choice(T_COLUMNS)),),
            filters=filters,
            union=branch,
            union_all=rng.random() < 0.5,
            limit=rng.randint(1, 20) if rng.random() < 0.5 else None,
        )
    return QuerySpec(
        table="T",
        select=tuple(("T", c) for c in
                     rng.sample(T_COLUMNS, rng.randint(1, 3))),
        filters=filters,
        limit=rng.randint(1, 15) if rng.random() < 0.5 else None,
    )


def _run(db: Database, sql: str, vectorized: bool):
    """(result, None) on success, (None, exception class name) on error."""
    try:
        return db.execute(sql, vectorized=vectorized), None
    except Exception as exc:  # noqa: BLE001 — parity is the property
        return None, type(exc).__name__


@given(
    rows=st.lists(
        st.tuples(*[st.sampled_from(CELL_POOL)] * len(T_COLUMNS)),
        max_size=24,
    ),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_engines_agree_on_random_tables(rows, seed):
    db = Database()
    db.register_table("T", list(T_COLUMNS), [list(r) for r in rows])
    spec = random_local_spec(random.Random(seed))
    sql = render_sql(spec)
    got, got_err = _run(db, sql, vectorized=True)
    want, want_err = _run(db, sql, vectorized=False)
    assert got_err == want_err, sql
    if got_err is None:
        assert got.columns == want.columns, sql
        assert got.rows == want.rows, sql
        # And the naive reference concurs on well-formed statements.
        ref_columns, ref_rows = evaluate(
            spec, {"T": (list(T_COLUMNS), [list(r) for r in rows])}
        )
        assert got.columns == ref_columns, sql
        assert got.rows == ref_rows, sql


# ----------------------------------------------------------------------
# Warehouse property: real scan path, pushdown + projection active
# ----------------------------------------------------------------------

EPOCHS = 12


@pytest.fixture(scope="module")
def warehouse():
    trace = TraceConfig(scale=0.002, days=1, seed=41)
    generator = TelcoTraceGenerator(trace)
    spate = Spate(SpateConfig(query_pruning=True))
    spate.register_cells(generator.cells_table())
    for epoch in range(EPOCHS):
        spate.ingest(generator.snapshot(epoch))
    spate.finalize()
    tables = {
        name: spate.read_rows(name, 0, EPOCHS - 1) for name in ("CDR", "NMS")
    }
    return spate, spate.sql_database(), tables


WAREHOUSE_COLUMNS = {
    "CDR": ["duration_s", "upflux", "downflux", "call_type", "result"],
    "NMS": ["val", "drops", "kpi"],
}


def random_warehouse_sql(rng: random.Random, tables) -> str:
    table = rng.choice(["CDR", "NMS"])
    columns, rows = tables[table]
    pool = WAREHOUSE_COLUMNS[table]
    conjuncts = []
    for __ in range(rng.randint(0, 2)):
        column = rng.choice(pool)
        idx = columns.index(column)
        values = [r[idx] for r in rows if r[idx] != ""] or ["0"]
        value = rng.choice(values)
        literal = value if value.lstrip("-").isdigit() else f"'{value}'"
        conjuncts.append(f"{column} {rng.choice(OPS)} {literal}")
    where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""
    if rng.random() < 0.5:
        key = "call_type" if table == "CDR" else "kpi"
        numeric = rng.choice(pool[:2])
        return (
            f"SELECT {key} AS c0, COUNT(*) AS a0, "
            f"{rng.choice(AGG_FUNCS)}({numeric}) AS a1 "
            f"FROM {table}{where} GROUP BY {key}"
        )
    picked = ", ".join(
        f"{c} AS c{i}" for i, c in enumerate(rng.sample(pool, 2))
    )
    suffix = f" LIMIT {rng.randint(1, 30)}" if rng.random() < 0.5 else ""
    return f"SELECT {picked} FROM {table}{where}{suffix}"


@given(seed=st.integers(0, 2**32 - 1))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_engines_agree_on_warehouse_scans(warehouse, seed):
    spate, db, tables = warehouse
    sql = random_warehouse_sql(random.Random(seed), tables)
    got, got_err = _run(db, sql, vectorized=True)
    want, want_err = _run(db, sql, vectorized=False)
    assert got_err == want_err, sql
    if got_err is None:
        assert got.columns == want.columns, sql
        assert got.rows == want.rows, sql


@given(seed=st.integers(0, 2**32 - 1))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_scan_coverage_parity(warehouse, seed):
    """Both engines drive the same gatekeeping: identical epochs
    served/pruned for the same pushed predicates."""
    spate, db, tables = warehouse
    sql = random_warehouse_sql(random.Random(seed), tables)
    got_err = _run(db, sql, vectorized=True)[1]
    vec_cov = {
        k: dict(v) if isinstance(v, dict) else list(v)
        for k, v in spate.last_scan_coverage.items()
    }
    want_err = _run(db, sql, vectorized=False)[1]
    row_cov = {
        k: dict(v) if isinstance(v, dict) else list(v)
        for k, v in spate.last_scan_coverage.items()
    }
    assert got_err == want_err, sql
    if got_err is None:
        assert vec_cov == row_cov, sql


# ----------------------------------------------------------------------
# Degraded modes: deadline truncation and partial_ok parity
# ----------------------------------------------------------------------


class TestDegradedParity:
    def _ticking_clock(self, monkeypatch):
        import repro.query.sql.executor as executor_module

        ticks = iter(range(0, 10_000_000, 100))  # each call jumps 100 s
        monkeypatch.setattr(
            executor_module.time, "monotonic", lambda: float(next(ticks))
        )

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_deadline_trips_at_the_same_stage(
        self, warehouse, monkeypatch, vectorized
    ):
        """With a clock that jumps 100 s per reading, both engines blow
        the deadline on their first stage check — and because the
        vectorized engine marks the same stages at the same points, the
        error text (which names the stage) is identical."""
        spate, __, tables = warehouse
        db = spate.sql_database()
        sql = "SELECT call_type AS c0, COUNT(*) AS a0 FROM CDR GROUP BY call_type"
        self._ticking_clock(monkeypatch)
        with pytest.raises(QueryDeadlineError) as excinfo:
            db.execute(sql, deadline_ms=1000, vectorized=vectorized)
        assert "scan/join" in str(excinfo.value)

    def test_partial_ok_coverage_parity_with_dead_leaf(self):
        """Destroy one leaf's every replica: with ``partial_ok`` both
        engines answer from the survivors and report the identical
        skipped epoch."""
        from tests.test_degraded_queries import destroy_leaf

        trace = TraceConfig(scale=0.002, days=1, seed=41)
        generator = TelcoTraceGenerator(trace)
        spate = Spate(SpateConfig(leaf_cache_bytes=0))
        spate.register_cells(generator.cells_table())
        for epoch in range(10):
            spate.ingest(generator.snapshot(epoch))
        spate.finalize()
        destroy_leaf(spate, 4)

        db = spate.sql_database(0, 9, partial_ok=True)
        sql = "SELECT call_type AS c0, COUNT(*) AS a0 FROM CDR GROUP BY call_type"
        got = db.execute(sql)
        vec_cov = {
            "served": list(spate.last_scan_coverage["epochs_served"]),
            "skipped": dict(spate.last_scan_coverage["epochs_skipped"]),
        }
        want = db.execute(sql, vectorized=False)
        row_cov = {
            "served": list(spate.last_scan_coverage["epochs_served"]),
            "skipped": dict(spate.last_scan_coverage["epochs_skipped"]),
        }
        assert got.rows == want.rows
        assert vec_cov == row_cov
        assert list(vec_cov["skipped"]) == [4]
        assert 4 not in vec_cov["served"]
