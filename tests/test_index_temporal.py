"""Tests for the multi-resolution temporal index tree."""

import pytest

from repro.core.snapshot import EPOCHS_PER_DAY
from repro.errors import OutOfOrderSnapshotError
from repro.index.temporal import SnapshotLeaf, TemporalIndex, epochs_of_day


def leaf(epoch: int) -> SnapshotLeaf:
    return SnapshotLeaf(
        epoch=epoch,
        table_paths={"CDR": f"/p/{epoch}/CDR"},
        raw_bytes=1000,
        compressed_bytes=100,
        record_count=10,
    )


class TestInsertion:
    def test_first_leaf_creates_all_levels(self):
        index = TemporalIndex()
        assert index.insert_leaf(leaf(0)) == (True, True, True)
        assert len(index.years) == 1
        assert len(index.years[0].months) == 1
        assert len(index.day_nodes()) == 1

    def test_same_day_appends_to_rightmost(self):
        index = TemporalIndex()
        index.insert_leaf(leaf(0))
        assert index.insert_leaf(leaf(1)) == (False, False, False)
        assert len(index.day_nodes()) == 1
        assert len(index.day_nodes()[0].leaves) == 2

    def test_day_boundary_creates_day_node(self):
        index = TemporalIndex()
        index.insert_leaf(leaf(EPOCHS_PER_DAY - 1))
        assert index.insert_leaf(leaf(EPOCHS_PER_DAY)) == (True, False, False)
        assert len(index.day_nodes()) == 2

    def test_month_boundary(self):
        index = TemporalIndex()
        # 2016-01-31 is day 13 of the trace (origin Jan 18).
        index.insert_leaf(leaf(13 * EPOCHS_PER_DAY))
        new_day, new_month, new_year = index.insert_leaf(leaf(14 * EPOCHS_PER_DAY))
        assert (new_day, new_month, new_year) == (True, True, False)
        assert [m.key for m in index.month_nodes()] == ["2016-01", "2016-02"]

    def test_year_boundary(self):
        index = TemporalIndex()
        # Trace origin is 2016-01-18; day 349 is 2017-01-01.
        index.insert_leaf(leaf(348 * EPOCHS_PER_DAY))
        flags = index.insert_leaf(leaf(349 * EPOCHS_PER_DAY))
        assert flags == (True, True, True)
        assert [y.key for y in index.years] == ["2016", "2017"]

    def test_out_of_order_rejected(self):
        index = TemporalIndex()
        index.insert_leaf(leaf(5))
        with pytest.raises(OutOfOrderSnapshotError):
            index.insert_leaf(leaf(5))
        with pytest.raises(OutOfOrderSnapshotError):
            index.insert_leaf(leaf(3))

    def test_gaps_allowed(self):
        index = TemporalIndex()
        index.insert_leaf(leaf(0))
        index.insert_leaf(leaf(100))
        assert index.frontier_epoch == 100


class TestNavigation:
    @pytest.fixture()
    def populated(self) -> TemporalIndex:
        index = TemporalIndex()
        for epoch in range(3 * EPOCHS_PER_DAY):
            index.insert_leaf(leaf(epoch))
        return index

    def test_day_nodes_in_order(self, populated):
        keys = [d.key for d in populated.day_nodes()]
        assert keys == ["2016-01-18", "2016-01-19", "2016-01-20"]

    def test_find_day(self, populated):
        assert populated.find_day("2016-01-19") is not None
        assert populated.find_day("2099-01-01") is None

    def test_find_month_and_year(self, populated):
        assert populated.find_month("2016-01") is not None
        assert populated.find_month("2016-02") is None
        assert populated.find_year("2016") is not None
        assert populated.find_year("2015") is None

    def test_leaves_in_epochs(self, populated):
        leaves = populated.leaves_in_epochs(10, 20)
        assert [l.epoch for l in leaves] == list(range(10, 21))

    def test_leaves_in_epochs_skips_decayed(self, populated):
        populated.day_nodes()[0].leaves[15].decayed = True
        leaves = populated.leaves_in_epochs(10, 20)
        assert 15 not in [l.epoch for l in leaves]

    def test_leaves_in_epochs_clamps_window(self, populated):
        # Windows reaching past history on either side clamp instead of
        # scanning (or faulting on) nonexistent days.
        leaves = populated.leaves_in_epochs(-100, 10 * EPOCHS_PER_DAY)
        assert len(leaves) == 3 * EPOCHS_PER_DAY
        assert populated.leaves_in_epochs(50, 40) == []

    def test_leaves_in_epochs_skips_gap_days(self):
        index = TemporalIndex()
        index.insert_leaf(leaf(0))
        index.insert_leaf(leaf(5 * EPOCHS_PER_DAY))  # days 1-4 never ingested
        leaves = index.leaves_in_epochs(0, 6 * EPOCHS_PER_DAY)
        assert [l.epoch for l in leaves] == [0, 5 * EPOCHS_PER_DAY]

    def test_storage_accounting(self, populated):
        assert populated.storage_bytes() == 100 * 3 * EPOCHS_PER_DAY
        assert populated.leaf_count() == 3 * EPOCHS_PER_DAY
        populated.day_nodes()[0].leaves[0].decayed = True
        assert populated.leaf_count() == 3 * EPOCHS_PER_DAY - 1

    def test_render_mentions_structure(self, populated):
        rendered = populated.render()
        assert "year 2016" in rendered
        assert "month 2016-01" in rendered
        assert "day 2016-01-18" in rendered

    def test_epochs_of_day(self):
        first, last = epochs_of_day("2016-01-18")
        assert (first, last) == (0, 47)
        first, last = epochs_of_day("2016-01-20")
        assert (first, last) == (96, 143)


class TestCoveringNodeSummary:
    def test_root_summary_for_empty_index(self):
        index = TemporalIndex()
        summary = index.covering_node_summary(0, 10)
        assert summary is index.root_summary

    def test_day_level_when_window_within_day(self):
        from repro.index.highlights import HighlightSummary

        index = TemporalIndex()
        for epoch in range(EPOCHS_PER_DAY):
            index.insert_leaf(leaf(epoch))
        day = index.day_nodes()[0]
        day.summary = HighlightSummary(level="day", period=day.key)
        assert index.covering_node_summary(3, 10) is day.summary
