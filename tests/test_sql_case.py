"""Tests for CASE WHEN expressions."""

import pytest

from repro.errors import SqlSyntaxError
from repro.query.sql import Database, parse_sql
from repro.query.sql.ast import CaseExpression


@pytest.fixture()
def db():
    database = Database()
    database.register_table(
        "T", ["v", "kind"],
        [[str(i), "a" if i % 2 else "b"] for i in range(10)],
    )
    return database


class TestParsing:
    def test_searched_case(self):
        stmt = parse_sql("SELECT CASE WHEN v > 1 THEN 'x' END FROM T")
        expr = stmt.items[0].expression
        assert isinstance(expr, CaseExpression)
        assert len(expr.branches) == 1
        assert expr.default is None

    def test_simple_case_rewritten_to_equality(self):
        stmt = parse_sql("SELECT CASE v WHEN 1 THEN 'one' ELSE 'x' END FROM T")
        expr = stmt.items[0].expression
        condition, __ = expr.branches[0]
        assert str(condition) == "(v = 1)"

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT CASE ELSE 1 END FROM T")

    def test_case_requires_end(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT CASE WHEN v > 1 THEN 2 FROM T")

    def test_str_rendering(self):
        stmt = parse_sql("SELECT CASE WHEN v > 1 THEN 2 ELSE 3 END FROM T")
        assert "CASE WHEN" in str(stmt.items[0].expression)


class TestEvaluation:
    def test_first_matching_branch_wins(self, db):
        result = db.execute(
            "SELECT CASE WHEN v < 3 THEN 'low' WHEN v < 100 THEN 'rest' END "
            "AS band FROM T WHERE v = 1"
        )
        assert result.rows == [["low"]]

    def test_else_branch(self, db):
        result = db.execute(
            "SELECT CASE WHEN v > 100 THEN 'big' ELSE 'small' END FROM T LIMIT 1"
        )
        assert result.rows == [["small"]]

    def test_no_match_no_else_is_null(self, db):
        result = db.execute(
            "SELECT CASE WHEN v > 100 THEN 'big' END AS c FROM T LIMIT 1"
        )
        assert result.rows == [[None]]

    def test_case_inside_aggregate(self, db):
        result = db.execute(
            "SELECT SUM(CASE WHEN kind = 'a' THEN 1 ELSE 0 END) AS odd, "
            "SUM(CASE WHEN kind = 'b' THEN 1 ELSE 0 END) AS even FROM T"
        )
        assert result.rows == [[5, 5]]

    def test_case_in_where(self, db):
        result = db.execute(
            "SELECT v FROM T WHERE CASE WHEN kind = 'a' THEN v ELSE 0 END > 5"
        )
        assert sorted(result.column("v")) == ["7", "9"]

    def test_case_in_group_by(self, db):
        result = db.execute(
            "SELECT CASE WHEN v < 5 THEN 'lo' ELSE 'hi' END AS band, COUNT(*) "
            "FROM T GROUP BY CASE WHEN v < 5 THEN 'lo' ELSE 'hi' END "
            "ORDER BY band"
        )
        assert result.rows == [["hi", 5], ["lo", 5]]

    def test_case_pushed_down_through_join(self, db):
        db.register_table("U", ["kind", "label"], [["a", "odd"], ["b", "even"]])
        plan = db.explain(
            "SELECT T.v FROM T JOIN U ON T.kind = U.kind "
            "WHERE CASE WHEN T.v < 5 THEN 1 ELSE 0 END = 1"
        )
        assert "Scan T" in plan and "pushed" in plan
