"""Tests for the radio model and the coverage prediction layer."""

import random

import pytest

from repro.spatial.geometry import Point
from repro.telco import NetworkTopology, RadioTech, TelcoTraceGenerator, TraceConfig
from repro.telco.radio import (
    NOISE_FLOOR_DBM,
    received_power_dbm,
    usable,
)
from repro.ui import CoverageModel


class TestRadioModel:
    def test_power_decays_with_distance(self):
        near = received_power_dbm(50, RadioTech.GSM)
        far = received_power_dbm(2000, RadioTech.GSM)
        assert near > far

    def test_floor_clamped(self):
        assert received_power_dbm(1e9, RadioTech.LTE) == NOISE_FLOOR_DBM

    def test_zero_distance_clamped(self):
        assert received_power_dbm(0, RadioTech.GSM) == received_power_dbm(
            1, RadioTech.GSM
        )

    def test_lte_decays_faster_than_gsm(self):
        gsm = received_power_dbm(1500, RadioTech.GSM)
        lte = received_power_dbm(1500, RadioTech.LTE)
        assert gsm > lte

    def test_shadowing_shifts_power(self):
        base = received_power_dbm(100, RadioTech.UMTS)
        assert received_power_dbm(100, RadioTech.UMTS, shadowing_db=6.0) == base + 6.0

    def test_usable_threshold(self):
        assert usable(-90.0)
        assert not usable(NOISE_FLOOR_DBM)


@pytest.fixture(scope="module")
def topology():
    return NetworkTopology.build(n_antennas=30, area_km=(30, 20), seed=61)


@pytest.fixture(scope="module")
def model(topology):
    return CoverageModel(topology, cols=24, rows=12)


class TestCoverageModel:
    def test_grid_fully_populated(self, model):
        assert len(model._grid) == 24 * 12

    def test_prediction_near_antenna_is_strong(self, model, topology):
        antenna = topology.antennas[0]
        rssi = model.predicted_rssi(antenna.location)
        assert rssi > -100

    def test_prediction_outside_area_is_floor(self, model):
        assert model.predicted_rssi(Point(-1e6, -1e6)) == NOISE_FLOOR_DBM

    def test_coverage_fraction_bounds(self, model):
        assert 0.0 <= model.coverage_fraction() <= 1.0
        # Everything clears the noise floor itself.
        assert model.coverage_fraction(threshold_dbm=NOISE_FLOOR_DBM) == 1.0

    def test_render_produces_heatmap(self, model):
        rendered = model.render()
        assert "Predicted coverage" in rendered
        assert len(rendered.splitlines()) == 12 + 2  # title + rows + footer

    def test_comparison_with_consistent_measurements(self, model, topology):
        # Synthesize measurements with the same physics (no shadowing):
        # deltas should be small on average.
        rng = random.Random(2)
        measurements = []
        for antenna in topology.antennas[:10]:
            for __ in range(5):
                dx, dy = rng.uniform(-200, 200), rng.uniform(-200, 200)
                point = Point(antenna.location.x + dx, antenna.location.y + dy)
                if not topology.area.contains(point):
                    continue
                measured = received_power_dbm(
                    antenna.location.distance_to(point), antenna.tech
                )
                measurements.append((point, measured))
        comparison = model.compare_with_measurements(measurements)
        assert comparison.count == len(measurements)
        assert comparison.mean_abs_delta_db < 25.0

    def test_anomaly_fraction_detects_faults(self, model, topology):
        # Inject measurements 40 dB below prediction (a broken antenna).
        faulty = [
            (antenna.location, model.predicted_rssi(antenna.location) - 40.0)
            for antenna in topology.antennas[:5]
        ]
        comparison = model.compare_with_measurements(faulty)
        assert comparison.anomaly_fraction(threshold_db=15.0) == 1.0

    def test_empty_comparison(self, model):
        comparison = model.compare_with_measurements([])
        assert comparison.count == 0
        assert comparison.mean_delta_db == 0.0
        assert comparison.anomaly_fraction() == 0.0


class TestEndToEndWithMr:
    def test_mr_measurements_agree_with_model(self):
        """Stored MR records, decoded and compared against the coverage
        model, deviate only by the generator's shadowing noise."""
        generator = TelcoTraceGenerator(TraceConfig(scale=0.005, days=1, seed=67))
        snapshot = generator.snapshot(20)
        mr = snapshot.tables["MR"]
        cells = {c.cell_id: c for c in generator.topology.cells}
        model = CoverageModel(generator.topology, cols=24, rows=12)
        measurements = []
        for row in mr.rows:
            cell = cells[row[mr.column_index("cellid")]]
            measurements.append(
                (cell.centroid, float(row[mr.column_index("rssi_dbm")]))
            )
        comparison = model.compare_with_measurements(measurements)
        assert comparison.count > 0
        # Shadowing sigma is 4 dB; tile quantization adds more, but the
        # mean absolute delta stays far below a propagation fault.
        assert comparison.mean_abs_delta_db < 30.0
