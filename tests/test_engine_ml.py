"""Tests for the ML algorithms against numpy ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import EngineContext
from repro.engine.ml import col_stats, kmeans, linear_regression
from repro.errors import EngineError


@pytest.fixture(scope="module")
def ctx():
    context = EngineContext(parallelism=4)
    yield context
    context.shutdown()


class TestColStats:
    def test_matches_numpy(self, ctx):
        rng = np.random.default_rng(7)
        matrix = rng.normal(size=(500, 4)) * 10
        matrix[::7, 2] = 0.0  # some zeros for the nonzero count
        stats = col_stats(ctx.parallelize(matrix.tolist()))
        np.testing.assert_allclose(stats.mean, matrix.mean(axis=0), rtol=1e-9)
        np.testing.assert_allclose(
            stats.variance, matrix.var(axis=0, ddof=1), rtol=1e-6
        )
        np.testing.assert_allclose(stats.minimum, matrix.min(axis=0))
        np.testing.assert_allclose(stats.maximum, matrix.max(axis=0))
        np.testing.assert_allclose(
            stats.num_nonzeros, (matrix != 0).sum(axis=0)
        )
        assert stats.count == 500

    def test_single_row(self, ctx):
        stats = col_stats(ctx.parallelize([[1.0, 2.0]]))
        assert stats.count == 1
        np.testing.assert_allclose(stats.variance, [0.0, 0.0])

    def test_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            col_stats(ctx.parallelize([]))

    def test_as_rows_layout(self, ctx):
        stats = col_stats(ctx.parallelize([[1.0], [3.0]]))
        rows = dict(stats.as_rows())
        assert rows["mean"] == [2.0]
        assert rows["count"] == [2.0]

    @given(st.lists(st.lists(st.floats(-100, 100), min_size=2, max_size=2),
                    min_size=2, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_property_mean_matches_numpy(self, rows):
        matrix = np.asarray(rows)
        with EngineContext(parallelism=3) as local:
            stats = col_stats(local.parallelize(rows))
        np.testing.assert_allclose(stats.mean, matrix.mean(axis=0), atol=1e-8)


class TestKMeans:
    def make_blobs(self, ctx, centers, n=60, spread=0.5, seed=3):
        rng = np.random.default_rng(seed)
        points = []
        for cx, cy in centers:
            points.extend(
                (rng.normal(cx, spread), rng.normal(cy, spread)) for __ in range(n)
            )
        return ctx.parallelize([list(p) for p in points])

    def test_recovers_well_separated_clusters(self, ctx):
        centers = [(0, 0), (50, 50), (0, 50)]
        model = kmeans(self.make_blobs(ctx, centers), k=3, seed=1)
        assert model.converged
        found = sorted((round(c[0], -1), round(c[1], -1)) for c in model.centroids)
        assert found == sorted(centers)

    def test_predict_assigns_nearest(self, ctx):
        model = kmeans(self.make_blobs(ctx, [(0, 0), (100, 100)]), k=2, seed=5)
        near_origin = model.predict([1.0, -1.0])
        near_far = model.predict([99.0, 101.0])
        assert near_origin != near_far

    def test_inertia_decreases_with_more_clusters(self, ctx):
        data = self.make_blobs(ctx, [(0, 0), (30, 30), (60, 0)], seed=11)
        small = kmeans(data, k=1, seed=2)
        large = kmeans(data, k=3, seed=2)
        assert large.inertia < small.inertia

    def test_k_larger_than_data_raises(self, ctx):
        with pytest.raises(EngineError):
            kmeans(ctx.parallelize([[1.0, 2.0]]), k=5)

    def test_invalid_k(self, ctx):
        with pytest.raises(EngineError):
            kmeans(ctx.parallelize([[1.0]]), k=0)

    def test_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            kmeans(ctx.parallelize([]), k=1)

    def test_duplicate_points_handled(self, ctx):
        data = ctx.parallelize([[1.0, 1.0]] * 20 + [[2.0, 2.0]] * 20)
        model = kmeans(data, k=2, seed=4)
        assert model.k == 2

    def test_deterministic_for_seed(self, ctx):
        data = self.make_blobs(ctx, [(0, 0), (10, 10)], seed=9)
        m1 = kmeans(data, k=2, seed=42)
        m2 = kmeans(data, k=2, seed=42)
        np.testing.assert_allclose(m1.centroids, m2.centroids)


class TestLinearRegression:
    def test_recovers_known_coefficients(self, ctx):
        rng = np.random.default_rng(17)
        X = rng.normal(size=(400, 3))
        true_w = np.array([2.0, -1.5, 0.5])
        y = X @ true_w + 4.0 + rng.normal(scale=0.01, size=400)
        data = ctx.parallelize([(x.tolist(), float(t)) for x, t in zip(X, y)])
        model = linear_regression(data)
        np.testing.assert_allclose(model.weights, true_w, atol=0.02)
        assert model.intercept == pytest.approx(4.0, abs=0.02)
        assert model.r_squared > 0.99
        assert model.n_samples == 400

    def test_predict(self, ctx):
        data = ctx.parallelize([([float(i)], 2.0 * i + 1.0) for i in range(20)])
        model = linear_regression(data)
        assert model.predict([10.0]) == pytest.approx(21.0, abs=1e-6)

    def test_noise_lowers_r_squared(self, ctx):
        rng = np.random.default_rng(3)
        data = ctx.parallelize(
            [([float(i)], float(rng.normal())) for i in range(200)]
        )
        model = linear_regression(data)
        assert model.r_squared < 0.2

    def test_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            linear_regression(ctx.parallelize([]))

    def test_constant_feature_is_stable(self, ctx):
        # Degenerate design: ridge term keeps the solve well-posed.
        data = ctx.parallelize([([1.0, 5.0], 3.0)] * 50)
        model = linear_regression(data)
        assert model.predict([1.0, 5.0]) == pytest.approx(3.0, abs=1e-3)
