"""Tests for the simulated distributed filesystem."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dfs import DataNode, IoCostModel, NameNode, SimulatedDFS
from repro.dfs.block import Block, split_into_blocks
from repro.dfs.namenode import normalize_path
from repro.errors import (
    BlockLostError,
    FileExistsInDFSError,
    FileNotFoundInDFSError,
    ReplicationError,
    StorageError,
)


class TestBlocks:
    def test_split_exact_multiple(self):
        chunks = split_into_blocks(b"x" * 100, 25)
        assert [len(c) for c in chunks] == [25, 25, 25, 25]

    def test_split_with_remainder(self):
        chunks = split_into_blocks(b"x" * 10, 4)
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_empty_payload_has_no_blocks(self):
        assert split_into_blocks(b"", 64) == []

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            split_into_blocks(b"x", 0)

    @given(st.binary(max_size=5000), st.integers(1, 999))
    @settings(max_examples=50, deadline=None)
    def test_property_concat_restores(self, data, size):
        assert b"".join(split_into_blocks(data, size)) == data


class TestDataNode:
    def test_store_and_read(self):
        node = DataNode(node_id="dn0")
        node.store(Block(block_id=1, data=b"abc"))
        assert node.read(1) == b"abc"
        assert node.used_bytes == 3
        assert node.block_count == 1

    def test_read_missing_block(self):
        node = DataNode(node_id="dn0")
        with pytest.raises(StorageError):
            node.read(99)

    def test_capacity_enforced(self):
        node = DataNode(node_id="dn0", capacity=4)
        node.store(Block(block_id=1, data=b"abc"))
        with pytest.raises(StorageError, match="full"):
            node.store(Block(block_id=2, data=b"de"))

    def test_dead_node_rejects_io(self):
        node = DataNode(node_id="dn0")
        node.store(Block(block_id=1, data=b"abc"))
        node.fail()
        with pytest.raises(StorageError, match="down"):
            node.read(1)
        with pytest.raises(StorageError, match="down"):
            node.store(Block(block_id=2, data=b"x"))

    def test_restart_recovers_replicas(self):
        node = DataNode(node_id="dn0")
        node.store(Block(block_id=1, data=b"abc"))
        node.fail()
        node.restart()
        assert node.read(1) == b"abc"

    def test_drop_is_idempotent(self):
        node = DataNode(node_id="dn0")
        node.drop(5)
        node.store(Block(block_id=5, data=b"x"))
        node.drop(5)
        assert not node.has_block(5)


class TestNameNode:
    def test_path_normalization(self):
        assert normalize_path("a/b/c") == "/a/b/c"
        assert normalize_path("/a//b/") == "/a/b"
        assert normalize_path("/") == "/"

    def test_create_lookup_delete(self):
        nn = NameNode()
        nn.create_file("/x/y", replication=2)
        assert nn.exists("/x/y")
        assert nn.lookup("x/y").replication == 2
        nn.delete_file("/x/y")
        assert not nn.exists("/x/y")

    def test_duplicate_create_rejected(self):
        nn = NameNode()
        nn.create_file("/f", replication=1)
        with pytest.raises(FileExistsInDFSError):
            nn.create_file("/f", replication=1)

    def test_lookup_missing_raises(self):
        with pytest.raises(FileNotFoundInDFSError):
            NameNode().lookup("/nope")

    def test_list_dir(self):
        nn = NameNode()
        for path in ("/a/1", "/a/2", "/b/3"):
            nn.create_file(path, replication=1)
        assert nn.list_dir("/a") == ["/a/1", "/a/2"]

    def test_under_replicated_detection(self):
        nn = NameNode()
        meta = nn.create_file("/f", replication=3)
        block = nn.allocate_block()
        meta.blocks.append(block)
        nn.add_location(block, "dn0")
        nn.add_location(block, "dn1")
        missing = nn.under_replicated({"dn0", "dn1", "dn2"})
        assert missing == [(block, 1)]

    def test_under_replicated_ignores_dead_locations(self):
        nn = NameNode()
        meta = nn.create_file("/f", replication=2)
        block = nn.allocate_block()
        meta.blocks.append(block)
        nn.add_location(block, "dead")
        assert nn.under_replicated({"live"}) == [(block, 2)]


class TestSimulatedDFS:
    def test_write_read_round_trip(self):
        dfs = SimulatedDFS(datanodes=4, block_size=16)
        payload = b"0123456789" * 20
        dfs.write_file("/data/one", payload)
        assert dfs.read_file("/data/one") == payload
        assert dfs.file_size("/data/one") == len(payload)

    def test_replication_accounting(self):
        dfs = SimulatedDFS(datanodes=4, default_replication=3)
        dfs.write_file("/f", b"x" * 1000)
        stats = dfs.stats()
        assert stats.logical_bytes == 1000
        assert stats.physical_bytes == 3000

    def test_replication_clamped_to_cluster_size(self):
        dfs = SimulatedDFS(datanodes=2, default_replication=3)
        dfs.write_file("/f", b"y" * 10)
        assert dfs.stats().physical_bytes == 20

    def test_delete_reclaims_space(self):
        dfs = SimulatedDFS()
        dfs.write_file("/f", b"z" * 100)
        dfs.delete_file("/f")
        assert dfs.stats().physical_bytes == 0
        assert not dfs.exists("/f")

    def test_read_missing_raises(self):
        with pytest.raises(FileNotFoundInDFSError):
            SimulatedDFS().read_file("/missing")

    def test_write_existing_raises(self):
        dfs = SimulatedDFS()
        dfs.write_file("/f", b"1")
        with pytest.raises(FileExistsInDFSError):
            dfs.write_file("/f", b"2")

    def test_survives_single_datanode_failure(self):
        dfs = SimulatedDFS(datanodes=4, default_replication=3)
        dfs.write_file("/f", b"important" * 100)
        dfs.kill_datanode("dn00")
        assert dfs.read_file("/f") == b"important" * 100

    def test_block_lost_when_all_replicas_dead(self):
        dfs = SimulatedDFS(datanodes=3, default_replication=3)
        dfs.write_file("/f", b"gone")
        for node_id in ("dn00", "dn01", "dn02"):
            dfs.kill_datanode(node_id)
        with pytest.raises(BlockLostError):
            dfs.read_file("/f")

    def test_re_replication_restores_factor(self):
        dfs = SimulatedDFS(datanodes=4, default_replication=3)
        dfs.write_file("/f", b"data" * 50)
        dfs.kill_datanode("dn00")
        created = dfs.re_replicate()
        # Whatever dn00 held must have been copied somewhere live.
        lost_blocks = dfs.namenode.blocks_on("dn00")
        live = {n.node_id for n in dfs.datanodes.values() if n.alive}
        for block in lost_blocks:
            holders = {
                nid
                for nid in dfs.namenode.locations(block)
                if nid in live and dfs.datanodes[nid].has_block(block)
            }
            assert len(holders) >= 3
        assert created >= 0

    def test_restart_makes_replicas_visible_again(self):
        dfs = SimulatedDFS(datanodes=3, default_replication=3)
        dfs.write_file("/f", b"back soon")
        for node_id in ("dn00", "dn01", "dn02"):
            dfs.kill_datanode(node_id)
        dfs.restart_datanode("dn01")
        assert dfs.read_file("/f") == b"back soon"

    def test_no_live_nodes_rejects_write(self):
        dfs = SimulatedDFS(datanodes=1)
        dfs.kill_datanode("dn00")
        with pytest.raises(ReplicationError):
            dfs.write_file("/f", b"x")

    def test_list_dir(self):
        dfs = SimulatedDFS()
        dfs.write_file("/snap/1", b"a")
        dfs.write_file("/snap/2", b"b")
        dfs.write_file("/other/3", b"c")
        assert dfs.list_dir("/snap") == ["/snap/1", "/snap/2"]

    def test_placement_balances_nodes(self):
        dfs = SimulatedDFS(datanodes=4, default_replication=1, block_size=10)
        for i in range(40):
            dfs.write_file(f"/f{i}", bytes(10))
        used = [n.used_bytes for n in dfs.datanodes.values()]
        assert max(used) - min(used) <= 20

    @given(st.binary(max_size=3000), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip_any_block_size(self, payload, block_size):
        dfs = SimulatedDFS(block_size=block_size)
        dfs.write_file("/p", payload)
        assert dfs.read_file("/p") == payload


class TestIoCostModel:
    def test_write_cost_scales_with_bytes(self):
        model = IoCostModel(bandwidth_bytes_per_s=1e6, op_latency_s=0.0)
        assert model.write_seconds(2_000_000, 1) == pytest.approx(2.0)

    def test_replication_pipeline_overhead(self):
        model = IoCostModel(bandwidth_bytes_per_s=1e6, op_latency_s=0.0,
                            replication_pipeline_factor=0.5)
        single = model.write_seconds(1_000_000, 1)
        triple = model.write_seconds(1_000_000, 3)
        assert triple == pytest.approx(single * 2.0)

    def test_dfs_accumulates_modeled_seconds(self):
        dfs = SimulatedDFS(io_model=IoCostModel(
            bandwidth_bytes_per_s=1e6, op_latency_s=0.01))
        assert dfs.modeled_io_seconds == 0.0
        dfs.write_file("/f", b"x" * 100_000)
        after_write = dfs.modeled_io_seconds
        assert after_write > 0.0
        dfs.read_file("/f")
        assert dfs.modeled_io_seconds > after_write

    def test_no_model_means_zero(self):
        dfs = SimulatedDFS()
        dfs.write_file("/f", b"x" * 100_000)
        dfs.read_file("/f")
        assert dfs.modeled_io_seconds == 0.0
