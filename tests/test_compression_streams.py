"""Tests for the framed streaming compression container."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.streams import (
    CompressedReader,
    CompressedWriter,
    compress_stream,
    decompress_stream,
)
from repro.errors import CorruptStreamError


class TestWriterReader:
    def test_one_shot_round_trip(self):
        payload = b"stream me " * 1000
        assert decompress_stream(compress_stream(payload)) == payload

    def test_empty_stream(self):
        assert decompress_stream(compress_stream(b"")) == b""

    def test_multiple_writes_cross_frames(self):
        sink = io.BytesIO()
        with CompressedWriter(sink, codec="gzip-ref", frame_size=64) as writer:
            for i in range(50):
                writer.write(f"chunk-{i:04d}|".encode())
        restored = CompressedReader(io.BytesIO(sink.getvalue())).read()
        assert restored == b"".join(f"chunk-{i:04d}|".encode() for i in range(50))

    def test_incremental_reads(self):
        payload = bytes(range(256)) * 40
        blob = compress_stream(payload, codec="gzip-ref", frame_size=100)
        reader = CompressedReader(io.BytesIO(blob))
        out = bytearray()
        while True:
            piece = reader.read(37)
            if not piece:
                break
            out += piece
        assert bytes(out) == payload

    def test_codec_name_travels_in_header(self):
        blob = compress_stream(b"x" * 100, codec="snappy")
        reader = CompressedReader(io.BytesIO(blob))
        assert reader.codec_name == "snappy"
        assert reader.read() == b"x" * 100

    def test_writer_close_is_idempotent(self):
        sink = io.BytesIO()
        writer = CompressedWriter(sink, codec="gzip-ref")
        writer.write(b"abc")
        writer.close()
        size = len(sink.getvalue())
        writer.close()
        assert len(sink.getvalue()) == size

    def test_write_after_close_rejected(self):
        writer = CompressedWriter(io.BytesIO(), codec="gzip-ref")
        writer.close()
        with pytest.raises(ValueError):
            writer.write(b"late")

    def test_invalid_frame_size(self):
        with pytest.raises(ValueError):
            CompressedWriter(io.BytesIO(), frame_size=0)

    def test_flush_mid_stream(self):
        sink = io.BytesIO()
        writer = CompressedWriter(sink, codec="gzip-ref", frame_size=10_000)
        writer.write(b"early")
        writer.flush()
        after_flush = len(sink.getvalue())
        writer.write(b"later")
        writer.close()
        assert after_flush > 9  # header + one frame already emitted
        restored = CompressedReader(io.BytesIO(sink.getvalue())).read()
        assert restored == b"earlylater"


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(CorruptStreamError):
            CompressedReader(io.BytesIO(b"XXXX rest"))

    def test_truncated_payload(self):
        blob = compress_stream(b"payload " * 100, codec="gzip-ref")
        with pytest.raises(CorruptStreamError):
            CompressedReader(io.BytesIO(blob[: len(blob) - 8])).read()

    def test_missing_terminator_detected(self):
        blob = compress_stream(b"data" * 50, codec="gzip-ref")
        # Chop the final empty frame (two zero bytes).
        with pytest.raises(CorruptStreamError):
            CompressedReader(io.BytesIO(blob[:-2])).read()

    def test_truncated_header(self):
        with pytest.raises(CorruptStreamError):
            CompressedReader(io.BytesIO(b"SPF1"))


@pytest.mark.parametrize("codec", ["gzip", "snappy", "zstd", "gzip-ref"])
class TestAcrossCodecs:
    def test_round_trip(self, codec):
        payload = b"telco|stream|data|" * 300
        blob = compress_stream(payload, codec=codec, frame_size=512)
        assert decompress_stream(blob) == payload


class TestProperties:
    @given(st.binary(max_size=5000), st.integers(1, 777))
    @settings(max_examples=30, deadline=None)
    def test_property_round_trip_any_frame_size(self, payload, frame_size):
        blob = compress_stream(payload, codec="gzip-ref", frame_size=frame_size)
        assert decompress_stream(blob) == payload

    @given(st.lists(st.binary(max_size=400), max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_write_boundaries_irrelevant(self, chunks):
        sink = io.BytesIO()
        with CompressedWriter(sink, codec="gzip-ref", frame_size=128) as writer:
            for chunk in chunks:
                writer.write(chunk)
        assert decompress_stream(sink.getvalue()) == b"".join(chunks)
