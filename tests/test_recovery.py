"""Metadata durability: WAL, checkpoints, and crash recovery.

The acceptance bar (ISSUE: durable warehouse metadata): a seeded run
killed at an arbitrary epoch and reopened with ``Spate.open`` must
resume ingest at the exact frontier and return byte-identical
exploration and SQL answers versus an uninterrupted run of the same
trace.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DurabilityConfig, FaultToleranceConfig, Spate, SpateConfig
from repro.core.checkpoint import CheckpointManager, decode_index, encode_index
from repro.dfs import FaultInjector, SimulatedDFS
from repro.errors import QueryError, RecoveryError
from repro.index.wal import IndexWal, WalRecord
from repro.query.sql import Database
from repro.telco import TelcoTraceGenerator, TraceConfig

TRACE = TraceConfig(scale=0.002, days=1, seed=99)
EPOCHS = 48


def durable_config(sync: str = "always", interval: int = 16, **kwargs) -> SpateConfig:
    return SpateConfig(
        durability=DurabilityConfig(
            enabled=True, wal_sync=sync, checkpoint_interval_epochs=interval
        ),
        **kwargs,
    )


@pytest.fixture(scope="module")
def trace():
    generator = TelcoTraceGenerator(TRACE)
    cells = generator.cells_table()
    return cells, [generator.snapshot(epoch) for epoch in range(EPOCHS)]


@pytest.fixture(scope="module")
def truth(trace):
    """The uninterrupted ground-truth run."""
    cells, snapshots = trace
    spate = Spate(durable_config())
    spate.register_cells(cells)
    for snapshot in snapshots:
        spate.ingest(snapshot)
    spate.finalize()
    return spate


def build_until(config, trace, kill_at):
    """Ingest the trace up to (not including) ``kill_at``; return the DFS
    that survives the crash."""
    cells, snapshots = trace
    spate = Spate(config)
    dfs = spate.dfs
    spate.register_cells(cells)
    for snapshot in snapshots[:kill_at]:
        spate.ingest(snapshot)
    return dfs


def resume(spate, trace):
    cells, snapshots = trace
    for snapshot in snapshots:
        if snapshot.epoch > spate.index.frontier_epoch:
            spate.ingest(snapshot)
    spate.finalize()
    return spate


def _corrupt_every_replica(dfs, path):
    """Damage every replica of every block of ``path``."""
    for block_id in dfs.namenode.lookup(path).blocks:
        for node_id in list(dfs.namenode.locations(block_id)):
            dfs.datanodes[node_id].corrupt_block(block_id)


class TestWalRecord:
    def test_round_trip_preserves_data_and_key_order(self):
        data = {"zeta": 1, "alpha": {"b": 2, "a": 3}}
        record = WalRecord(seq=7, type="ingest", data=data)
        back = WalRecord.decode(record.encode())
        assert back == record
        # Insertion order matters downstream (highlight detection walks
        # summary dicts), so the round-trip must not re-sort keys.
        assert list(back.data) == ["zeta", "alpha"]
        assert list(back.data["alpha"]) == ["b", "a"]

    def test_corrupt_line_is_rejected(self):
        line = WalRecord(seq=1, type="decay", data={"epochs": [3]}).encode()
        with pytest.raises(ValueError):
            WalRecord.decode(line.replace('"epochs":[3]', '"epochs":[4]'))


class TestIndexWal:
    def test_append_and_replay_round_trip(self):
        wal = IndexWal(SimulatedDFS(), sync="always")
        for seq in range(1, 4):
            wal.append("ingest", {"epoch": seq})
        replay = wal.replay()
        assert [r.data["epoch"] for r in replay.records] == [1, 2, 3]
        assert not replay.truncated
        assert wal.segments_written == 3  # one segment per record

    def test_epoch_sync_buffers_until_flush(self):
        wal = IndexWal(SimulatedDFS(), sync="epoch")
        wal.append("ingest", {"epoch": 1})
        wal.append("decay", {"epochs": [0]})
        assert wal.pending_records == 2
        assert wal.segment_paths() == []
        wal.flush()
        assert wal.pending_records == 0
        assert len(wal.segment_paths()) == 1
        assert [r.type for r in wal.replay().records] == ["ingest", "decay"]

    def test_replay_after_seq_skips_covered_records(self):
        wal = IndexWal(SimulatedDFS(), sync="always")
        for seq in range(1, 6):
            wal.append("ingest", {"epoch": seq})
        assert [r.seq for r in wal.replay(after_seq=3).records] == [4, 5]

    def test_truncate_through_drops_covered_segments(self):
        wal = IndexWal(SimulatedDFS(), sync="always")
        for seq in range(1, 6):
            wal.append("ingest", {"epoch": seq})
        removed = wal.truncate_through(3)
        assert removed == 3
        assert [r.seq for r in wal.replay().records] == [4, 5]

    def test_replay_stops_truncated_at_unreadable_segment(self):
        dfs = SimulatedDFS()
        wal = IndexWal(dfs, sync="always")
        for seq in range(1, 4):
            wal.append("ingest", {"epoch": seq})
        _corrupt_every_replica(dfs, wal.segment_paths()[1])
        replay = wal.replay()
        assert replay.truncated
        assert "unreadable" in replay.truncation_reason
        # Only the prefix before the damage is trustworthy.
        assert [r.seq for r in replay.records] == [1]


class TestCheckpointManager:
    def test_write_and_load_round_trip(self):
        manager = CheckpointManager(SimulatedDFS())
        info = manager.write({"cells": {"c1": [1.0, 2.0]}}, wal_seq=9)
        assert info.version == 1
        state, loaded = manager.load_latest()
        assert state == {"cells": {"c1": [1.0, 2.0]}}
        assert (loaded.version, loaded.wal_seq) == (1, 9)

    def test_versions_increment_and_old_artifacts_are_collected(self):
        dfs = SimulatedDFS()
        manager = CheckpointManager(dfs)
        manager.write({"v": 1}, wal_seq=1)
        info = manager.write({"v": 2}, wal_seq=5)
        assert info.version == 2
        names = {p.rsplit("/", 1)[-1] for p in dfs.list_dir("/spate/meta")}
        assert names == {"manifest-00000002", "checkpoint-00000002.ckpt"}
        state, __ = manager.load_latest()
        assert state == {"v": 2}

    def test_uncommitted_checkpoint_is_invisible(self):
        """A crash between the checkpoint write and its manifest write
        must leave the previous version current."""
        dfs = SimulatedDFS()
        manager = CheckpointManager(dfs)
        manager.write({"v": 1}, wal_seq=1)
        # Simulate the crash window: checkpoint file exists, manifest
        # (the commit point) was never written.
        dfs.write_file("/spate/meta/checkpoint-00000002.ckpt", b"torn", replication=3)
        state, info = manager.load_latest()
        assert (state, info.version) == ({"v": 1}, 1)

    def test_damaged_head_checkpoint_falls_back_to_none(self):
        dfs = SimulatedDFS()
        manager = CheckpointManager(dfs)
        info = manager.write({"v": 1}, wal_seq=1)
        _corrupt_every_replica(dfs, info.path)
        assert manager.load_latest() is None


class TestIndexCodec:
    def test_encode_decode_round_trip(self, spate_day):
        encoded = encode_index(spate_day.index)
        assert encode_index(decode_index(encoded)) == encoded


class TestFinalizeGuards:
    def test_double_finalize_is_rejected(self, trace):
        cells, snapshots = trace
        spate = Spate(SpateConfig())
        spate.register_cells(cells)
        spate.ingest(snapshots[0])
        spate.finalize()
        assert spate.finalized
        with pytest.raises(QueryError):
            spate.finalize()

    def test_ingest_after_finalize_is_rejected(self, trace):
        cells, snapshots = trace
        spate = Spate(SpateConfig())
        spate.register_cells(cells)
        spate.ingest(snapshots[0])
        spate.finalize()
        with pytest.raises(QueryError):
            spate.ingest(snapshots[1])

    def test_finalized_flag_survives_the_crash(self, trace):
        """finalize() is WAL-logged: a reopened warehouse stays closed."""
        cells, snapshots = trace
        spate = Spate(durable_config())
        dfs = spate.dfs
        spate.register_cells(cells)
        for snapshot in snapshots[:3]:
            spate.ingest(snapshot)
        spate.finalize()
        del spate
        reopened = Spate.open(durable_config(), dfs=dfs)
        assert reopened.finalized
        with pytest.raises(QueryError):
            reopened.ingest(snapshots[3])


class TestInjectorCycleCounters:
    def test_snapshot_and_delta_isolate_one_cycle(self):
        injector = FaultInjector(seed=3, corruption_rate=1.0)
        dfs = SimulatedDFS(fault_injector=injector)
        dfs.write_file("/a", b"x" * 64, replication=2)
        baseline = injector.snapshot()
        first_cycle = injector.delta_since(baseline)
        assert all(count == 0 for count in first_cycle.values())
        dfs.write_file("/b", b"y" * 64, replication=2)
        delta = injector.delta_since(baseline)
        # Cumulative counters keep growing; the delta sees only the
        # second write's injections.
        assert delta["corruptions"] == injector.corruptions_injected - baseline["corruptions"]
        assert delta["corruptions"] > 0


class TestRecovery:
    def test_open_without_durability_refuses(self):
        with pytest.raises(RecoveryError):
            Spate.open(SpateConfig())

    def test_recovery_resumes_at_exact_frontier(self, trace):
        kill_at = 20
        dfs = build_until(durable_config(), trace, kill_at)
        spate = Spate.open(durable_config(), dfs=dfs)
        report = spate.last_recovery_report
        assert spate.index.frontier_epoch == kill_at - 1
        assert report.frontier_epoch == kill_at - 1
        assert report.checkpoint_version >= 1
        assert report.wal_records_replayed > 0
        assert report.fsck_healthy
        assert spate.metrics.recoveries == 1

    def test_orphan_files_are_removed(self, trace):
        kill_at = 5
        dfs = build_until(durable_config(), trace, kill_at)
        # An epoch whose data landed but whose WAL record never became
        # durable: its files are orphans the recovery pass must delete.
        orphan = "/spate/snapshots/epoch-00000099/CDR.gzip-ref"
        dfs.write_file(orphan, b"never indexed", replication=3)
        spate = Spate.open(durable_config(), dfs=dfs)
        assert spate.last_recovery_report.orphan_files_removed == 1
        assert not dfs.exists(orphan)

    def test_corrupt_wal_tail_truncates_and_still_recovers(self, trace):
        kill_at = 12
        config = durable_config(interval=100)  # no checkpoint after cells
        dfs = build_until(config, trace, kill_at)
        wal_segments = IndexWal(dfs).segment_paths()
        _corrupt_every_replica(dfs, wal_segments[-1])
        spate = Spate.open(config, dfs=dfs)
        report = spate.last_recovery_report
        assert report.wal_truncated
        # The lost tail record was the last ingest; the warehouse lands
        # one epoch short and its files are swept as orphans.
        assert spate.index.frontier_epoch == kill_at - 2
        assert report.orphan_files_removed > 0
        # The old log is gone; the stream resumes without collisions.
        resume(spate, trace)
        assert spate.index.frontier_epoch == EPOCHS - 1

    def test_recovered_warehouse_matches_truth_with_decay(self, trace):
        """Decay state (evicted leaves, nulled summaries) is replayed."""
        from repro.core import DecayPolicyConfig

        def config():
            return SpateConfig(
                durability=DurabilityConfig(enabled=True, checkpoint_interval_epochs=8),
                decay=DecayPolicyConfig(enabled=True, keep_epochs=16),
            )

        cells, snapshots = trace
        truth = Spate(config())
        truth.register_cells(cells)
        for snapshot in snapshots:
            truth.ingest(snapshot)
        truth.finalize()

        dfs = build_until(config(), trace, 30)
        spate = resume(Spate.open(config(), dfs=dfs), trace)
        assert encode_index(spate.index) == encode_index(truth.index)


class TestWeekScaleAcceptance:
    """The ISSUE acceptance bar, verbatim: a seeded week-scale run
    killed at an arbitrary epoch and reopened with ``Spate.open``
    resumes ingest and returns byte-identical explore/SQL results to an
    uninterrupted run."""

    def test_week_kill_and_recover_matches_uninterrupted(self):
        week = TraceConfig(scale=0.0005, days=7, seed=2017)
        generator = TelcoTraceGenerator(week)
        cells = generator.cells_table()
        snapshots = list(generator.generate())
        kill_at = 201  # mid-week, mid-day — an arbitrary epoch
        config = durable_config(sync="epoch", interval=32)

        truth = Spate(config)
        truth.register_cells(cells)
        for snapshot in snapshots:
            truth.ingest(snapshot)
        truth.finalize()

        crashed = Spate(durable_config(sync="epoch", interval=32))
        dfs = crashed.dfs
        crashed.register_cells(cells)
        for snapshot in snapshots[:kill_at]:
            crashed.ingest(snapshot)
        del crashed

        spate = Spate.open(durable_config(sync="epoch", interval=32), dfs=dfs)
        assert spate.index.frontier_epoch == kill_at - 1
        for snapshot in snapshots[kill_at:]:
            spate.ingest(snapshot)
        spate.finalize()

        assert encode_index(spate.index) == encode_index(truth.index)
        last = truth.index.frontier_epoch
        left = truth.explore("CDR", ("downflux", "upflux"), None, 0, last)
        right = spate.explore("CDR", ("downflux", "upflux"), None, 0, last)
        assert left.records == right.records
        assert [h.to_dict() for h in left.highlights] == [
            h.to_dict() for h in right.highlights
        ]
        sql = "SELECT call_type, COUNT(*) AS n FROM CDR GROUP BY call_type"
        answers = []
        for warehouse in (truth, spate):
            db = Database()
            db.register_framework(warehouse, ["CDR"], 190, 210)
            result = db.execute(sql)
            answers.append((result.columns, result.rows))
        assert answers[0] == answers[1]


class TestKillRecoverProperty:
    """Satellite 3: kill at a random epoch under seeded faults; the
    recovered warehouse must equal ground truth byte for byte."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(kill_at=st.integers(min_value=1, max_value=EPOCHS - 1))
    def test_recovered_equals_truth(self, trace, truth, kill_at):
        faulty = durable_config(
            faults=FaultToleranceConfig(
                enabled=True, seed=kill_at, corruption_rate=0.05
            ),
        )
        dfs = build_until(faulty, trace, kill_at)
        spate = Spate.open(faulty, dfs=dfs)
        assert spate.index.frontier_epoch == kill_at - 1
        resume(spate, trace)

        assert encode_index(spate.index) == encode_index(truth.index)

        left = truth.explore("CDR", ("downflux", "upflux"), None, 0, EPOCHS - 1)
        right = spate.explore("CDR", ("downflux", "upflux"), None, 0, EPOCHS - 1)
        assert left.records == right.records
        assert [h.to_dict() for h in left.highlights] == [
            h.to_dict() for h in right.highlights
        ]

        sql = (
            "SELECT call_type, COUNT(*) AS n FROM CDR "
            "GROUP BY call_type ORDER BY call_type"
        )
        answers = []
        for warehouse in (truth, spate):
            db = Database()
            db.register_framework(warehouse, ["CDR"], 0, 9)
            result = db.execute(sql)
            answers.append((result.columns, result.rows))
        assert answers[0] == answers[1]
