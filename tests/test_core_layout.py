"""Tests for physical table layouts (row vs columnar)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import get_codec
from repro.core.layout import (
    COLUMNAR_LAYOUT,
    LAYOUTS,
    ROW_LAYOUT,
    deserialize_table,
    serialize_table,
    validate_layout,
)
from repro.core.snapshot import Table
from repro.errors import ConfigError, CorruptStreamError

cell_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=10
)


def make_table(rows=None) -> Table:
    rows = rows if rows is not None else [
        ["a", "1", "voice"],
        ["a", "2", "voice"],
        ["b", "3", "sms"],
        ["", "-7", "voice"],
    ]
    return Table(name="T", columns=["k", "n", "t"], rows=rows)


class TestLayouts:
    def test_validate(self):
        assert validate_layout("row") == "row"
        assert validate_layout("columnar") == "columnar"
        with pytest.raises(ConfigError):
            validate_layout("diagonal")

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_round_trip(self, layout):
        table = make_table()
        restored = deserialize_table("T", serialize_table(table, layout), layout)
        assert restored.columns == table.columns
        assert restored.rows == table.rows

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_empty_table_round_trip(self, layout):
        table = make_table(rows=[])
        restored = deserialize_table("T", serialize_table(table, layout), layout)
        assert restored.rows == []
        assert restored.columns == table.columns

    def test_row_layout_is_the_text_format(self):
        table = make_table()
        assert serialize_table(table, ROW_LAYOUT) == table.serialize()

    def test_columnar_magic_validated(self):
        with pytest.raises(CorruptStreamError):
            deserialize_table("T", b"NOPE...", COLUMNAR_LAYOUT)

    def test_columnar_denser_after_compression(self):
        # A wide low-entropy table mirrors the CDR schema.
        rows = [
            ["OK", str(i % 4), "GSM", "", "v1", str(1000 + i)]
            for i in range(500)
        ]
        table = Table(
            name="W",
            columns=["result", "code", "tech", "opt", "ver", "seq"],
            rows=rows,
        )
        codec = get_codec("gzip-ref")
        row_size = len(codec.compress(serialize_table(table, ROW_LAYOUT)))
        col_size = len(codec.compress(serialize_table(table, COLUMNAR_LAYOUT)))
        assert col_size < row_size

    @given(st.lists(st.lists(cell_text, min_size=2, max_size=2), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_property_columnar_round_trip(self, rows):
        table = Table(name="P", columns=["a", "b"], rows=rows)
        blob = serialize_table(table, COLUMNAR_LAYOUT)
        restored = deserialize_table("P", blob, COLUMNAR_LAYOUT)
        assert restored.rows == rows


class TestSpateWithColumnarLayout:
    def test_end_to_end(self):
        from repro.core import Spate, SpateConfig
        from repro.telco import TelcoTraceGenerator, TraceConfig

        generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=53))
        spate = Spate(SpateConfig(codec="gzip-ref", layout="columnar"))
        spate.register_cells(generator.cells_table())
        snapshots = [generator.snapshot(e) for e in range(4)]
        for snapshot in snapshots:
            spate.ingest(snapshot)
        spate.finalize()
        restored = spate.read_snapshot(2)
        assert restored.tables["CDR"].rows == snapshots[2].tables["CDR"].rows

    def test_columnar_layout_saves_space(self):
        from repro.core import Spate, SpateConfig
        from repro.telco import TelcoTraceGenerator, TraceConfig

        def total_bytes(layout: str) -> int:
            generator = TelcoTraceGenerator(
                TraceConfig(scale=0.02, days=1, seed=53)
            )
            spate = Spate(SpateConfig(codec="gzip-ref", layout=layout))
            spate.register_cells(generator.cells_table())
            # Busy daytime epochs: columnar's per-column headers amortize
            # only once snapshots carry enough rows (tiny night snapshots
            # can favour the row layout).
            for epoch in range(20, 24):
                spate.ingest(generator.snapshot(epoch))
            return spate.storage_stats().logical_bytes

        assert total_bytes("columnar") < total_bytes("row")

    def test_invalid_layout_rejected_in_config(self):
        from repro.core import SpateConfig

        with pytest.raises(ConfigError):
            SpateConfig(layout="zigzag")
