"""Tests for the k-anonymity privacy substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnonymityUnsatisfiableError, PrivacyError
from repro.privacy import (
    default_cdr_hierarchies,
    discernibility_metric,
    equivalence_classes,
    full_domain_anonymize,
    generalization_information_loss,
    is_k_anonymous,
    mondrian_anonymize,
)
from repro.privacy.hierarchy import (
    SUPPRESSED,
    IntervalHierarchy,
    PrefixHierarchy,
    ValueMapHierarchy,
)
from repro.privacy.metrics import suppression_ratio


class TestHierarchies:
    def test_value_map_levels(self):
        h = ValueMapHierarchy(levels=[{"a": "letter", "b": "letter"}], name="t")
        assert h.generalize("a", 0) == "a"
        assert h.generalize("a", 1) == "letter"
        assert h.generalize("a", 2) == SUPPRESSED

    def test_value_map_unknown_value_suppressed(self):
        h = ValueMapHierarchy(levels=[{"a": "x"}], name="t")
        assert h.generalize("unknown", 1) == SUPPRESSED

    def test_value_map_invalid_level(self):
        h = ValueMapHierarchy(levels=[{}], name="t")
        with pytest.raises(ValueError):
            h.generalize("a", 99)

    def test_interval_hierarchy(self):
        h = IntervalHierarchy(base_width=10, factor=5, levels=2)
        assert h.generalize("37", 0) == "37"
        assert h.generalize("37", 1) == "[30-40)"
        assert h.generalize("37", 2) == "[0-50)"
        assert h.generalize("37", 3) == SUPPRESSED

    def test_interval_non_numeric_suppressed(self):
        h = IntervalHierarchy()
        assert h.generalize("abc", 1) == SUPPRESSED

    def test_interval_invalid_params(self):
        with pytest.raises(ValueError):
            IntervalHierarchy(base_width=0)

    def test_prefix_hierarchy(self):
        h = PrefixHierarchy(chop_per_level=2, levels=2)
        assert h.generalize("C01234", 1) == "C012**"
        assert h.generalize("C01234", 2) == "C0****"
        assert h.generalize("C01234", 3) == SUPPRESSED

    def test_prefix_short_value_fully_suppressed(self):
        h = PrefixHierarchy(chop_per_level=4, levels=2)
        assert h.generalize("ab", 1) == SUPPRESSED

    def test_default_cdr_hierarchies_cover_quasi_identifiers(self):
        from repro.telco.schema import CDR_QUASI_IDENTIFIERS

        hierarchies = default_cdr_hierarchies()
        assert set(CDR_QUASI_IDENTIFIERS) <= set(hierarchies)


def toy_table(n: int = 60):
    columns = ["cell_id", "plan_type", "tech", "call_type", "payload"]
    rows = []
    for i in range(n):
        rows.append([
            f"C{i % 4:04d}",
            ["prepaid", "postpaid", "business", "iot"][i % 4],
            ["2G", "3G", "4G"][i % 3],
            ["voice", "sms", "data"][i % 3],
            str(i),
        ])
    return columns, rows


class TestFullDomain:
    QUASI = ["cell_id", "plan_type", "tech", "call_type"]

    def test_result_is_k_anonymous(self):
        columns, rows = toy_table()
        result = full_domain_anonymize(
            rows, columns, self.QUASI, default_cdr_hierarchies(), k=5
        )
        idx = [columns.index(q) for q in self.QUASI]
        assert is_k_anonymous(result.rows, idx, 5)

    def test_non_quasi_columns_untouched(self):
        columns, rows = toy_table()
        result = full_domain_anonymize(
            rows, columns, self.QUASI, default_cdr_hierarchies(), k=3
        )
        payload_idx = columns.index("payload")
        released_payloads = {r[payload_idx] for r in result.rows}
        original_payloads = {r[payload_idx] for r in rows}
        assert released_payloads <= original_payloads

    def test_k_one_returns_data_unchanged(self):
        columns, rows = toy_table()
        result = full_domain_anonymize(
            rows, columns, self.QUASI, default_cdr_hierarchies(), k=1
        )
        assert result.rows == rows
        assert all(level == 0 for level in result.levels.values())

    def test_higher_k_needs_at_least_as_much_generalization(self):
        columns, rows = toy_table()
        low = full_domain_anonymize(
            rows, columns, self.QUASI, default_cdr_hierarchies(), k=2
        )
        high = full_domain_anonymize(
            rows, columns, self.QUASI, default_cdr_hierarchies(), k=15
        )
        assert sum(high.levels.values()) >= sum(low.levels.values())

    def test_unsatisfiable_raises(self):
        columns = ["cell_id", "x"]
        rows = [["C0001", "1"]]
        with pytest.raises(AnonymityUnsatisfiableError):
            full_domain_anonymize(
                rows, columns, ["cell_id"], default_cdr_hierarchies(),
                k=5, max_suppression=0.0,
            )

    def test_unknown_quasi_column_raises(self):
        columns, rows = toy_table()
        with pytest.raises(PrivacyError):
            full_domain_anonymize(
                rows, columns, ["ghost"], default_cdr_hierarchies(), k=2
            )

    def test_invalid_k_raises(self):
        columns, rows = toy_table()
        with pytest.raises(PrivacyError):
            full_domain_anonymize(
                rows, columns, self.QUASI, default_cdr_hierarchies(), k=0
            )

    def test_empty_input(self):
        columns, __ = toy_table()
        result = full_domain_anonymize(
            [], columns, self.QUASI, default_cdr_hierarchies(), k=5
        )
        assert result.rows == []

    def test_suppression_budget_respected(self):
        columns, rows = toy_table(40)
        rows.append(["CXXXX", "prepaid", "2G", "voice", "odd"])  # unique row
        result = full_domain_anonymize(
            rows, columns, self.QUASI, default_cdr_hierarchies(),
            k=2, max_suppression=0.10,
        )
        assert result.suppressed_rows <= len(rows) * 0.10

    @given(st.integers(2, 8), st.integers(30, 120))
    @settings(max_examples=20, deadline=None)
    def test_property_always_k_anonymous(self, k, n):
        columns, rows = toy_table(n)
        try:
            result = full_domain_anonymize(
                rows, columns, self.QUASI, default_cdr_hierarchies(), k=k
            )
        except AnonymityUnsatisfiableError:
            return
        idx = [columns.index(q) for q in self.QUASI]
        assert is_k_anonymous(result.rows, idx, k)


class TestMondrian:
    def test_partitions_have_k_rows(self):
        columns = ["a", "b"]
        rows = [[str(i), str(100 - i)] for i in range(57)]
        result = mondrian_anonymize(rows, columns, ["a", "b"], k=5)
        idx = [0, 1]
        classes = equivalence_classes(result.rows, idx)
        assert min(classes.values()) >= 5
        assert result.released_rows == 57

    def test_too_few_rows_raises(self):
        with pytest.raises(AnonymityUnsatisfiableError):
            mondrian_anonymize([["1"]], ["a"], ["a"], k=5)

    def test_range_recoding_format(self):
        columns = ["v"]
        rows = [[str(i)] for i in range(10)]
        result = mondrian_anonymize(rows, columns, ["v"], k=5)
        values = {r[0] for r in result.rows}
        assert all("-" in v or v.isdigit() for v in values)

    def test_identical_values_stay_exact(self):
        rows = [["7"]] * 10
        result = mondrian_anonymize(rows, ["v"], ["v"], k=3)
        assert {r[0] for r in result.rows} == {"7"}

    @given(st.lists(st.integers(0, 1000), min_size=10, max_size=150),
           st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_property_classes_at_least_k(self, values, k):
        columns = ["v"]
        rows = [[str(v)] for v in values]
        result = mondrian_anonymize(rows, columns, ["v"], k=k)
        classes = equivalence_classes(result.rows, [0])
        assert min(classes.values()) >= k
        assert result.released_rows == len(rows)


class TestMetrics:
    def test_equivalence_classes(self):
        rows = [["a", "1"], ["a", "2"], ["b", "3"]]
        classes = equivalence_classes(rows, [0])
        assert classes == {("a",): 2, ("b",): 1}

    def test_discernibility(self):
        rows = [["a"], ["a"], ["b"]]
        assert discernibility_metric(rows, [0]) == 4 + 1

    def test_information_loss_bounds(self):
        hierarchies = default_cdr_hierarchies()
        zero = generalization_information_loss(
            {name: 0 for name in hierarchies}, hierarchies
        )
        full = generalization_information_loss(
            {name: h.height for name, h in hierarchies.items()}, hierarchies
        )
        assert zero == 0.0
        assert full == 1.0

    def test_information_loss_skips_mondrian_sentinel(self):
        hierarchies = default_cdr_hierarchies()
        assert generalization_information_loss(
            {"cell_id": -1}, hierarchies
        ) == 0.0

    def test_suppression_ratio(self):
        assert suppression_ratio(90, 10) == pytest.approx(0.1)
        assert suppression_ratio(0, 0) == 0.0

    def test_is_k_anonymous_empty(self):
        assert is_k_anonymous([], [0], 5)
