"""Leaf-scan machinery: ScanStats accounting and zone-map pruning.

Two halves:

- :class:`~repro.query.leafscan.ScanStats` merge arithmetic must be
  exact and honest — folded backends are never silently overwritten,
  and a zero-wall scan reports no speedup rather than a fabricated
  1.0x;
- :func:`~repro.query.leafscan.zone_map_prunes` may only skip a leaf
  when its zone maps *disprove* a predicate under the executor's exact
  value semantics — verified both on hand-built cases and by property:
  whenever the gate prunes, no decoded row passes the predicate.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import get_codec
from repro.core.layout import serialize_table
from repro.core.snapshot import Table
from repro.query.leafscan import (
    ScanContext,
    ScanStats,
    decode_leaf_task,
    task_is_projected,
    zone_map_prunes,
)
from repro.query.sql.planner import ScanPredicate
from repro.query.sql.values import predicate_passes


class TestScanStatsMerge:
    def _stats(self, **kwargs) -> ScanStats:
        stats = ScanStats()
        for key, value in kwargs.items():
            setattr(stats, key, value)
        return stats

    def test_counter_arithmetic(self):
        a = self._stats(
            leaves_scanned=3, leaves_pruned=2, leaves_zone_pruned=1,
            cache_hits=1, bytes_decompressed=100, channels_decoded=4,
            channel_bytes_skipped=50, wall_seconds=0.5, task_seconds=1.0,
        )
        b = self._stats(
            leaves_scanned=5, leaves_pruned=0, leaves_zone_pruned=7,
            cache_hits=2, bytes_decompressed=900, channels_decoded=6,
            channel_bytes_skipped=450, wall_seconds=0.25, task_seconds=0.5,
        )
        a.merge(b)
        assert a.leaves_scanned == 8
        assert a.leaves_pruned == 2
        assert a.leaves_zone_pruned == 8
        assert a.cache_hits == 3
        assert a.bytes_decompressed == 1000
        assert a.channels_decoded == 10
        assert a.channel_bytes_skipped == 500
        assert a.wall_seconds == pytest.approx(0.75)
        assert a.task_seconds == pytest.approx(1.5)

    def test_merge_keeps_single_backend(self):
        a = self._stats(backend="thread")
        a.merge(self._stats(backend="thread"))
        assert a.backend == "thread"

    def test_merge_empty_backend_is_neutral(self):
        a = self._stats(backend="")
        a.merge(self._stats(backend="process"))
        assert a.backend == "process"
        a.merge(self._stats(backend=""))
        assert a.backend == "process"

    def test_merge_differing_backends_become_mixed(self):
        a = self._stats(backend="thread")
        a.merge(self._stats(backend="process"))
        assert a.backend == "mixed"
        # mixed is sticky: further folds never un-mix it.
        a.merge(self._stats(backend="thread"))
        assert a.backend == "mixed"

    def test_on_run_folds_backend_the_same_way(self):
        class Run:
            wall_seconds = 0.1
            task_seconds = 0.2
            backend = "process"

        a = self._stats(backend="thread", wall_seconds=0.4, task_seconds=0.4)
        a.on_run(Run())
        assert a.backend == "mixed"
        assert a.wall_seconds == pytest.approx(0.5)
        assert a.task_seconds == pytest.approx(0.6)

    def test_prune_rate_counts_zone_pruned_leaves(self):
        stats = self._stats(
            leaves_scanned=2, leaves_pruned=1, leaves_zone_pruned=5
        )
        assert stats.prune_rate == pytest.approx(6 / 8)

    def test_zero_wall_speedup_is_zero_not_one(self):
        stats = self._stats(task_seconds=1.0)
        assert stats.wall_seconds == 0.0
        assert stats.speedup == 0.0
        assert "speedup n/a" in stats.describe()

    def test_describe_shows_zone_counters_only_when_present(self):
        quiet = ScanStats()
        assert "zone-pruned" not in quiet.describe()
        assert "channels decoded" not in quiet.describe()
        loud = self._stats(
            leaves_zone_pruned=3, channels_decoded=2, channel_bytes_skipped=10
        )
        described = loud.describe()
        assert "3 zone-pruned" in described
        assert "2 channels decoded" in described
        assert "10 channel bytes skipped" in described


def typed_task(table: Table, layout: str = "columnar", columns=None):
    codec = get_codec("typedchannel")
    blob = codec.compress(serialize_table(table, layout))
    return ("typedchannel", None, layout, table.name, blob, columns)


def duration_table(values, extra_col=None) -> Table:
    columns = ["cell_id", "duration_s"]
    rows = [[f"c{i % 3}", v] for i, v in enumerate(values)]
    if extra_col is not None:
        columns.append("note")
        for row in rows:
            row.append(extra_col)
    return Table(name="CDR", columns=columns, rows=rows)


class TestZoneMapPrunes:
    def test_non_typedchannel_tasks_never_prune(self):
        task = ("gzip-ref", None, "row", "CDR", b"whatever", None)
        assert zone_map_prunes(
            task, [ScanPredicate("duration_s", "=", 1)]
        ) == (False, 0)

    def test_raw_mode_blob_never_prunes(self):
        codec = get_codec("typedchannel")
        task = ("typedchannel", None, "row", "CDR",
                codec.compress(b"not a table"), None)
        assert zone_map_prunes(
            task, [ScanPredicate("duration_s", "=", 1)]
        ) == (False, 0)

    def test_corrupt_blob_never_prunes_here(self):
        task = ("typedchannel", None, "row", "CDR", b"garbage", None)
        assert zone_map_prunes(
            task, [ScanPredicate("duration_s", "=", 1)]
        ) == (False, 0)

    def test_bounds_disprove_range_predicates(self):
        task = typed_task(duration_table(["10", "20", "30"]))
        for op, value, pruned in [
            (">", 30, True), (">", 29, False),
            (">=", 31, True), (">=", 30, False),
            ("<", 10, True), ("<", 11, False),
            ("<=", 9, True), ("<=", 10, False),
            ("=", 35, True),
            # Inside the bounds but absent from the (complete) distinct
            # set: the exact path disproves where bounds alone couldn't.
            ("=", 25, True), ("=", 20, False),
        ]:
            got, skipped = zone_map_prunes(
                task, [ScanPredicate("duration_s", op, value)]
            )
            assert got is pruned, (op, value)
            assert (skipped > 0) is pruned

    def test_distinct_set_disproves_string_equality(self):
        task = typed_task(duration_table(["10", "20"]))
        got, skipped = zone_map_prunes(
            task, [ScanPredicate("cell_id", "=", "c9")]
        )
        assert got and skipped > 0
        assert zone_map_prunes(
            task, [ScanPredicate("cell_id", "=", "c1")]
        ) == (False, 0)

    def test_unsupported_operator_never_prunes(self):
        task = typed_task(duration_table(["10", "20"]))
        assert zone_map_prunes(
            task, [ScanPredicate("duration_s", "!=", 99)]
        ) == (False, 0)

    def test_unknown_column_never_prunes(self):
        task = typed_task(duration_table(["10", "20"]))
        assert zone_map_prunes(
            task, [ScanPredicate("ghost", "=", 1)]
        ) == (False, 0)

    def test_mixed_type_channel_ignores_numeric_bounds(self):
        # One non-integer cell means the executor string-compares it;
        # the int bounds say nothing about string order, so no prune.
        # (The complete distinct set must be suppressed to exercise the
        # bounds path — use > DISTINCT_CAP distinct values.)
        from repro.compression.typedchannel import DISTINCT_CAP

        values = [str(i) for i in range(DISTINCT_CAP + 1)] + ["abc"]
        task = typed_task(duration_table(values))
        header_max = max(int(v) for v in values[:-1])
        assert zone_map_prunes(
            task, [ScanPredicate("duration_s", ">", header_max)]
        ) == (False, 0)

    def test_all_int_high_cardinality_uses_bounds(self):
        from repro.compression.typedchannel import DISTINCT_CAP

        values = [str(i) for i in range(DISTINCT_CAP + 1)]
        task = typed_task(duration_table(values))
        got, skipped = zone_map_prunes(
            task, [ScanPredicate("duration_s", ">", DISTINCT_CAP)]
        )
        assert got and skipped > 0

    def test_empty_leaf_is_not_bounds_pruned(self):
        # A zero-row leaf has degenerate (0, 0) bounds that describe
        # nothing; decoding it is cheap and provably harmless.
        task = typed_task(duration_table([]))
        header_side = zone_map_prunes(
            task, [ScanPredicate("duration_s", ">", 100)]
        )
        # The empty distinct set *does* disprove exactly: no cell can
        # pass any predicate. Either answer keeps identity; what matters
        # is no crash and no skipped-byte fabrication.
        pruned, skipped = header_side
        assert skipped >= 0

    def test_cell_filter_prunes_on_disjoint_distinct_set(self):
        task = typed_task(duration_table(["10", "20", "30"]))
        got, skipped = zone_map_prunes(
            task, cell_filter=("cell_id", {"c7", "c8"})
        )
        assert got and skipped > 0
        assert zone_map_prunes(
            task, cell_filter=("cell_id", {"c1", "c8"})
        ) == (False, 0)

    def test_cell_filter_without_distinct_set_never_prunes(self):
        from repro.compression.typedchannel import DISTINCT_CAP

        table = Table(
            name="CDR",
            columns=["cell_id"],
            rows=[[f"c{i}"] for i in range(DISTINCT_CAP + 1)],
        )
        task = typed_task(table)
        assert zone_map_prunes(
            task, cell_filter=("cell_id", {"nowhere"})
        ) == (False, 0)


class TestDecodeTaskProjection:
    def _context(self, pruning=True, codec_name="typedchannel", layout="row"):
        return ScanContext(
            executor=None,
            codec_name=codec_name,
            layout=layout,
            pruning=pruning,
            read_payload=lambda path: b"",
            cache_get=lambda epoch, table: None,
            cache_put=lambda epoch, table, loaded, nbytes: None,
        )

    def test_typedchannel_projects_wanted_columns_under_row_layout(self):
        ctx = self._context()
        task = ctx.decode_task("CDR", b"", None, wanted=("b", "a", "b"))
        assert task[5] == ("a", "b")
        assert task_is_projected(task)

    def test_non_typedchannel_ignores_wanted(self):
        ctx = self._context(codec_name="gzip-ref")
        task = ctx.decode_task("CDR", b"", None, wanted=("a",))
        assert task[5] is None
        assert not task_is_projected(task)

    def test_pruning_off_ignores_wanted(self):
        ctx = self._context(pruning=False)
        task = ctx.decode_task("CDR", b"", None, wanted=("a",))
        assert task[5] is None

    def test_explicit_projection_wins_over_wanted(self):
        ctx = self._context()
        task = ctx.decode_task("CDR", b"", ("x",), wanted=("a", "b"))
        assert task[5] == ("x",)

    def test_decode_leaf_task_reports_channel_stats(self):
        table = duration_table(["5", "15", "25"], extra_col="pad")
        task = typed_task(table, columns=("duration_s",))
        loaded, nbytes, channel_stats = decode_leaf_task(task)
        assert channel_stats is not None
        assert channel_stats.channels_decoded == 1
        assert nbytes == channel_stats.bytes_decoded
        duration = table.columns.index("duration_s")
        assert [row[duration] for row in loaded.rows] == ["5", "15", "25"]

    def test_decode_leaf_task_full_decode_has_no_skips(self):
        table = duration_table(["5", "15"])
        loaded, __, channel_stats = decode_leaf_task(typed_task(table))
        assert channel_stats.bytes_skipped == 0
        assert loaded.rows == table.rows


CELL_STRATEGY = st.one_of(
    st.integers(-1000, 1000).map(str),
    st.sampled_from(["voice", "sms", "data", "", "007", "-0", "abc"]),
    st.text(
        alphabet=st.characters(codec="utf-8", max_codepoint=0x2FF),
        max_size=6,
    ),
)

LITERAL_STRATEGY = st.one_of(
    st.integers(-1000, 1000),
    st.floats(-1000, 1000, allow_nan=False),
    st.sampled_from(["voice", "c1", "", "50"]),
)


class TestZonePruneSoundness:
    """Property: a zone-map prune is a *disproof* — whenever the gate
    skips a leaf, decoding it and running the executor's own predicate
    over every row must yield zero matches."""

    @given(
        cells=st.lists(CELL_STRATEGY, max_size=30),
        op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        value=LITERAL_STRATEGY,
        layout_seed=st.integers(0, 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_prune_implies_no_matching_row(
        self, cells, op, value, layout_seed
    ):
        layout = ("row", "columnar")[layout_seed]
        table = duration_table(cells)
        try:
            task = typed_task(table, layout=layout)
        except ValueError:
            return  # layout rejects the table (e.g. non-serializable)
        predicate = ScanPredicate("duration_s", op, value)
        pruned, skipped = zone_map_prunes(task, [predicate])
        if pruned:
            assert skipped > 0 or not cells
            duration = table.columns.index("duration_s")
            assert not any(
                predicate_passes(row[duration], op, value)
                for row in table.rows
            )

    @given(
        cells=st.lists(st.sampled_from(["c0", "c1", "c2", "far"]), max_size=20),
        wanted=st.sets(st.sampled_from(["c0", "c1", "c9", "far"]), max_size=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_cell_filter_prune_implies_no_wanted_cell(
        self, cells, wanted
    ):
        table = Table(
            name="CDR", columns=["cell_id"], rows=[[c] for c in cells]
        )
        task = typed_task(table)
        pruned, __ = zone_map_prunes(task, cell_filter=("cell_id", wanted))
        if pruned:
            assert not any(row[0] in wanted for row in table.rows)

    @given(
        n=st.integers(0, 25),
        seed=st.integers(0, 2**16),
        op=st.sampled_from(["=", "<", "<=", ">", ">="]),
        threshold=st.integers(-50, 700),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_pruned_scan_equals_full_decode(
        self, n, seed, op, threshold
    ):
        """The end-to-end identity the gate must preserve: filtering
        rows of a decoded leaf equals filtering minus pruned leaves."""
        rng = random.Random(seed)
        table = duration_table([str(rng.randrange(0, 600)) for __ in range(n)])
        task = typed_task(table)
        predicate = ScanPredicate("duration_s", op, threshold)
        matching = [
            row
            for row in decode_leaf_task(task)[0].rows
            if predicate_passes(
                row[table.columns.index("duration_s")], op, threshold
            )
        ]
        pruned, __ = zone_map_prunes(task, [predicate])
        if pruned:
            assert matching == []
