"""End-to-end integration tests across the full SPATE stack."""

import pytest

from repro.core import Spate, SpateConfig
from repro.core.config import DecayPolicyConfig, HighlightsConfig
from repro.core.snapshot import EPOCHS_PER_DAY
from repro.evaluation import build_frameworks, format_table, ingest_trace
from repro.query.sql import Database
from repro.telco import TelcoTraceGenerator, TraceConfig


class TestFullPipeline:
    def test_ingest_explore_equivalence_with_raw(self, tiny_generator, tiny_snapshots, spate_day):
        """SPATE's compressed path returns exactly the data RAW stores."""
        from repro.baselines.raw import RawFramework
        from repro.dfs import SimulatedDFS

        raw = RawFramework(SimulatedDFS())
        for snapshot in tiny_snapshots:
            raw.ingest(snapshot)
        for epoch in (0, 13, 47):
            assert (
                spate_day.read_snapshot(epoch).serialize()
                == raw.read_snapshot(epoch).serialize()
            )

    def test_storage_savings_order_of_magnitude_direction(self, tiny_snapshots, tiny_generator):
        setup = build_frameworks(tiny_generator, codec="gzip-ref", model_io=False)
        for snapshot in tiny_snapshots:
            for framework in setup.frameworks.values():
                framework.ingest(snapshot)
        spate_bytes = setup.frameworks["SPATE"].stored_logical_bytes
        raw_bytes = setup.frameworks["RAW"].stored_logical_bytes
        assert spate_bytes * 3 < raw_bytes  # compression clearly wins

    def test_replication_triples_physical_bytes(self, spate_day):
        stats = spate_day.storage_stats()
        assert stats.physical_bytes == 3 * stats.logical_bytes

    def test_sql_over_spate_matches_direct_scan(self, spate_day):
        db = Database()
        db.register_framework(spate_day, ["CDR"], 0, 10)
        sql_count = db.execute("SELECT COUNT(*) FROM CDR").rows[0][0]
        __, rows = spate_day.read_rows("CDR", 0, 10)
        assert sql_count == len(rows)

    def test_leaf_spatial_index_option(self, tiny_generator):
        config = SpateConfig(codec="gzip-ref", leaf_spatial_index=True)
        spate = Spate(config)
        spate.register_cells(tiny_generator.cells_table())
        generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=99))
        snapshot = generator.snapshot(0)
        spate.ingest(snapshot)
        tree = spate.leaf_rtree(0)
        assert tree is not None
        assert len(tree) > 0
        assert spate.leaf_rtree(999) is None

    def test_last_ingest_report_exposed(self, spate_day):
        report = spate_day.last_ingest_report
        assert report is not None
        assert report.compressed_bytes < report.raw_bytes

    def test_from_scratch_codec_full_cycle(self, tiny_generator):
        """The whole pipeline also runs on the from-scratch gzip codec."""
        spate = Spate(SpateConfig(codec="gzip"))
        spate.register_cells(tiny_generator.cells_table())
        generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=99))
        for epoch in range(3):
            spate.ingest(generator.snapshot(epoch))
        spate.finalize()
        result = spate.explore("CDR", ("downflux",), None, 0, 2)
        assert result.snapshots_read == 3


class TestDecayLifecycle:
    def test_storage_bounded_under_decay(self, tiny_generator):
        config = SpateConfig(
            codec="gzip-ref",
            decay=DecayPolicyConfig(keep_epochs=EPOCHS_PER_DAY // 2),
        )
        spate = Spate(config)
        spate.register_cells(tiny_generator.cells_table())
        generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=2, seed=99))
        sizes = []
        for snapshot in generator.generate():
            spate.ingest(snapshot)
            sizes.append(spate.storage_stats().logical_bytes)
        # Once the horizon is reached, storage stops growing linearly:
        # the last size must be close to the size at the horizon.
        assert sizes[-1] < sizes[EPOCHS_PER_DAY // 2] * 2.5

    def test_decayed_and_live_answers_are_consistent(self, tiny_generator):
        """The decayed aggregate must equal the pre-decay exact aggregate."""
        generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=99))
        snapshots = [generator.snapshot(e) for e in range(EPOCHS_PER_DAY)]

        full = Spate(SpateConfig(codec="gzip-ref"))
        full.register_cells(tiny_generator.cells_table())
        for snapshot in snapshots:
            full.ingest(snapshot)
        full.finalize()
        exact = full.explore("CDR", ("downflux",), None, 0, 47).aggregate("downflux")

        # Now re-run and force decay of everything, then query summaries.
        full.decay._config = DecayPolicyConfig(keep_epochs=1)
        full.decay._policy = type(full.decay._policy)(full.decay._config)
        full.run_decay()
        decayed = full.explore("CDR", ("downflux",), None, 0, 47).aggregate("downflux")

        assert decayed.count == exact.count
        assert decayed.total == exact.total
        assert decayed.minimum == exact.minimum
        assert decayed.maximum == exact.maximum


class TestHighlightsThetaLevels:
    def test_lower_theta_finds_fewer_highlights(self, tiny_generator):
        generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=99))
        snapshots = [generator.snapshot(e) for e in range(10)]

        def run(theta: float) -> int:
            config = SpateConfig(
                codec="gzip-ref",
                highlights=HighlightsConfig(theta_day=theta),
            )
            spate = Spate(config)
            spate.register_cells(tiny_generator.cells_table())
            for snapshot in snapshots:
                spate.ingest(snapshot)
            spate.finalize()
            return len(spate.highlights(0, 9))

        assert run(0.001) <= run(0.05) <= run(0.5)


class TestEvaluationHarness:
    def test_ingest_trace_produces_reports_for_all(self, tiny_generator, tiny_snapshots):
        setup = build_frameworks(tiny_generator, codec="gzip-ref", model_io=False)
        runs = ingest_trace(setup, snapshots=tiny_snapshots[:6])
        assert set(runs) == {"RAW", "SHAHED", "SPATE"}
        for run in runs.values():
            assert len(run.reports) == 6
            assert run.mean_ingest_seconds() > 0

    def test_day_period_buckets(self, tiny_generator, tiny_snapshots):
        setup = build_frameworks(tiny_generator, codec="gzip-ref", model_io=False)
        runs = ingest_trace(setup, snapshots=tiny_snapshots)
        periods = runs["SPATE"].by_day_period()
        assert set(periods) == {"morning", "afternoon", "evening", "night"}

    def test_weekday_buckets(self, tiny_generator, tiny_snapshots):
        setup = build_frameworks(tiny_generator, codec="gzip-ref", model_io=False)
        runs = ingest_trace(setup, snapshots=tiny_snapshots)
        weekdays = runs["RAW"].by_weekday()
        assert "Mon" in weekdays

    def test_format_table_renders(self):
        text = format_table(
            "Fig X",
            ["a", "b"],
            {"RAW": {"a": 1.0, "b": 2.0}, "SPATE": {"a": 0.5, "b": 0.7}},
            unit="sec",
        )
        assert "Fig X" in text and "RAW" in text and "sec" in text

    def test_cell_clusters_mapping(self, tiny_generator):
        setup = build_frameworks(tiny_generator, codec="gzip-ref", model_io=False)
        clusters = setup.cell_clusters()
        assert len(clusters) == len(tiny_generator.topology.cells)
