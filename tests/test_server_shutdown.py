"""Graceful server shutdown: drain in-flight work, refuse new work.

``SpateService.close()`` is a drain, not a guillotine: queries admitted
before the drain began run to completion, every already-acked ingest
batch is ingested, and only *new* requests fail fast — with the typed
``shutting_down`` error code while draining and ``closed`` once the
pools are down.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core import Spate, SpateConfig
from repro.errors import SessionClosedError, ShuttingDownError
from repro.server import QueryRequest, SpateServer
from repro.server.protocol import error_code_for
from repro.server.service import SpateService


class GatedSpate:
    """Delegating wrapper whose ``explore`` blocks on an event — a
    deterministic 'slow query' that holds the drain window open."""

    def __init__(self, spate: Spate) -> None:
        self._spate = spate
        self.gate = threading.Event()
        self.started = threading.Event()

    def __getattr__(self, name):
        return getattr(self._spate, name)

    def explore(self, *args, **kwargs):
        self.started.set()
        assert self.gate.wait(timeout=30), "gated explore never released"
        return self._spate.explore(*args, **kwargs)


@pytest.fixture()
def gated(tiny_generator, tiny_snapshots) -> GatedSpate:
    spate = Spate(SpateConfig(codec="gzip-ref"))
    spate.register_cells(tiny_generator.cells_table())
    for snapshot in tiny_snapshots[:4]:
        spate.ingest(snapshot)
    return GatedSpate(spate)


def explore_request(**overrides) -> QueryRequest:
    base = dict(
        op="explore",
        table="CDR",
        attributes=("downflux",),
        first_epoch=0,
        last_epoch=3,
    )
    base.update(overrides)
    return QueryRequest(**base)


class TestGracefulDrain:
    def test_inflight_query_finishes_and_new_ones_are_refused(self, gated):
        async def main():
            async with SpateService(gated) as service:
                loop = asyncio.get_running_loop()
                inflight = asyncio.ensure_future(
                    service.query(explore_request())
                )
                # The query is on a reader thread, parked on the gate.
                await loop.run_in_executor(None, gated.started.wait)
                closer = asyncio.ensure_future(service.close())
                await asyncio.sleep(0.05)
                assert not closer.done(), "drain must wait for in-flight"

                refused = await service.query(explore_request())
                assert (refused.ok, refused.error_code) == (
                    False, "shutting_down"
                )
                with pytest.raises(ShuttingDownError):
                    service.ingest_session()

                gated.gate.set()
                response = await inflight
                await closer

                after = await service.query(explore_request())
                assert (after.ok, after.error_code) == (False, "closed")
                return response

        response = asyncio.run(main())
        assert response.ok
        assert response.coverage["complete"] is True
        assert len(response.rows) > 0

    def test_acked_ingest_batches_complete_before_close(
        self, tiny_generator, tiny_snapshots
    ):
        spate = Spate(SpateConfig(codec="gzip-ref"))
        spate.register_cells(tiny_generator.cells_table())

        async def main():
            async with SpateService(spate) as service:
                session = service.ingest_session()
                acks = [
                    await session.append(s) for s in tiny_snapshots[:3]
                ]
                # Close without draining the session first: the acked
                # batches must still be ingested before the sentinel.
                await service.close()
                return [ack.result() for ack in acks]

        stats = asyncio.run(main())
        assert all(s is not None for s in stats)
        assert spate.ingested_epochs() == [0, 1, 2]

    def test_stream_refused_while_draining(self, gated):
        async def main():
            async with SpateService(gated) as service:
                loop = asyncio.get_running_loop()
                inflight = asyncio.ensure_future(
                    service.query(explore_request())
                )
                await loop.run_in_executor(None, gated.started.wait)
                closer = asyncio.ensure_future(service.close())
                await asyncio.sleep(0.05)

                chunks = [
                    r
                    async for r in service.stream_explore(
                        explore_request(op="explore_stream", chunk_epochs=2)
                    )
                ]
                gated.gate.set()
                await inflight
                await closer
                return chunks

        chunks = asyncio.run(main())
        assert len(chunks) == 1
        assert (chunks[0].ok, chunks[0].error_code) == (
            False, "shutting_down"
        )
        assert chunks[0].extra["final"] is True

    def test_error_code_precedence(self):
        assert error_code_for(ShuttingDownError("x")) == "shutting_down"
        assert error_code_for(SessionClosedError("x")) == "closed"

    def test_threaded_server_stop_is_graceful(self, gated):
        with SpateServer(gated) as server:
            results: list = []

            def slow_query():
                results.append(server.query(explore_request(), timeout=60))

            thread = threading.Thread(target=slow_query)
            thread.start()
            assert gated.started.wait(timeout=30)

            stopper = threading.Thread(target=server.stop)
            stopper.start()
            stopper.join(timeout=0.2)
            assert stopper.is_alive(), "stop must wait for the drain"

            gated.gate.set()
            stopper.join(timeout=60)
            assert not stopper.is_alive()
            thread.join(timeout=60)

        assert len(results) == 1
        assert results[0].ok
        assert results[0].coverage["complete"] is True
