"""Unit and property tests for the rANS entropy coder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.rans import (
    SCALE,
    RansTable,
    decode_with_table,
    encode_with_table,
    normalize_frequencies,
    rans_decode,
    rans_encode,
)
from repro.errors import CorruptStreamError


class TestNormalizeFrequencies:
    def test_sums_to_scale(self):
        freqs = normalize_frequencies({0: 3, 1: 7, 2: 90})
        assert sum(freqs.values()) == SCALE

    def test_every_present_symbol_kept(self):
        counts = {0: 1, 1: 10**9}
        freqs = normalize_frequencies(counts)
        assert freqs[0] >= 1

    def test_empty_input(self):
        assert normalize_frequencies({}) == {}

    def test_zero_counts_dropped(self):
        freqs = normalize_frequencies({0: 10, 1: 0})
        assert 1 not in freqs

    def test_single_symbol_takes_whole_scale(self):
        assert normalize_frequencies({7: 5}) == {7: SCALE}

    def test_too_many_symbols_rejected(self):
        with pytest.raises(ValueError):
            normalize_frequencies({i: 1 for i in range(SCALE + 1)})

    @given(st.dictionaries(st.integers(0, 300), st.integers(0, 10**6), min_size=1))
    @settings(max_examples=50, deadline=None)
    def test_property_sums_to_scale(self, counts):
        if not any(counts.values()):
            return
        freqs = normalize_frequencies(counts)
        assert sum(freqs.values()) == SCALE
        assert all(f >= 1 for f in freqs.values())


class TestRansRoundTrip:
    def test_simple_message(self):
        message = [0, 1, 0, 0, 2, 0, 1] * 20
        table = RansTable.from_counts({0: 100, 1: 40, 2: 20})
        encoded = rans_encode(message, table)
        assert rans_decode(encoded, table, len(message)) == message

    def test_single_symbol_stream(self):
        message = [5] * 1000
        table = RansTable.from_counts({5: 1})
        encoded = rans_encode(message, table)
        assert rans_decode(encoded, table, len(message)) == message
        # A degenerate alphabet compresses to nearly nothing.
        assert len(encoded) < 16

    def test_empty_message(self):
        table = RansTable.from_counts({0: 1})
        assert rans_decode(rans_encode([], table), table, 0) == []

    def test_short_stream_raises(self):
        table = RansTable.from_counts({0: 1})
        with pytest.raises(CorruptStreamError):
            rans_decode(b"\x01", table, 1)

    def test_skewed_distribution_beats_uniform_bytes(self):
        message = [0] * 950 + [1] * 50
        table = RansTable.from_counts({0: 950, 1: 50})
        encoded = rans_encode(message, table)
        # Entropy is ~0.29 bits/symbol; even with the 4-byte state the
        # output must be far below one byte per symbol.
        assert len(encoded) < len(message) // 4

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_property_round_trip(self, message):
        counts = {s: message.count(s) for s in set(message)}
        table = RansTable.from_counts(counts)
        encoded = rans_encode(message, table)
        assert rans_decode(encoded, table, len(message)) == message


class TestTableSerialization:
    def test_round_trip(self):
        table = RansTable.from_counts({3: 10, 7: 90, 250: 5})
        blob = table.serialize()
        restored, pos = RansTable.deserialize(blob)
        assert pos == len(blob)
        assert restored.freqs == table.freqs
        assert restored.cumulative == table.cumulative

    def test_bad_sum_rejected(self):
        from repro.compression.varint import encode_varint

        blob = encode_varint(1) + encode_varint(0) + encode_varint(123)
        with pytest.raises(CorruptStreamError):
            RansTable.deserialize(blob)


class TestSelfDescribingStream:
    def test_encode_decode_with_table(self):
        message = [1, 1, 2, 3, 1, 1, 1, 9, 1]
        blob = encode_with_table(message)
        decoded, pos = decode_with_table(blob)
        assert decoded == message
        assert pos == len(blob)

    def test_concatenated_streams(self):
        first = [0, 1, 2] * 10
        second = [9, 9, 8]
        blob = encode_with_table(first) + encode_with_table(second)
        decoded1, pos = decode_with_table(blob)
        decoded2, end = decode_with_table(blob, pos)
        assert (decoded1, decoded2) == (first, second)
        assert end == len(blob)

    def test_truncated_body_rejected(self):
        blob = encode_with_table([1, 2, 3] * 50)
        with pytest.raises(CorruptStreamError):
            decode_with_table(blob[:-3])
