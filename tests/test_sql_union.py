"""Tests for UNION / UNION ALL."""

import pytest

from repro.errors import SqlPlanError, SqlSyntaxError
from repro.query.sql import Database, parse_sql


@pytest.fixture()
def db():
    database = Database()
    database.register_table("A", ["v"], [["1"], ["2"], ["2"]])
    database.register_table("B", ["w"], [["2"], ["3"]])
    database.register_table("C", ["x", "y"], [["1", "2"]])
    return database


class TestParsing:
    def test_union_chain_recorded(self):
        stmt = parse_sql("SELECT v FROM A UNION SELECT w FROM B")
        assert len(stmt.unions) == 1
        assert stmt.unions[0][1] is False  # set semantics

    def test_union_all_flag(self):
        stmt = parse_sql("SELECT v FROM A UNION ALL SELECT w FROM B")
        assert stmt.unions[0][1] is True

    def test_trailing_order_limit_bind_to_chain(self):
        stmt = parse_sql(
            "SELECT v FROM A UNION SELECT w FROM B ORDER BY v LIMIT 2"
        )
        assert stmt.limit == 2
        assert stmt.order_by
        assert stmt.unions[0][0].limit is None

    def test_missing_second_select_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT v FROM A UNION")


class TestExecution:
    def test_union_dedups(self, db):
        result = db.execute("SELECT v FROM A UNION SELECT w FROM B")
        assert sorted(result.rows) == [["1"], ["2"], ["3"]]

    def test_union_all_keeps_duplicates(self, db):
        result = db.execute("SELECT v FROM A UNION ALL SELECT w FROM B")
        assert len(result) == 5

    def test_mixed_chain_dedups_whole(self, db):
        result = db.execute(
            "SELECT v FROM A UNION ALL SELECT w FROM B UNION SELECT v FROM A"
        )
        assert sorted(result.rows) == [["1"], ["2"], ["3"]]

    def test_column_count_mismatch_raises(self, db):
        with pytest.raises(SqlPlanError, match="columns"):
            db.execute("SELECT v FROM A UNION SELECT x, y FROM C")

    def test_columns_named_after_head(self, db):
        result = db.execute("SELECT v FROM A UNION SELECT w FROM B")
        assert result.columns == ["v"]

    def test_order_by_head_column(self, db):
        result = db.execute(
            "SELECT v FROM A UNION SELECT w FROM B ORDER BY v DESC"
        )
        assert result.rows == [["3"], ["2"], ["1"]]

    def test_order_by_ordinal(self, db):
        result = db.execute(
            "SELECT v FROM A UNION SELECT w FROM B ORDER BY 1"
        )
        assert result.rows == [["1"], ["2"], ["3"]]

    def test_order_by_unknown_column_raises(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("SELECT v FROM A UNION SELECT w FROM B ORDER BY ghost")

    def test_limit_applies_after_union(self, db):
        result = db.execute(
            "SELECT v FROM A UNION ALL SELECT w FROM B LIMIT 4"
        )
        assert len(result) == 4

    def test_union_with_aggregates_per_branch(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM A UNION ALL SELECT COUNT(*) FROM B"
        )
        assert sorted(r[0] for r in result.rows) == [2, 3]

    def test_union_numeric_dedup_across_forms(self, db):
        # "2" (string cell) and 2 (computed) dedup via numeric normalization.
        result = db.execute("SELECT v FROM A UNION SELECT 1 + 1")
        assert sorted(str(r[0]) for r in result.rows) == ["1", "2"]
