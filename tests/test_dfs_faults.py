"""The storage failure envelope: atomic writes, checksum failover,
replica re-registration and repair, and seeded chaos runs that must
recover (ISSUE 2 acceptance criteria)."""

import pytest

from repro.core import FaultToleranceConfig, Spate, SpateConfig
from repro.dfs import FaultInjector, SimulatedDFS, block_checksum
from repro.dfs.block import Block
from repro.errors import (
    BlockLostError,
    ChecksumError,
    FileExistsInDFSError,
    SpateError,
    StorageError,
    TransientWriteError,
)
from repro.telco import TelcoTraceGenerator, TraceConfig


def _corrupt_replicas(dfs, path, limit=None):
    """Corrupt up to ``limit`` replicas of the first block of ``path``."""
    block_id = dfs.namenode.lookup(path).blocks[0]
    corrupted = 0
    for node_id in sorted(dfs.namenode.locations(block_id)):
        if limit is not None and corrupted >= limit:
            break
        if dfs.datanodes[node_id].corrupt_block(block_id):
            corrupted += 1
    return block_id, corrupted


class AlwaysFailInjector(FaultInjector):
    """Injector whose transient write faults never stop."""

    def __init__(self):
        super().__init__(seed=1, write_failure_rate=1.0)


class TestAtomicWrites:
    def test_failed_write_leaves_no_phantom(self):
        dfs = SimulatedDFS(datanodes=3, block_size=8,
                           fault_injector=AlwaysFailInjector())
        with pytest.raises(TransientWriteError):
            dfs.write_file("/f", b"0123456789abcdef")
        assert not dfs.exists("/f")
        assert dfs.stats().physical_bytes == 0
        assert all(n.block_count == 0 for n in dfs.datanodes.values())
        assert dfs.fault_stats.writes_rolled_back == 1

    def test_failed_write_releases_block_ids(self):
        dfs = SimulatedDFS(datanodes=3, block_size=8,
                           fault_injector=AlwaysFailInjector())
        with pytest.raises(TransientWriteError):
            dfs.write_file("/f", b"0123456789abcdef")
        # The rolled-back blocks must not linger in the block map.
        assert dfs.namenode.under_replicated({"dn00", "dn01", "dn02"}) == []
        # A fresh filesystem write still works after detaching the injector.
        dfs.fault_injector = None
        dfs.write_file("/f", b"0123456789abcdef")
        assert dfs.read_file("/f") == b"0123456789abcdef"

    def test_capacity_overflow_mid_file_rolls_back(self):
        # 3 nodes x 24 bytes: the third 16-byte block cannot be placed,
        # and the two staged blocks must be reclaimed.
        dfs = SimulatedDFS(datanodes=3, block_size=16,
                           default_replication=3, node_capacity=24)
        with pytest.raises(StorageError):
            dfs.write_file("/big", bytes(48))
        assert not dfs.exists("/big")
        assert dfs.stats().physical_bytes == 0

    def test_transient_failures_within_budget_are_absorbed(self):
        injector = FaultInjector(seed=11, write_failure_rate=0.4)
        dfs = SimulatedDFS(datanodes=4, block_size=32,
                           fault_injector=injector, max_write_retries=8)
        payload = bytes(range(256)) * 4
        for i in range(20):
            dfs.write_file(f"/f{i}", payload)
        assert dfs.fault_stats.write_retries > 0
        assert dfs.fault_stats.write_failures == 0
        for i in range(20):
            assert dfs.read_file(f"/f{i}") == payload

    def test_existing_path_rejected_before_staging(self):
        dfs = SimulatedDFS(datanodes=2)
        dfs.write_file("/f", b"one")
        physical = dfs.stats().physical_bytes
        with pytest.raises(FileExistsInDFSError):
            dfs.write_file("/f", b"two")
        assert dfs.stats().physical_bytes == physical
        assert dfs.read_file("/f") == b"one"


class TestChecksums:
    def test_block_carries_crc32(self):
        block = Block(block_id=1, data=b"abc")
        assert block.checksum == block_checksum(b"abc")

    def test_datanode_detects_corruption(self):
        dfs = SimulatedDFS(datanodes=1, default_replication=1)
        dfs.write_file("/f", b"payload")
        block_id, corrupted = _corrupt_replicas(dfs, "/f")
        assert corrupted == 1
        with pytest.raises(ChecksumError):
            dfs.datanodes["dn00"].read(block_id)
        # Unverified read still serves the (corrupt) bytes.
        assert dfs.datanodes["dn00"].read(block_id, verify=False) != b"payload"

    def test_read_fails_over_and_quarantines(self):
        dfs = SimulatedDFS(datanodes=4, default_replication=3, block_size=64)
        payload = b"replicated" * 10
        dfs.write_file("/f", payload)
        block_id, corrupted = _corrupt_replicas(dfs, "/f", limit=2)
        assert corrupted == 2
        assert dfs.read_file("/f") == payload
        assert dfs.fault_stats.read_failovers == 2
        assert dfs.fault_stats.corrupt_replicas_dropped == 2
        # The corrupt copies were dropped and forgotten by the namenode.
        assert len(dfs.namenode.locations(block_id)) == 1

    def test_all_replicas_corrupt_raises_block_lost(self):
        dfs = SimulatedDFS(datanodes=3, default_replication=3)
        dfs.write_file("/f", b"doomed data")
        _corrupt_replicas(dfs, "/f")
        with pytest.raises(BlockLostError):
            dfs.read_file("/f")

    def test_scrub_quarantines_without_reads(self):
        dfs = SimulatedDFS(datanodes=4, default_replication=3)
        dfs.write_file("/f", b"scrub me" * 8)
        __, corrupted = _corrupt_replicas(dfs, "/f", limit=1)
        assert corrupted == 1
        assert dfs.fsck().corrupt_replicas == 1
        assert dfs.scrub() == 1
        assert dfs.fsck().corrupt_replicas == 0

    def test_re_replicate_never_copies_corrupt_source(self):
        dfs = SimulatedDFS(datanodes=4, default_replication=2)
        payload = b"source of truth" * 4
        dfs.write_file("/f", payload)
        block_id = dfs.namenode.lookup("/f").blocks[0]
        # Corrupt one replica, kill the node holding the other: the only
        # *live* source is corrupt, so repair must quarantine it rather
        # than propagate bad bytes.
        holders = sorted(dfs.namenode.locations(block_id))
        dfs.datanodes[holders[0]].corrupt_block(block_id)
        dfs.kill_datanode(holders[1])
        created = dfs.re_replicate()
        assert created == 0
        # The clean copy comes back with its node; heal then restores.
        dfs.restart_datanode(holders[1])
        report = dfs.heal()
        assert report.under_replicated_after == 0
        assert dfs.read_file("/f") == payload


class TestFailureEnvelope:
    def test_kill_last_replica_raises_block_lost(self):
        dfs = SimulatedDFS(datanodes=3, default_replication=3)
        dfs.write_file("/f", b"last copy")
        for node_id in ("dn00", "dn01", "dn02"):
            dfs.kill_datanode(node_id)
        with pytest.raises(BlockLostError):
            dfs.read_file("/f")

    def test_restart_re_registers_replicas(self):
        dfs = SimulatedDFS(datanodes=3, default_replication=3)
        dfs.write_file("/f", b"back soon")
        for node_id in ("dn00", "dn01", "dn02"):
            dfs.kill_datanode(node_id)
        dfs.restart_datanode("dn01")
        assert dfs.read_file("/f") == b"back soon"

    def test_write_keeps_requested_replication_target(self):
        # Write while a node is down: only 2 replicas land, but the
        # file still *wants* 3, so repair restores the full factor once
        # the node returns (the pre-fix behaviour pinned the target at
        # the degraded count forever).
        dfs = SimulatedDFS(datanodes=3, default_replication=3)
        dfs.kill_datanode("dn00")
        dfs.write_file("/f", b"degraded write" * 4)
        meta = dfs.namenode.lookup("/f")
        assert meta.replication == 3
        live = {"dn01", "dn02"}
        assert len(dfs.namenode.under_replicated(live)) == len(meta.blocks)
        dfs.restart_datanode("dn00")
        report = dfs.heal()
        assert report.replicas_created == len(meta.blocks)
        assert report.under_replicated_after == 0
        assert dfs.fsck().healthy

    def test_checksum_failover_then_heal_restores_factor(self):
        dfs = SimulatedDFS(datanodes=4, default_replication=3)
        payload = b"failover drill" * 16
        dfs.write_file("/f", payload)
        _corrupt_replicas(dfs, "/f", limit=1)
        assert dfs.read_file("/f") == payload  # failover dropped one replica
        report = dfs.heal()
        assert report.replicas_created >= 1
        assert report.under_replicated_after == 0
        assert dfs.fsck().healthy


class TestSeededChaosIngest:
    """ISSUE 2 acceptance: a full week-trace ingest under nonzero
    crash + corruption + transient-write rates completes with zero
    phantom files, checksum-clean reads, and full replication after
    heal()."""

    @pytest.fixture(scope="class")
    def chaos_spate(self):
        generator = TelcoTraceGenerator(
            TraceConfig(scale=0.0005, days=7, seed=2017)
        )
        spate = Spate(SpateConfig(
            codec="gzip-ref",
            faults=FaultToleranceConfig(
                enabled=True,
                seed=7,
                crash_rate=0.02,
                restart_rate=0.2,
                corruption_rate=0.05,
                write_failure_rate=0.05,
                max_write_retries=3,
                heal_interval_epochs=8,
            ),
        ))
        spate.register_cells(generator.cells_table())
        failed = 0
        for snapshot in generator.generate():
            try:
                spate.ingest(snapshot)
            except StorageError:
                failed += 1
        spate.finalize()
        for node_id, node in spate.dfs.datanodes.items():
            if not node.alive:
                spate.dfs.restart_datanode(node_id)
        heal = spate.heal()
        return spate, heal, failed

    def test_faults_were_actually_injected(self, chaos_spate):
        spate, __, __ = chaos_spate
        injector = spate.fault_injector
        assert injector.crashes_injected > 0
        assert injector.corruptions_injected > 0
        assert injector.write_failures_injected > 0

    def test_no_phantom_files(self, chaos_spate):
        spate, __, failed = chaos_spate
        expected = {
            path
            for leaf in spate.index.leaves()
            if not leaf.decayed
            for path in leaf.table_paths.values()
        }
        actual = set(spate.dfs.list_dir("/spate/snapshots"))
        assert actual == expected
        # A week is 336 epochs; everything the index doesn't know about
        # (failed ingests) must have been rolled back cleanly.
        assert len(spate.ingested_epochs()) + failed == 48 * 7

    def test_every_surviving_block_verifies(self, chaos_spate):
        spate, __, __ = chaos_spate
        for path in spate.dfs.list_dir("/spate/snapshots"):
            spate.dfs.read_file(path)  # would raise on corrupt/lost blocks
        fsck = spate.dfs.fsck()
        assert fsck.corrupt_replicas == 0
        assert fsck.lost_blocks == 0

    def test_heal_restored_requested_replication(self, chaos_spate):
        spate, heal, __ = chaos_spate
        assert heal.under_replicated_after == 0
        fsck = spate.dfs.fsck()
        assert fsck.under_replicated_blocks == 0
        assert fsck.live_valid_replicas == fsck.blocks * spate.config.replication

    def test_snapshots_read_back_decompressed(self, chaos_spate):
        spate, __, __ = chaos_spate
        epochs = spate.ingested_epochs()
        assert epochs, "chaos run ingested nothing"
        snapshot = spate.read_snapshot(epochs[0])
        assert snapshot.record_count() > 0

    def test_metrics_mirror_the_recovery(self, chaos_spate):
        spate, __, __ = chaos_spate
        metrics = spate.metrics
        assert metrics.faults_corruptions_injected == (
            spate.fault_injector.corruptions_injected
        )
        assert metrics.dfs_write_retries == spate.dfs.fault_stats.write_retries
        assert metrics.heal_passes == spate.dfs.fault_stats.heal_passes
        assert metrics.heal_passes > 0
        assert metrics.under_replicated_blocks == 0
        assert "storage recovery" in metrics.summary()


class TestChaosCli:
    def test_chaos_command_recovers(self, capsys):
        from repro.cli import main

        code = main([
            "chaos", "--scale", "0.0005", "--days", "1",
            "--crash-rate", "0.05", "--corruption-rate", "0.1",
            "--write-failure-rate", "0.1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict:               RECOVERED" in out
        assert "0 phantom, 0 missing, 0 unreadable" in out

    def test_chaos_report_file(self, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "chaos.txt"
        code = main([
            "chaos", "--scale", "0.0005", "--days", "1",
            "--report-file", str(report),
        ])
        capsys.readouterr()
        assert code == 0
        assert "RECOVERED" in report.read_text()


class TestSpateErrorHierarchy:
    def test_new_errors_are_storage_errors(self):
        assert issubclass(ChecksumError, StorageError)
        assert issubclass(TransientWriteError, StorageError)
        assert issubclass(StorageError, SpateError)
