"""Cross-codec contract tests: every registered codec must round-trip
arbitrary payloads, reject corrupt streams, and report honest stats."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import available_codecs, get_codec
from repro.compression.base import StatsAccumulator
from repro.errors import CompressionError, CorruptStreamError

FROM_SCRATCH = ["gzip", "7z", "snappy", "zstd"]
REFERENCE = ["gzip-ref", "7z-ref", "bz2-ref", "identity"]
ALL = FROM_SCRATCH + REFERENCE

EDGE_CASES = [
    b"",
    b"a",
    b"ab",
    b"abc",
    b"abcd",
    b"\x00" * 1,
    b"\x00" * 10_000,
    bytes(range(256)),
    bytes(range(256)) * 8,
    b"ab" * 500,
    "τηλεπικοινωνίες ✓".encode("utf-8"),
    b"\xff" * 257,
]


@pytest.mark.parametrize("name", ALL)
class TestCodecContract:
    def test_registered(self, name):
        assert name in available_codecs()

    @pytest.mark.parametrize("payload", EDGE_CASES, ids=range(len(EDGE_CASES)))
    def test_round_trip_edge_cases(self, name, payload):
        codec = get_codec(name)
        assert codec.decompress(codec.compress(payload)) == payload

    def test_round_trip_telco_like_text(self, name):
        rows = "\n".join(
            f"20160122{i % 24:02d}30|U{i % 50:04d}|C{i % 9:03d}|GSM|OK|0|{i * 7 % 900}"
            for i in range(400)
        ).encode()
        codec = get_codec(name)
        compressed = codec.compress(rows)
        assert codec.decompress(compressed) == rows

    def test_measure_reports_consistent_stats(self, name):
        codec = get_codec(name)
        payload = b"telco telco telco data data data" * 20
        stats = codec.measure(payload)
        assert stats.codec == name
        assert stats.raw_bytes == len(payload)
        assert stats.compressed_bytes > 0
        assert stats.compress_seconds >= 0.0
        assert stats.decompress_seconds >= 0.0


@pytest.mark.parametrize("name", FROM_SCRATCH)
class TestFromScratchCodecs:
    def test_compresses_redundant_text(self, name):
        payload = b"drop_call,cell_0042,2016-01-22,OK\n" * 300
        codec = get_codec(name)
        compressed = codec.compress(payload)
        assert len(compressed) < len(payload) // 3

    def test_bad_magic_rejected(self, name):
        codec = get_codec(name)
        with pytest.raises(CorruptStreamError):
            codec.decompress(b"\x00\x01\x02\x03not a stream")

    def test_truncated_stream_rejected(self, name):
        codec = get_codec(name)
        compressed = codec.compress(b"some compressible payload " * 50)
        with pytest.raises(CorruptStreamError):
            codec.decompress(compressed[: len(compressed) // 2])

    @given(data=st.binary(max_size=1200))
    @settings(max_examples=25, deadline=None)
    def test_property_round_trip(self, name, data):
        codec = get_codec(name)
        assert codec.decompress(codec.compress(data)) == data


class TestRatioOrdering:
    """Table I's qualitative ordering: entropy coders beat snappy."""

    @pytest.fixture(scope="class")
    def payload(self):
        return (
            "\n".join(
                f"201601221530|U{i % 120:05d}|C{i % 40:04d}|voice|2G|OK|0|"
                f"{(i * 13) % 400}|{(i * 7) % 90}"
                for i in range(1500)
            )
        ).encode()

    def test_snappy_ratio_roughly_half_of_entropy_coders(self, payload):
        ratios = {}
        for name in FROM_SCRATCH:
            codec = get_codec(name)
            ratios[name] = len(payload) / len(codec.compress(payload))
        assert ratios["snappy"] < ratios["gzip"]
        assert ratios["snappy"] < ratios["zstd"]
        assert ratios["snappy"] < ratios["7z"]

    def test_lzma_family_has_best_ratio(self, payload):
        sizes = {
            name: len(get_codec(name).compress(payload))
            for name in FROM_SCRATCH
        }
        assert sizes["7z"] <= sizes["gzip"]


class TestRegistry:
    def test_unknown_codec_raises_with_suggestions(self):
        with pytest.raises(CompressionError, match="available"):
            get_codec("nope")

    def test_duplicate_registration_rejected(self):
        from repro.compression.base import Codec, register_codec

        with pytest.raises(ValueError):

            @register_codec
            class Duplicate(Codec):  # noqa
                name = "gzip"

                def compress(self, data):  # pragma: no cover
                    return data

                def decompress(self, data):  # pragma: no cover
                    return data

    def test_unnamed_codec_rejected(self):
        from repro.compression.base import Codec, register_codec

        with pytest.raises(ValueError):

            @register_codec
            class Nameless(Codec):  # noqa
                def compress(self, data):  # pragma: no cover
                    return data

                def decompress(self, data):  # pragma: no cover
                    return data

    def test_measure_raises_on_lossy_codec(self):
        from repro.compression.base import Codec

        class Lossy(Codec):
            name = "lossy-test"

            def compress(self, data):
                return data[:-1] if data else data

            def decompress(self, data):
                return data

        with pytest.raises(CompressionError, match="round-trip"):
            Lossy().measure(b"payload")


class TestStatsAccumulator:
    def test_empty_accumulator_reports_zero(self):
        acc = StatsAccumulator()
        assert acc.mean_ratio == 0.0
        assert acc.mean_compress_seconds == 0.0
        assert acc.mean_decompress_seconds == 0.0

    def test_averaging(self):
        codec = get_codec("gzip-ref")
        acc = StatsAccumulator()
        for payload in (b"aaaa" * 100, b"bbbb" * 200):
            acc.add(codec.measure(payload))
        assert len(acc.samples) == 2
        assert acc.mean_ratio > 1.0
