"""Fault-tolerance integration: SPATE over a degraded DFS, plus a
stateful property test of the filesystem itself."""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import Spate, SpateConfig
from repro.dfs import SimulatedDFS
from repro.errors import BlockLostError, FileExistsInDFSError
from repro.telco import TelcoTraceGenerator, TraceConfig


class TestSpateUnderFailures:
    @pytest.fixture()
    def spate(self):
        generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=73))
        instance = Spate(SpateConfig(codec="gzip-ref", replication=3))
        instance.register_cells(generator.cells_table())
        for epoch in range(8):
            instance.ingest(generator.snapshot(epoch))
        instance.finalize()
        return instance

    def test_single_node_failure_is_transparent(self, spate):
        baseline = spate.read_snapshot(3).serialize()
        spate.dfs.kill_datanode("dn00")
        assert spate.read_snapshot(3).serialize() == baseline
        result = spate.explore("CDR", ("downflux",), None, 0, 7)
        assert result.snapshots_read == 8

    def test_ingest_continues_with_reduced_cluster(self):
        # Fresh, *unfinalized* warehouse: a finalized stream rejects
        # late appends (rollups are closed).
        generator = TelcoTraceGenerator(TraceConfig(scale=0.002, days=1, seed=73))
        spate = Spate(SpateConfig(codec="gzip-ref", replication=3))
        spate.register_cells(generator.cells_table())
        for epoch in range(8):
            spate.ingest(generator.snapshot(epoch))
        spate.dfs.kill_datanode("dn01")
        stats = spate.ingest(generator.snapshot(8))
        assert stats.stored_bytes > 0
        assert spate.read_snapshot(8) is not None

    def test_re_replication_restores_redundancy(self, spate):
        spate.dfs.kill_datanode("dn00")
        spate.dfs.re_replicate()
        # Now a *second* failure is still survivable.
        spate.dfs.kill_datanode("dn01")
        assert spate.read_snapshot(5) is not None

    def test_two_failures_without_repair_still_survive_replication_three(self, spate):
        spate.dfs.kill_datanode("dn00")
        spate.dfs.kill_datanode("dn01")
        # Replication 3 on 4 nodes: every block has a live replica.
        for epoch in range(8):
            assert spate.read_snapshot(epoch) is not None

    def test_total_loss_raises_block_lost(self, spate):
        for node_id in list(spate.dfs.datanodes):
            spate.dfs.kill_datanode(node_id)
        with pytest.raises(BlockLostError):
            spate.read_snapshot(0)


class DfsStateMachine(RuleBasedStateMachine):
    """Random write/delete/kill/restart/re-replicate sequences must never
    lose a file while at least one replica's node lives."""

    def __init__(self):
        super().__init__()
        self.dfs = SimulatedDFS(datanodes=4, block_size=64, default_replication=3)
        self.model: dict[str, bytes] = {}
        self.counter = 0

    paths = Bundle("paths")

    @rule(target=paths, payload=st.binary(max_size=300))
    def write(self, payload):
        path = f"/f{self.counter}"
        self.counter += 1
        try:
            self.dfs.write_file(path, payload)
        except FileExistsInDFSError:  # pragma: no cover - unique paths
            raise AssertionError("unique path collided")
        self.model[path] = payload
        return path

    @rule(path=paths)
    def delete(self, path):
        if path in self.model:
            self.dfs.delete_file(path)
            del self.model[path]

    @rule(node=st.sampled_from(["dn00", "dn01"]))
    def kill(self, node):
        # At most two nodes (dn00/dn01) ever fail: with replication 3,
        # every block keeps at least one live replica, so readability
        # is a true invariant of these traces.
        self.dfs.kill_datanode(node)

    @rule(node=st.sampled_from(["dn00", "dn01"]))
    def restart(self, node):
        self.dfs.restart_datanode(node)

    @rule()
    def repair(self):
        self.dfs.re_replicate()

    @invariant()
    def all_live_files_readable(self):
        for path, payload in self.model.items():
            assert self.dfs.read_file(path) == payload

    @invariant()
    def logical_bytes_match_model(self):
        assert self.dfs.stats().logical_bytes == sum(
            len(p) for p in self.model.values()
        )


TestDfsStateMachine = DfsStateMachine.TestCase
TestDfsStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
