"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import Spate, SpateConfig
from repro.telco import TelcoTraceGenerator, TraceConfig

#: Tiny but non-degenerate trace used across integration tests.
TINY = TraceConfig(scale=0.002, days=2, seed=99)


@pytest.fixture(scope="session")
def tiny_generator() -> TelcoTraceGenerator:
    """One shared topology/population; snapshot() calls stay cheap."""
    return TelcoTraceGenerator(TINY)


@pytest.fixture(scope="session")
def tiny_snapshots(tiny_generator):
    """The tiny trace's first day of snapshots, generated once."""
    generator = TelcoTraceGenerator(TINY)  # fresh mobility state
    return [generator.snapshot(epoch) for epoch in range(48)]


@pytest.fixture()
def spate_day(tiny_generator, tiny_snapshots):
    """A SPATE instance loaded with one day of data (no decay)."""
    spate = Spate(SpateConfig(codec="gzip-ref"))
    spate.register_cells(tiny_generator.cells_table())
    for snapshot in tiny_snapshots:
        spate.ingest(snapshot)
    spate.finalize()
    return spate


def sample_rows(n: int = 50) -> tuple[list[str], list[list[str]]]:
    """Deterministic relational sample for SQL/privacy tests."""
    columns = ["ts", "user", "cell", "plan", "bytes"]
    rows = []
    for i in range(n):
        rows.append([
            f"2016011{i % 9}",
            f"u{i % 7}",
            f"C{i % 5:03d}",
            ["prepaid", "postpaid", "business"][i % 3],
            str((i * 37) % 500),
        ])
    return columns, rows
