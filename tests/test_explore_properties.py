"""Property tests: exploration answers must equal a manual scan."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.spatial.geometry import BoundingBox


def manual_aggregate(spate, table, attribute, box, first, last):
    """Ground truth computed with a plain scan of decompressed storage."""
    cells = None
    if box is not None:
        cells = {
            cell_id
            for cell_id, point in spate.cell_locations.items()
            if box.contains(point)
        }
    columns, rows = spate.read_rows(table, first, last)
    if not columns:
        return 0, 0
    from repro.index.highlights import CELL_COLUMN

    attr_idx = columns.index(attribute)
    cell_idx = columns.index(CELL_COLUMN[table])
    count = 0
    total = 0
    for row in rows:
        if cells is not None and row[cell_idx] not in cells:
            continue
        value = row[attr_idx]
        if value and (value.lstrip("-")).isdigit():
            count += 1
            total += int(value)
    return count, total


class TestExploreMatchesManualScan:
    @given(
        first=st.integers(0, 40),
        span=st.integers(0, 7),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_property_temporal_windows(self, spate_day, first, span):
        last = min(first + span, 47)
        result = spate_day.explore("CDR", ("downflux",), None, first, last)
        stats = result.aggregate("downflux")
        count, total = manual_aggregate(
            spate_day, "CDR", "downflux", None, first, last
        )
        assert stats.count == count
        assert stats.total == total

    @given(
        fx=st.floats(0.0, 0.7),
        fy=st.floats(0.0, 0.7),
        fw=st.floats(0.1, 0.3),
    )
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_property_spatial_boxes(self, spate_day, fx, fy, fw):
        area = spate_day.area
        box = BoundingBox(
            area.min_x + fx * area.width,
            area.min_y + fy * area.height,
            min(area.min_x + (fx + fw) * area.width, area.max_x),
            min(area.min_y + (fy + fw) * area.height, area.max_y),
        )
        result = spate_day.explore("CDR", ("upflux",), box, 0, 20)
        stats = result.aggregate("upflux")
        count, total = manual_aggregate(spate_day, "CDR", "upflux", box, 0, 20)
        assert stats.count == count
        assert stats.total == total

    @given(first=st.integers(0, 30))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_property_nms_attribute(self, spate_day, first):
        result = spate_day.explore("NMS", ("val",), None, first, first + 5)
        count, total = manual_aggregate(
            spate_day, "NMS", "val", None, first, first + 5
        )
        assert result.aggregate("val").count == count
        assert result.aggregate("val").total == total

    def test_record_count_equals_scan(self, spate_day):
        result = spate_day.explore("CDR", ("downflux",), None, 3, 9)
        __, rows = spate_day.read_rows("CDR", 3, 9)
        assert len(result.records) == len(rows)
