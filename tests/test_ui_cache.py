"""Tests for the UI exploration cache (zoom-in answering)."""

import pytest

from repro.spatial.geometry import BoundingBox
from repro.ui.cache import CachedExplorer


@pytest.fixture()
def explorer(spate_day):
    return CachedExplorer(spate_day, capacity=4)


class TestCacheBasics:
    def test_first_query_misses(self, explorer):
        explorer.explore("CDR", ("downflux",), None, 0, 20)
        assert explorer.misses == 1
        assert explorer.hits == 0
        assert explorer.size == 1

    def test_exact_repeat_hits(self, explorer):
        explorer.explore("CDR", ("downflux",), None, 0, 20)
        repeat = explorer.explore("CDR", ("downflux",), None, 0, 20)
        assert explorer.hits == 1
        assert repeat.snapshots_read > 0  # cached object returned as-is

    def test_invalid_capacity(self, spate_day):
        with pytest.raises(ValueError):
            CachedExplorer(spate_day, capacity=0)

    def test_invalidate(self, explorer):
        explorer.explore("CDR", ("downflux",), None, 0, 5)
        explorer.invalidate()
        assert explorer.size == 0
        explorer.explore("CDR", ("downflux",), None, 0, 5)
        assert explorer.misses == 2

    def test_lru_eviction(self, explorer):
        for i in range(6):
            explorer.explore("CDR", (f"downflux",), None, i, i)  # same key!
        assert explorer.size == 1
        # Different attribute tuples are distinct keys.
        explorer.explore("CDR", ("upflux",), None, 0, 1)
        explorer.explore("NMS", ("val",), None, 0, 1)
        assert explorer.size == 3


class TestZoomIn:
    def test_narrowed_window_served_from_cache(self, explorer, spate_day):
        whole = explorer.explore("CDR", ("downflux",), None, 0, 47)
        zoomed = explorer.explore("CDR", ("downflux",), None, 10, 20)
        assert explorer.hits == 1
        assert zoomed.snapshots_read == 0  # no storage access
        assert zoomed.resolution_by_day == {"*": "cache"}
        # Equivalence with a direct (uncached) evaluation.
        direct = spate_day.explore("CDR", ("downflux",), None, 10, 20)
        assert len(zoomed.records) == len(direct.records)
        assert zoomed.aggregate("downflux").total == direct.aggregate("downflux").total
        assert zoomed.aggregate("downflux").count == direct.aggregate("downflux").count

    def test_zoom_preserves_epoch_bounds(self, explorer):
        explorer.explore("CDR", ("downflux",), None, 0, 47)
        zoomed = explorer.explore("CDR", ("downflux",), None, 5, 7)
        epochs = {int(r[0]) for r in zoomed.records}
        assert epochs <= set(range(5, 8))

    def test_wider_window_misses(self, explorer):
        explorer.explore("CDR", ("downflux",), None, 10, 20)
        explorer.explore("CDR", ("downflux",), None, 0, 47)
        assert explorer.hits == 0
        assert explorer.misses == 2

    def test_different_box_misses(self, explorer, spate_day):
        area = spate_day.area
        west = BoundingBox(area.min_x, area.min_y, area.center.x, area.max_y)
        explorer.explore("CDR", ("downflux",), None, 0, 47)
        explorer.explore("CDR", ("downflux",), west, 5, 10)
        assert explorer.hits == 0

    def test_same_box_zoom_hits(self, explorer, spate_day):
        area = spate_day.area
        west = BoundingBox(area.min_x, area.min_y, area.center.x, area.max_y)
        explorer.explore("CDR", ("downflux",), west, 0, 47)
        zoomed = explorer.explore("CDR", ("downflux",), west, 12, 14)
        assert explorer.hits == 1
        direct = spate_day.explore("CDR", ("downflux",), west, 12, 14)
        assert zoomed.aggregate("downflux").total == direct.aggregate("downflux").total

    def test_decayed_results_not_narrowed(self, tiny_generator, tiny_snapshots):
        from repro.core import Spate, SpateConfig
        from repro.core.config import DecayPolicyConfig

        spate = Spate(SpateConfig(
            codec="gzip-ref", decay=DecayPolicyConfig(keep_epochs=6)
        ))
        spate.register_cells(tiny_generator.cells_table())
        for snapshot in tiny_snapshots:
            spate.ingest(snapshot)
        spate.finalize()
        explorer = CachedExplorer(spate)
        whole = explorer.explore("CDR", ("downflux",), None, 0, 47)
        assert whole.used_decayed_data
        explorer.explore("CDR", ("downflux",), None, 5, 10)
        # Zoom into a summary-backed result must re-query, not narrow.
        assert explorer.hits == 0
        assert explorer.misses == 2
