"""Tests for configuration validation."""

import pytest

from repro.core.config import DecayPolicyConfig, HighlightsConfig, SpateConfig
from repro.errors import ConfigError


class TestHighlightsConfig:
    def test_defaults_are_valid(self):
        config = HighlightsConfig()
        assert config.theta_for_level("day") == config.theta_day
        assert config.theta_for_level("month") == config.theta_month
        assert config.theta_for_level("year") == config.theta_year

    def test_unknown_level_raises(self):
        with pytest.raises(ConfigError):
            HighlightsConfig().theta_for_level("decade")

    def test_theta_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            HighlightsConfig(theta_day=1.5)
        with pytest.raises(ConfigError):
            HighlightsConfig(theta_month=-0.1)

    def test_paper_recommends_lower_theta_at_coarser_levels(self):
        config = HighlightsConfig()
        assert config.theta_year <= config.theta_month <= config.theta_day

    def test_tracked_attributes_cover_cdr_and_nms(self):
        tracked = HighlightsConfig().tracked_attributes
        assert "CDR" in tracked and "NMS" in tracked


class TestDecayPolicyConfig:
    def test_defaults_keep_a_year_of_epochs(self):
        config = DecayPolicyConfig()
        assert config.keep_epochs == 48 * 365

    def test_invalid_horizons_rejected(self):
        with pytest.raises(ConfigError):
            DecayPolicyConfig(keep_epochs=0)
        with pytest.raises(ConfigError):
            DecayPolicyConfig(keep_highlight_days=0)


class TestSpateConfig:
    def test_defaults(self):
        config = SpateConfig()
        assert config.codec == "gzip"
        assert config.replication == 3
        assert not config.leaf_spatial_index

    def test_invalid_replication_rejected(self):
        with pytest.raises(ConfigError):
            SpateConfig(replication=0)

    def test_tiny_block_size_rejected(self):
        with pytest.raises(ConfigError):
            SpateConfig(block_size=10)
