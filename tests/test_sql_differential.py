"""Differential SQL harness: production engine vs the naive reference.

Seeded specs (filters, GROUP BY, equi-joins, LIMIT) are rendered to SQL
and run through ``Database.execute`` against the *warehouse scan path*
— predicate pushdown, day-summary pruning, column projection, and
parallel leaf decode all active — then evaluated independently by the
naive engine in :mod:`tests.sql_reference` over plainly materialized
rows.  The answers must match exactly, rows and order.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core import Spate, SpateConfig
from repro.core.config import ShardConfig
from repro.engine.executor import get_executor
from repro.shard import ShardedSpate
from repro.telco import TelcoTraceGenerator, TraceConfig

from tests.sql_reference import (
    Agg,
    CaseSpec,
    Filter,
    JoinSpec,
    OrderSpec,
    QuerySpec,
    evaluate,
    render_sql,
)

#: Per-table column pools the fuzzer draws from.
NUMERIC_COLUMNS = {
    "CDR": ["duration_s", "upflux", "downflux"],
    "NMS": ["val", "drops", "throughput_kbps", "latency_ms", "attempts"],
}
STRING_COLUMNS = {
    "CDR": ["call_type", "tech", "result", "cell_id"],
    "NMS": ["kpi", "cellid"],
}
#: How each table equi-joins the CELL dimension table.
JOIN_TO_CELL = {
    "CDR": JoinSpec("CELL", "cell_id", "cell_id"),
    "NMS": JoinSpec("CELL", "cellid", "cell_id"),
}
AGG_FUNCS = ["COUNT", "SUM", "AVG", "MIN", "MAX"]
OPS = ["=", "!=", "<", "<=", ">", ">="]


@pytest.fixture(scope="module")
def harness():
    """One day of trace, queried through pruning + parallel decode."""
    trace = TraceConfig(scale=0.002, days=2, seed=99)
    generator = TelcoTraceGenerator(trace)
    spate = Spate(SpateConfig(codec="gzip-ref"))
    spate.register_cells(generator.cells_table())
    for epoch in range(48):
        spate.ingest(generator.snapshot(epoch))
    spate.finalize()
    # Materialize the reference relations BEFORE enabling pruning, via
    # the plain hint-free scan (never pruned, never projected).
    tables = {
        name: spate.read_rows(name, 0, 47) for name in ("CDR", "NMS")
    }
    cell_columns = ["cell_id", "x", "y"]
    cell_rows = [
        [cell_id, f"{p.x:.1f}", f"{p.y:.1f}"]
        for cell_id, p in spate.cell_locations.items()
    ]
    tables["CELL"] = (cell_columns, cell_rows)

    spate.config = dataclasses.replace(
        spate.config, executor="thread", query_pruning=True
    )
    spate.executor = get_executor("thread", workers=2)
    db = spate.sql_database()
    db.register_table("CELL", cell_columns, cell_rows)
    return spate, db, tables


def _sample_literal(rng: random.Random, tables, table: str, column: str, numeric: bool):
    """Draw a literal from the column's real values (real selectivity)."""
    columns, rows = tables[table]
    idx = columns.index(column)
    values = [r[idx] for r in rows if r[idx] != ""] or ["0"]
    value = rng.choice(values)
    if numeric:
        try:
            return int(value) + rng.choice([-1, 0, 0, 1])
        except ValueError:
            return 0
    return value


def _random_filters(rng, tables, table: str, count: int) -> tuple[Filter, ...]:
    filters = []
    for __ in range(count):
        if rng.random() < 0.6:
            column = rng.choice(NUMERIC_COLUMNS[table])
            op = rng.choice(OPS)
            value = _sample_literal(rng, tables, table, column, numeric=True)
        else:
            column = rng.choice(STRING_COLUMNS[table])
            op = rng.choice(["=", "!="])
            value = _sample_literal(rng, tables, table, column, numeric=False)
        filters.append(Filter(table, column, op, value))
    return tuple(filters)


def random_spec(seed: int, tables) -> QuerySpec:
    """One constrained query; the kind round-robins so every seed batch
    covers filters, GROUP BY, joins, and LIMIT."""
    rng = random.Random(seed)
    table = rng.choice(["CDR", "NMS"])
    kind = ["plain", "grouped", "join", "limit"][seed % 4]
    filters = _random_filters(rng, tables, table, rng.randint(0, 2))

    if kind == "grouped":
        key = rng.choice(STRING_COLUMNS[table])
        aggs = [Agg("COUNT")]
        for __ in range(rng.randint(1, 2)):
            func = rng.choice(AGG_FUNCS)
            column = rng.choice(NUMERIC_COLUMNS[table])
            aggs.append(Agg(func, column))
        return QuerySpec(
            table=table,
            select=((table, key),),
            aggs=tuple(aggs),
            filters=filters,
            group_by=(key,),
        )

    if kind == "join":
        join = JOIN_TO_CELL[table]
        select = (
            (table, rng.choice(STRING_COLUMNS[table])),
            (table, rng.choice(NUMERIC_COLUMNS[table])),
            ("CELL", rng.choice(["x", "y", "cell_id"])),
        )
        return QuerySpec(
            table=table,
            select=select,
            filters=filters,
            join=dataclasses.replace(
                join, kind=rng.choice(["inner", "left"])
            ),
        )

    select = tuple(
        (table, c)
        for c in rng.sample(
            NUMERIC_COLUMNS[table] + STRING_COLUMNS[table], rng.randint(1, 3)
        )
    )
    limit = rng.randint(1, 40) if kind == "limit" else None
    return QuerySpec(table=table, select=select, filters=filters, limit=limit)


#: Three-table join chains (base -> CELL -> other fact table).
CHAINS = {
    "CDR": (
        JoinSpec("CELL", "cell_id", "cell_id"),
        JoinSpec("NMS", "cell_id", "cellid", left_table="CELL"),
    ),
    "NMS": (
        JoinSpec("CELL", "cellid", "cell_id"),
        JoinSpec("CDR", "cell_id", "cell_id", left_table="CELL"),
    ),
}

V2_KINDS = [
    "multijoin",
    "implicit",
    "having",
    "grouped_order",
    "order_limit",
    "case",
    "union",
    "union_all_order",
]


def random_spec_v2(seed: int, tables) -> QuerySpec:
    """Second-generation specs: multi-table joins (explicit and comma
    form, exercising the cost-based reorder), HAVING, ORDER BY + LIMIT
    ties, CASE projections, and UNION chains."""
    rng = random.Random(seed)
    table = rng.choice(["CDR", "NMS"])
    other = "NMS" if table == "CDR" else "CDR"
    kind = V2_KINDS[seed % len(V2_KINDS)]
    filters = _random_filters(rng, tables, table, rng.randint(1, 2))

    if kind in ("multijoin", "implicit"):
        # Keep the three-way join bounded: an equality filter on the
        # other fact table rides along with the base filters.
        other_col = rng.choice(STRING_COLUMNS[other])
        other_val = _sample_literal(rng, tables, other, other_col, False)
        filters = filters + (Filter(other, other_col, "=", other_val),)
        if rng.random() < 0.5:
            key = rng.choice(STRING_COLUMNS[table])
            return QuerySpec(
                table=table,
                select=((table, key),),
                aggs=(Agg("COUNT"), Agg("SUM", rng.choice(NUMERIC_COLUMNS[table]))),
                filters=filters,
                joins=CHAINS[table],
                group_by=(key,),
                implicit_join=kind == "implicit",
            )
        return QuerySpec(
            table=table,
            select=(
                (table, rng.choice(STRING_COLUMNS[table])),
                ("CELL", rng.choice(["x", "y"])),
                (other, rng.choice(NUMERIC_COLUMNS[other])),
            ),
            filters=filters,
            joins=CHAINS[table],
            limit=rng.randint(5, 60),
            implicit_join=kind == "implicit",
        )

    if kind == "having":
        key = rng.choice(STRING_COLUMNS[table])
        return QuerySpec(
            table=table,
            select=((table, key),),
            aggs=(Agg("COUNT"), Agg(rng.choice(["SUM", "AVG", "MAX"]),
                                    rng.choice(NUMERIC_COLUMNS[table]))),
            filters=filters,
            group_by=(key,),
            having=(("a0", rng.choice([">", ">=", "<="]), rng.randint(1, 30)),),
        )

    if kind == "grouped_order":
        key = rng.choice(STRING_COLUMNS[table])
        return QuerySpec(
            table=table,
            select=((table, key),),
            aggs=(Agg("COUNT"), Agg("MIN", rng.choice(NUMERIC_COLUMNS[table]))),
            filters=filters,
            group_by=(key,),
            order_by=(OrderSpec("a0", ascending=rng.random() < 0.5),
                      OrderSpec("c0"),),
            limit=rng.randint(1, 6) if rng.random() < 0.5 else None,
        )

    if kind == "order_limit":
        # Low-cardinality leading key forces ties; the stable sort must
        # break them identically in both engines.
        return QuerySpec(
            table=table,
            select=((table, rng.choice(STRING_COLUMNS[table])),
                    (table, rng.choice(NUMERIC_COLUMNS[table]))),
            filters=filters,
            order_by=(OrderSpec("c0", ascending=rng.random() < 0.7),),
            limit=rng.randint(3, 25),
        )

    if kind == "case":
        col = rng.choice(NUMERIC_COLUMNS[table])
        threshold = _sample_literal(rng, tables, table, col, True)
        return QuerySpec(
            table=table,
            select=((table, rng.choice(STRING_COLUMNS[table])),),
            cases=(CaseSpec(table, col, rng.choice([">=", "<"]), threshold,
                            "hi", "lo"),),
            filters=filters,
            limit=rng.randint(10, 50) if rng.random() < 0.5 else None,
        )

    # union / union_all_order: same-arity branches over both fact tables.
    branch = QuerySpec(
        table=other,
        select=((other, rng.choice(STRING_COLUMNS[other])),),
        cases=(CaseSpec(other, rng.choice(NUMERIC_COLUMNS[other]), ">=",
                        _sample_literal(rng, tables, other,
                                        rng.choice(NUMERIC_COLUMNS[other]),
                                        True),
                        "hi", "lo"),),
        filters=_random_filters(rng, tables, other, 1),
    )
    return QuerySpec(
        table=table,
        select=((table, rng.choice(STRING_COLUMNS[table])),),
        cases=(CaseSpec(table, rng.choice(NUMERIC_COLUMNS[table]), "<",
                        _sample_literal(rng, tables, table,
                                        rng.choice(NUMERIC_COLUMNS[table]),
                                        True),
                        "hi", "lo"),),
        filters=filters,
        union=branch,
        union_all=kind == "union_all_order",
        order_by=(OrderSpec("c0"), OrderSpec("k0", ascending=False))
        if kind == "union_all_order"
        else (),
        limit=rng.randint(5, 40) if rng.random() < 0.5 else None,
    )


@pytest.fixture(scope="module")
def typed_harness():
    """The same trace stored under the typed-channel codec, so every
    scan runs behind the zone-map gate and selective channel decode."""
    trace = TraceConfig(scale=0.002, days=2, seed=99)
    generator = TelcoTraceGenerator(trace)
    spate = Spate(SpateConfig(codec="typedchannel", layout="columnar"))
    spate.register_cells(generator.cells_table())
    for epoch in range(48):
        spate.ingest(generator.snapshot(epoch))
    spate.finalize()
    tables = {
        name: spate.read_rows(name, 0, 47) for name in ("CDR", "NMS")
    }
    cell_columns = ["cell_id", "x", "y"]
    cell_rows = [
        [cell_id, f"{p.x:.1f}", f"{p.y:.1f}"]
        for cell_id, p in spate.cell_locations.items()
    ]
    tables["CELL"] = (cell_columns, cell_rows)

    spate.config = dataclasses.replace(
        spate.config, executor="thread", query_pruning=True
    )
    spate.executor = get_executor("thread", workers=2)
    # The reference scans warmed the leaf cache; drop it so later scans
    # actually reach the zone-map gate instead of being served decoded
    # tables (a cache hit legitimately bypasses zone pruning).
    if spate.leaf_cache is not None:
        spate.leaf_cache.clear()
    db = spate.sql_database()
    db.register_table("CELL", cell_columns, cell_rows)
    return spate, db, tables


class TestDifferentialSql:
    @pytest.mark.parametrize("seed", range(32))
    def test_seeded_query_matches_reference(self, harness, seed):
        spate, db, tables = harness
        spec = random_spec(seed, tables)
        sql = render_sql(spec)
        got = db.execute(sql)
        want_columns, want_rows = evaluate(spec, tables)
        assert got.columns == want_columns, sql
        assert got.rows == want_rows, (
            f"{sql}\n"
            f"pruned={spate.last_scan_coverage.get('epochs_pruned')}"
        )

    def test_fuzz_exercises_pruning(self, harness):
        """At least one seeded query must actually prune leaves — the
        harness would silently stop testing pruning otherwise."""
        spate, db, tables = harness
        pruned_total = 0
        for seed in range(32):
            spec = random_spec(seed, tables)
            db.execute(render_sql(spec))
            pruned_total += len(
                spate.last_scan_coverage.get("epochs_pruned", [])
            )
        assert pruned_total > 0

    def test_targeted_shapes(self, harness):
        """Deterministic specs covering each feature, independent of the
        rng's choices."""
        spate, db, tables = harness
        specs = [
            QuerySpec(  # selective filter the summaries can disprove
                table="CDR",
                select=(("CDR", "caller_id"),),
                filters=(Filter("CDR", "duration_s", ">=", 10**6),),
            ),
            QuerySpec(  # grouped aggregates over a filtered scan
                table="CDR",
                select=(("CDR", "call_type"),),
                aggs=(Agg("COUNT"), Agg("SUM", "duration_s"),
                      Agg("AVG", "downflux")),
                filters=(Filter("CDR", "result", "!=", ""),),
                group_by=("call_type",),
            ),
            QuerySpec(  # left equi-join with projection on both sides
                table="NMS",
                select=(("NMS", "cellid"), ("NMS", "val"), ("CELL", "x")),
                join=JoinSpec("CELL", "cellid", "cell_id", kind="left"),
                filters=(Filter("NMS", "drops", ">", 0),),
            ),
            QuerySpec(  # LIMIT over a plain filtered scan
                table="NMS",
                select=(("NMS", "kpi"), ("NMS", "val")),
                filters=(Filter("NMS", "val", ">=", 1),),
                limit=7,
            ),
        ]
        for spec in specs:
            sql = render_sql(spec)
            got = db.execute(sql)
            want_columns, want_rows = evaluate(spec, tables)
            assert got.columns == want_columns, sql
            assert got.rows == want_rows, sql


class TestDifferentialSqlTypedChannel:
    """The same differential contract with typed-channel leaves: zone
    maps may only *disprove*, so answers — rows and order — must stay
    exactly what the naive reference computes."""

    #: Fresh seed range (disjoint from the dense harness) so the two
    #: batches don't share rng draws.
    SEEDS = range(100, 116)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_query_matches_reference(self, typed_harness, seed):
        spate, db, tables = typed_harness
        spec = random_spec(seed, tables)
        sql = render_sql(spec)
        got = db.execute(sql)
        want_columns, want_rows = evaluate(spec, tables)
        assert got.columns == want_columns, sql
        assert got.rows == want_rows, (
            f"{sql}\n"
            f"zone-pruned={spate.last_scan_stats.leaves_zone_pruned}"
        )

    def test_fuzz_exercises_zone_pruning(self, typed_harness):
        """The batch must actually hit the zone-map gate; otherwise the
        typed harness degenerates into the dense one."""
        spate, db, tables = typed_harness
        zone_pruned = 0
        skipped_bytes = 0
        for seed in self.SEEDS:
            spec = random_spec(seed, tables)
            db.execute(render_sql(spec))
            zone_pruned += spate.last_scan_stats.leaves_zone_pruned
            skipped_bytes += spate.last_scan_stats.channel_bytes_skipped
        assert zone_pruned > 0
        assert skipped_bytes > 0

    def test_targeted_channel_predicates(self, typed_harness):
        """Hand-picked predicate shapes for each disproof path: numeric
        bounds, distinct-set string equality, and mixed conjuncts."""
        spate, db, tables = typed_harness
        cdr_columns, cdr_rows = tables["CDR"]
        duration = cdr_columns.index("duration_s")
        durations = sorted(int(r[duration]) for r in cdr_rows)
        mid = durations[len(durations) * 3 // 4] if durations else 100
        cell = cdr_columns.index("cell_id")
        some_cell = cdr_rows[0][cell] if cdr_rows else "c0"
        specs = [
            QuerySpec(  # upper-range threshold: bounds disproof
                table="CDR",
                select=(("CDR", "call_type"),),
                aggs=(Agg("COUNT"), Agg("SUM", "duration_s")),
                filters=(Filter("CDR", "duration_s", ">=", mid),),
                group_by=("call_type",),
            ),
            QuerySpec(  # string equality: distinct-set disproof
                table="CDR",
                select=(("CDR", "duration_s"), ("CDR", "call_type")),
                filters=(Filter("CDR", "cell_id", "=", some_cell),),
            ),
            QuerySpec(  # equality on a value no leaf holds
                table="CDR",
                select=(("CDR", "caller_id"),),
                filters=(Filter("CDR", "cell_id", "=", "no-such-cell"),),
            ),
            QuerySpec(  # conjunction: either channel may disprove
                table="CDR",
                select=(("CDR", "cell_id"),),
                filters=(
                    Filter("CDR", "duration_s", ">", mid),
                    Filter("CDR", "call_type", "=", "voice"),
                ),
            ),
            QuerySpec(  # join survives selective channel decode
                table="CDR",
                select=(("CDR", "cell_id"), ("CDR", "duration_s"),
                        ("CELL", "x")),
                join=JoinSpec("CELL", "cell_id", "cell_id", kind="inner"),
                filters=(Filter("CDR", "duration_s", ">=", mid),),
            ),
        ]
        for spec in specs:
            sql = render_sql(spec)
            got = db.execute(sql)
            want_columns, want_rows = evaluate(spec, tables)
            assert got.columns == want_columns, sql
            assert got.rows == want_rows, sql

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_selective_answers_identical_across_backends(
        self, typed_harness, backend
    ):
        """Zone pruning + selective decode must be backend-invariant."""
        spate, __, tables = typed_harness
        cdr_columns, cdr_rows = tables["CDR"]
        duration = cdr_columns.index("duration_s")
        durations = sorted(int(r[duration]) for r in cdr_rows)
        mid = durations[len(durations) * 3 // 4] if durations else 100
        spec = QuerySpec(
            table="CDR",
            select=(("CDR", "call_type"),),
            aggs=(Agg("COUNT"), Agg("SUM", "duration_s")),
            filters=(Filter("CDR", "duration_s", ">=", mid),),
            group_by=("call_type",),
        )
        sql = render_sql(spec)
        want_columns, want_rows = evaluate(spec, tables)
        spate.config = dataclasses.replace(spate.config, executor=backend)
        spate.executor = get_executor(backend, workers=2)
        try:
            db = spate.sql_database()
            got = db.execute(sql)
        finally:
            spate.config = dataclasses.replace(spate.config, executor="thread")
            spate.executor = get_executor("thread", workers=2)
        assert got.columns == want_columns
        assert got.rows == want_rows


def _three_way(db, tables, spec):
    """One spec through all three paths: vectorized engine, row engine,
    naive reference — byte-identical or bust."""
    sql = render_sql(spec)
    got = db.execute(sql)
    assert db.last_execution["engine"] == "vectorized", sql
    row = db.execute(sql, vectorized=False)
    assert got.columns == row.columns, sql
    assert got.rows == row.rows, f"vectorized != row engine\n{sql}"
    want_columns, want_rows = evaluate(spec, tables)
    assert got.columns == want_columns, sql
    assert got.rows == want_rows, f"engines != reference\n{sql}"


class TestDifferentialSqlV2:
    """Second-generation specs on the dense harness: multi-table joins
    (explicit and comma form), HAVING, ORDER BY ties, CASE, UNION —
    every one diffed three ways (vectorized, row engine, reference)."""

    SEEDS = range(300, 348)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_query_three_way(self, harness, seed):
        spate, db, tables = harness
        _three_way(db, tables, random_spec_v2(seed, tables))

    def test_join_order_permutations(self, harness):
        """The same three-table join written base-first from either fact
        table, in both explicit and comma form: four syntactic shapes,
        one cost-based planner, identical answers."""
        spate, db, tables = harness
        for base in ("CDR", "NMS"):
            key = "call_type" if base == "CDR" else "kpi"
            for implicit in (False, True):
                spec = QuerySpec(
                    table=base,
                    select=((base, key),),
                    aggs=(Agg("COUNT"),),
                    filters=(Filter("NMS", "drops", ">", 0),),
                    joins=CHAINS[base],
                    group_by=(key,),
                    implicit_join=implicit,
                )
                _three_way(db, tables, spec)

    def test_implicit_join_is_cost_reordered(self, harness):
        """The comma-form join must actually reach the cost-based
        reorder path: EXPLAIN shows the chosen order and the profile
        carries a JoinOrder note with per-step cardinalities."""
        spate, db, tables = harness
        spec = QuerySpec(
            table="CDR",
            select=(("CDR", "call_type"),),
            aggs=(Agg("COUNT"),),
            filters=(Filter("NMS", "kpi", "=", "drops"),),
            joins=CHAINS["CDR"],
            group_by=("call_type",),
            implicit_join=True,
        )
        sql = render_sql(spec)
        plan = db.explain(sql)
        assert "JoinOrder [" in plan
        assert "(cost-based)" in plan
        assert "est=~" in plan
        __, report = db.explain_analyze(sql)
        assert "plan JoinOrder" in report
        assert "cardinality" in report
        assert "engine: vectorized" in report

    def test_order_by_limit_ties(self, harness):
        """A leading key with heavy ties plus LIMIT: the stable sort
        must break ties by pre-sort order in all three paths."""
        spate, db, tables = harness
        spec = QuerySpec(
            table="CDR",
            select=(("CDR", "call_type"), ("CDR", "duration_s"),
                    ("CDR", "cell_id")),
            order_by=(OrderSpec("c0"),),
            limit=11,
        )
        _three_way(db, tables, spec)
        desc = dataclasses.replace(
            spec, order_by=(OrderSpec("c0", ascending=False),)
        )
        _three_way(db, tables, desc)

    def test_case_union_interaction(self, harness):
        """CASE-projected branches through UNION and UNION ALL with a
        trailing ORDER BY + LIMIT over the merged result."""
        spate, db, tables = harness
        branch = QuerySpec(
            table="NMS",
            select=(("NMS", "kpi"),),
            cases=(CaseSpec("NMS", "val", ">=", 10, "hi", "lo"),),
            filters=(Filter("NMS", "drops", ">=", 0),),
        )
        for union_all in (False, True):
            spec = QuerySpec(
                table="CDR",
                select=(("CDR", "call_type"),),
                cases=(CaseSpec("CDR", "duration_s", "<", 60, "hi", "lo"),),
                union=branch,
                union_all=union_all,
                order_by=(OrderSpec("k0"), OrderSpec("c0", ascending=False)),
                limit=17,
            )
            _three_way(db, tables, spec)

    def test_nullable_and_mixed_group_keys(self, harness):
        """GROUP BY over a column holding empty strings (storage NULLs)
        and numeric-looking strings of mixed formatting: grouping is on
        the raw cell, so "7" and "07" stay distinct groups and "" forms
        its own group."""
        spate, db, tables = harness
        db.register_table(
            "MIXED",
            ["k", "v"],
            [["7", "1"], ["07", "2"], ["", "3"], ["a", "4"],
             ["7", "5"], ["", "6"], ["a", ""]],
        )
        sql = (
            "SELECT k AS c0, COUNT(*) AS a0, SUM(v) AS a1, COUNT(v) AS a2 "
            "FROM MIXED GROUP BY k"
        )
        got = db.execute(sql)
        row = db.execute(sql, vectorized=False)
        assert got.columns == row.columns and got.rows == row.rows
        assert got.rows == [
            ["", 2, 9, 2],
            ["07", 1, 2, 1],
            ["7", 2, 6, 2],
            ["a", 2, 4, 1],  # SUM skips the NULL v; COUNT(v) drops it
        ]

    def test_fuzz_exercises_new_shapes(self, harness):
        """The v2 seed batch must actually cover every kind — a skewed
        rng choice could silently drop a whole feature from the gate."""
        spate, db, tables = harness
        kinds = {V2_KINDS[seed % len(V2_KINDS)] for seed in self.SEEDS}
        assert kinds == set(V2_KINDS)


class TestDifferentialSqlV2TypedChannel:
    """A v2 slice through typed-channel leaves: selective channel decode
    and zone maps under multi-join / ordered / union statements."""

    SEEDS = range(400, 412)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_query_three_way(self, typed_harness, seed):
        spate, db, tables = typed_harness
        _three_way(db, tables, random_spec_v2(seed, tables))


SHARD_EPOCHS = 16


def _build_sharded_pair(epochs: int = SHARD_EPOCHS):
    """The same trace in a 1-shard and a 3-shard warehouse.

    ``shards=1`` is the byte-identity reference: region grouping is
    fixed at 8 groups regardless of shard count, so scatter-gather over
    3 shards must merge back to exactly the single-shard answer.
    """
    trace = TraceConfig(scale=0.002, days=1, seed=99)

    def build(shards: int) -> ShardedSpate:
        generator = TelcoTraceGenerator(trace)
        spate = ShardedSpate(
            SpateConfig(
                sharding=ShardConfig(shards=shards, group_replication=2)
            )
        )
        spate.register_cells(generator.cells_table())
        for epoch in range(epochs):
            spate.ingest(generator.snapshot(epoch))
        spate.finalize()
        return spate

    return build(1), build(3)


@pytest.fixture(scope="module")
def shard_harness():
    """1-shard reference vs 3-shard scatter-gather over one trace."""
    single, sharded = _build_sharded_pair()
    tables = {
        name: single.read_rows(name, 0, SHARD_EPOCHS - 1)
        for name in ("CDR", "NMS")
    }
    cell_columns = ["cell_id", "x", "y"]
    cell_rows = [
        [cell_id, f"{p.x:.1f}", f"{p.y:.1f}"]
        for cell_id, p in single.cell_locations.items()
    ]
    tables["CELL"] = (cell_columns, cell_rows)
    dbs = {}
    for key, spate in (("single", single), ("sharded", sharded)):
        db = spate.sql_database()
        db.register_table("CELL", cell_columns, cell_rows)
        dbs[key] = db
    yield single, sharded, dbs, tables
    single.close()
    sharded.close()


class TestDifferentialSqlMultiShard:
    """Scatter-gather SQL must be byte-identical to single-shard — the
    same differential contract, now crossing the shard RPC layer with
    partial aggregation pushdown and coordinator merge in between."""

    #: Fresh seed range, disjoint from the dense (0-31) and
    #: typed-channel (100-115) batches.
    SEEDS = range(200, 216)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_query_matches_single_shard(self, shard_harness, seed):
        single, sharded, dbs, tables = shard_harness
        spec = random_spec(seed, tables)
        sql = render_sql(spec)
        got = dbs["sharded"].execute(sql)
        want = dbs["single"].execute(sql)
        assert got.columns == want.columns, sql
        assert got.rows == want.rows, sql
        # And both agree with the naive reference evaluation.
        ref_columns, ref_rows = evaluate(spec, tables)
        assert want.columns == ref_columns, sql
        assert want.rows == ref_rows, sql

    def test_identity_survives_shard_killed_mid_query(self, shard_harness):
        """Kill a shard a few RPCs into the scatter: with replication 2
        every group still has a live replica, so the SQL answer must
        stay byte-identical (failover, not degradation)."""
        single, sharded, dbs, tables = shard_harness
        spec = random_spec(201, tables)  # a grouped spec (201 % 4 == 1)
        sql = render_sql(spec)
        want = dbs["single"].execute(sql)

        state = {"rpcs": 0}

        def hook(shard_id: int, method: str) -> None:
            state["rpcs"] += 1
            if state["rpcs"] == 3 and sharded.workers[0].alive:
                sharded.kill_shard(0)

        sharded.client.before_invoke = hook
        try:
            got = dbs["sharded"].execute(sql)
        finally:
            sharded.client.before_invoke = None
        assert got.columns == want.columns
        assert got.rows == want.rows
        assert sharded.client.counters.failovers > 0
        sharded.recover_shard(0)
        again = dbs["sharded"].execute(sql)
        assert again.rows == want.rows

    V2_SEEDS = range(500, 508)

    @pytest.mark.parametrize("seed", V2_SEEDS)
    def test_v2_query_matches_single_shard(self, shard_harness, seed):
        """v2 shapes (multi-join, HAVING, ORDER BY, UNION) across the
        shard RPC layer: 3-shard scatter-gather == 1-shard == reference,
        on both engines."""
        single, sharded, dbs, tables = shard_harness
        spec = random_spec_v2(seed, tables)
        sql = render_sql(spec)
        got = dbs["sharded"].execute(sql)
        want = dbs["single"].execute(sql)
        assert got.columns == want.columns, sql
        assert got.rows == want.rows, sql
        row = dbs["sharded"].execute(sql, vectorized=False)
        assert got.rows == row.rows, sql
        ref_columns, ref_rows = evaluate(spec, tables)
        assert want.columns == ref_columns, sql
        assert want.rows == ref_rows, sql

    def test_vectorized_identity_interleaved_with_decay(self):
        """Run the engine diff, age the warehouse with the decay fungus,
        and diff again: the vectorized column feed must see exactly the
        leaves the row path sees at every decay state."""
        single, sharded = _build_sharded_pair(epochs=12)
        queries = [
            "SELECT call_type AS c0, COUNT(*) AS a0, SUM(duration_s) AS a1 "
            "FROM CDR GROUP BY call_type",
            "SELECT kpi AS c0, val AS c1 FROM NMS WHERE drops >= 0 "
            "ORDER BY c0 LIMIT 19",
            "SELECT cell_id AS c0 FROM CDR WHERE duration_s >= 30 "
            "UNION SELECT cellid AS c0 FROM NMS WHERE val > 5",
        ]
        try:
            for round_no in range(3):
                for spate in (single, sharded):
                    db = spate.sql_database()
                    for sql in queries:
                        got = db.execute(sql)
                        assert db.last_execution["engine"] == "vectorized"
                        row = db.execute(sql, vectorized=False)
                        assert got.columns == row.columns, sql
                        assert got.rows == row.rows, (round_no, sql)
                for sql in queries:
                    assert single.sql(sql).rows == sharded.sql(sql).rows
                if round_no == 0:
                    for spate in (single, sharded):
                        spate.decay_groups(
                            older_than_epoch=6, keep_fraction=0.25
                        )
                elif round_no == 1:
                    for spate in (single, sharded):
                        spate.run_decay()
        finally:
            single.close()
            sharded.close()

    def test_identity_survives_decay_and_fungus(self):
        """Run the decaying fungus on both warehouses (replicas age in
        lockstep) — the degraded relations must still match exactly."""
        single, sharded = _build_sharded_pair(epochs=12)
        try:
            for spate in (single, sharded):
                spate.decay_groups(older_than_epoch=6, keep_fraction=0.25)
            queries = [
                "SELECT call_type, COUNT(*) AS n FROM CDR GROUP BY call_type",
                "SELECT kpi, COUNT(*) AS n, SUM(val) AS total "
                "FROM NMS GROUP BY kpi",
                "SELECT cell_id, duration_s FROM CDR "
                "WHERE duration_s >= 30 LIMIT 25",
            ]
            for sql in queries:
                want = single.sql(sql)
                got = sharded.sql(sql)
                assert got.columns == want.columns, sql
                assert got.rows == want.rows, sql
        finally:
            single.close()
            sharded.close()


class TestDifferentialSqlSocketTransport:
    """The socket transport must be invisible to answers: a 2-shard
    warehouse whose workers are real processes behind the JSON-lines
    RPC must match the in-process single-shard reference byte for byte
    — including after the coordinator object is discarded and a fresh
    one reattaches to the surviving worker processes."""

    SOCKET_EPOCHS = 8
    SEEDS = (200, 203, 206, 501)

    @pytest.fixture(scope="class")
    def socket_harness(self):
        trace = TraceConfig(scale=0.002, days=1, seed=99)

        def build(shards: int, transport: str) -> ShardedSpate:
            generator = TelcoTraceGenerator(trace)
            spate = ShardedSpate(SpateConfig(sharding=ShardConfig(
                shards=shards, group_replication=2, transport=transport,
            )))
            spate.register_cells(generator.cells_table())
            for epoch in range(self.SOCKET_EPOCHS):
                spate.ingest(generator.snapshot(epoch))
            return spate

        single = build(1, "inline")
        socketed = build(2, "socket")
        tables = {
            name: single.read_rows(name, 0, self.SOCKET_EPOCHS - 1)
            for name in ("CDR", "NMS")
        }
        cell_columns = ["cell_id", "x", "y"]
        cell_rows = [
            [cell_id, f"{p.x:.1f}", f"{p.y:.1f}"]
            for cell_id, p in single.cell_locations.items()
        ]
        tables["CELL"] = (cell_columns, cell_rows)
        dbs = {}
        for key, spate in (("single", single), ("socket", socketed)):
            db = spate.sql_database()
            db.register_table("CELL", cell_columns, cell_rows)
            dbs[key] = db
        yield single, socketed, dbs, tables
        single.close()
        socketed.close()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_query_matches_inline_reference(self, socket_harness, seed):
        single, socketed, dbs, tables = socket_harness
        spec = (random_spec_v2 if seed >= 500 else random_spec)(seed, tables)
        sql = render_sql(spec)
        got = dbs["socket"].execute(sql)
        want = dbs["single"].execute(sql)
        assert got.columns == want.columns, sql
        assert got.rows == want.rows, sql
        ref_columns, ref_rows = evaluate(spec, tables)
        assert want.columns == ref_columns, sql
        assert want.rows == ref_rows, sql

    def test_coordinator_restart_keeps_answering(self, socket_harness):
        """Throw the coordinator object away mid-session, attach a new
        one to the live worker endpoints, resync, and re-run the
        differential: the answers must not move."""
        single, socketed, dbs, tables = socket_harness
        sql = (
            "SELECT call_type AS c0, COUNT(*) AS a0, SUM(duration_s) AS a1 "
            "FROM CDR GROUP BY call_type"
        )
        want = single.sql(sql)
        revived = ShardedSpate(
            socketed.config, worker_endpoints=socketed.worker_endpoints
        )
        try:
            summary = revived.resync()
            assert summary["frontier"] == self.SOCKET_EPOCHS - 1
            got = revived.sql(sql)
            assert got.columns == want.columns
            assert got.rows == want.rows
        finally:
            revived.close()
        # The original coordinator keeps working after the attacher
        # closed — close() only terminates processes it spawned.
        assert socketed.sql(sql).rows == want.rows
