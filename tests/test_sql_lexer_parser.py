"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.query.sql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Like,
    Literal,
    ScalarSubquery,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
    contains_aggregate,
)
from repro.query.sql.lexer import tokenize_sql
from repro.query.sql.parser import parse_sql


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize_sql("select FROM Where")
        assert [t.kind for t in tokens[:3]] == ["keyword"] * 3
        assert [t.value for t in tokens[:3]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        tokens = tokenize_sql("myTable")
        assert tokens[0].kind == "identifier"
        assert tokens[0].value == "myTable"

    def test_strings_both_quote_styles(self):
        tokens = tokenize_sql("'abc' \"def\"")
        assert [t.value for t in tokens[:2]] == ["abc", "def"]
        assert all(t.kind == "string" for t in tokens[:2])

    def test_numbers(self):
        tokens = tokenize_sql("42 3.14 .5")
        assert [t.value for t in tokens[:3]] == ["42", "3.14", ".5"]

    def test_qualified_name_not_a_float(self):
        tokens = tokenize_sql("t1.col")
        kinds = [(t.kind, t.value) for t in tokens[:3]]
        assert kinds == [("identifier", "t1"), ("op", "."), ("identifier", "col")]

    def test_two_char_operators(self):
        tokens = tokenize_sql("<= >= <> !=")
        assert [t.value for t in tokens[:4]] == ["<=", ">=", "<>", "!="]

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize_sql("SELECT 'oops")

    def test_illegal_character_raises(self):
        with pytest.raises(SqlSyntaxError, match="illegal"):
            tokenize_sql("SELECT @")

    def test_eof_token_terminates(self):
        tokens = tokenize_sql("x")
        assert tokens[-1].kind == "eof"


class TestParserBasics:
    def test_minimal_select(self):
        stmt = parse_sql("SELECT a FROM t")
        assert len(stmt.items) == 1
        assert isinstance(stmt.items[0].expression, ColumnRef)
        assert isinstance(stmt.from_item, TableRef)
        assert stmt.from_item.name == "t"

    def test_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert isinstance(stmt.items[0].expression, Star)

    def test_qualified_star(self):
        stmt = parse_sql("SELECT t.* FROM t")
        assert stmt.items[0].expression == Star(table="t")

    def test_aliases(self):
        stmt = parse_sql("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_item.alias == "u"

    def test_where_precedence_or_over_and(self):
        stmt = parse_sql("SELECT a FROM t WHERE p = 1 AND q = 2 OR r = 3")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.op == "OR"
        assert stmt.where.left.op == "AND"

    def test_arithmetic_precedence(self):
        stmt = parse_sql("SELECT a + b * c FROM t")
        expr = stmt.items[0].expression
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        stmt = parse_sql("SELECT (a + b) * c FROM t")
        assert stmt.items[0].expression.op == "*"

    def test_unary_minus_and_not(self):
        stmt = parse_sql("SELECT a FROM t WHERE NOT -a > 5")
        assert isinstance(stmt.where, UnaryOp)
        assert stmt.where.op == "NOT"

    def test_group_by_having_order_limit(self):
        stmt = parse_sql(
            "SELECT cell, COUNT(*) FROM t GROUP BY cell "
            "HAVING COUNT(*) > 2 ORDER BY cell DESC LIMIT 10"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 10

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_count_star_and_distinct(self):
        stmt = parse_sql("SELECT COUNT(*), COUNT(DISTINCT a) FROM t")
        first = stmt.items[0].expression
        second = stmt.items[1].expression
        assert isinstance(first, FunctionCall) and isinstance(first.args[0], Star)
        assert second.distinct

    def test_trailing_semicolon(self):
        assert parse_sql("SELECT a FROM t;") is not None

    def test_trailing_garbage_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t extra stuff here ,")

    def test_missing_from_table_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM")

    def test_select_without_from(self):
        stmt = parse_sql("SELECT 1 + 2")
        assert stmt.from_item is None


class TestParserPredicates:
    def test_between(self):
        stmt = parse_sql("SELECT a FROM t WHERE a BETWEEN 1 AND 10")
        assert isinstance(stmt.where, Between)
        assert not stmt.where.negated

    def test_not_between(self):
        stmt = parse_sql("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 10")
        assert stmt.where.negated

    def test_in_list(self):
        stmt = parse_sql("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, InList)
        assert len(stmt.where.items) == 3

    def test_in_subquery(self):
        stmt = parse_sql("SELECT a FROM t WHERE a IN (SELECT b FROM u)")
        assert stmt.where.subquery is not None

    def test_like(self):
        stmt = parse_sql("SELECT a FROM t WHERE a LIKE 'C%'")
        assert isinstance(stmt.where, Like)

    def test_like_requires_string(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t WHERE a LIKE 5")

    def test_is_null_and_is_not_null(self):
        null = parse_sql("SELECT a FROM t WHERE a IS NULL").where
        not_null = parse_sql("SELECT a FROM t WHERE a IS NOT NULL").where
        assert isinstance(null, IsNull) and not null.negated
        assert not_null.negated

    def test_scalar_subquery(self):
        stmt = parse_sql("SELECT a FROM t WHERE a = (SELECT MAX(b) FROM u)")
        assert isinstance(stmt.where.right, ScalarSubquery)


class TestParserJoins:
    def test_inner_join(self):
        stmt = parse_sql("SELECT * FROM a JOIN b ON a.x = b.y")
        assert isinstance(stmt.from_item, Join)
        assert stmt.from_item.kind == "inner"

    def test_explicit_inner_keyword(self):
        stmt = parse_sql("SELECT * FROM a INNER JOIN b ON a.x = b.y")
        assert stmt.from_item.kind == "inner"

    def test_left_join(self):
        stmt = parse_sql("SELECT * FROM a LEFT JOIN b ON a.x = b.y")
        assert stmt.from_item.kind == "left"

    def test_left_outer_join(self):
        stmt = parse_sql("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y")
        assert stmt.from_item.kind == "left"

    def test_cross_join_via_comma(self):
        stmt = parse_sql("SELECT * FROM a, b")
        assert stmt.from_item.kind == "cross"
        assert stmt.from_item.condition is None

    def test_join_requires_on(self):
        with pytest.raises(SqlSyntaxError, match="ON"):
            parse_sql("SELECT * FROM a JOIN b")

    def test_chained_joins(self):
        stmt = parse_sql(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        outer = stmt.from_item
        assert isinstance(outer, Join)
        assert isinstance(outer.left, Join)

    def test_from_subquery(self):
        stmt = parse_sql("SELECT * FROM (SELECT a FROM t) sub")
        assert isinstance(stmt.from_item, SubqueryRef)
        assert stmt.from_item.alias == "sub"

    def test_from_subquery_requires_alias(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM (SELECT a FROM t)")


class TestContainsAggregate:
    def test_detects_nested_aggregate(self):
        stmt = parse_sql("SELECT SUM(a) + 1 FROM t")
        assert contains_aggregate(stmt.items[0].expression)

    def test_plain_expression(self):
        stmt = parse_sql("SELECT a + 1 FROM t")
        assert not contains_aggregate(stmt.items[0].expression)

    def test_literal(self):
        assert not contains_aggregate(Literal(5))
