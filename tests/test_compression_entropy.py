"""Tests for the Shannon-entropy analysis (Figure 4's machinery)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.entropy import (
    attribute_entropies,
    byte_entropy,
    column_entropy,
    shannon_entropy,
    theoretical_best_ratio,
)


class TestShannonEntropy:
    def test_empty_sample(self):
        assert shannon_entropy([]) == 0.0

    def test_constant_sample_has_zero_entropy(self):
        assert shannon_entropy(["x"] * 100) == 0.0

    def test_fair_coin_is_one_bit(self):
        assert shannon_entropy([0, 1] * 500) == pytest.approx(1.0)

    def test_uniform_over_n_is_log2_n(self):
        values = list(range(16)) * 10
        assert shannon_entropy(values) == pytest.approx(4.0)

    def test_skew_reduces_entropy(self):
        skewed = shannon_entropy([0] * 95 + [1] * 5)
        assert 0.0 < skewed < 1.0

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_property_bounds(self, values):
        h = shannon_entropy(values)
        assert 0.0 <= h <= math.log2(len(set(values))) + 1e-9 if len(set(values)) > 1 else h == 0.0


class TestTableEntropy:
    ROWS = [
        ["a", "1", ""],
        ["a", "2", ""],
        ["a", "3", ""],
        ["b", "4", ""],
    ]

    def test_column_entropy(self):
        assert column_entropy(self.ROWS, 2) == 0.0
        assert column_entropy(self.ROWS, 1) == pytest.approx(2.0)

    def test_attribute_entropies_length(self):
        entropies = attribute_entropies(self.ROWS)
        assert len(entropies) == 3

    def test_empty_table(self):
        assert attribute_entropies([]) == []

    def test_byte_entropy_of_uniform_bytes(self):
        assert byte_entropy(bytes(range(256))) == pytest.approx(8.0)


class TestTheoreticalBestRatio:
    def test_constant_table_is_infinitely_compressible(self):
        rows = [["x", "y"]] * 50
        assert theoretical_best_ratio(rows) == float("inf")

    def test_ratio_exceeds_one_for_redundant_data(self):
        rows = [["OK", str(i % 4)] for i in range(200)]
        assert theoretical_best_ratio(rows) > 1.0

    def test_empty_table(self):
        assert theoretical_best_ratio([]) == 1.0
