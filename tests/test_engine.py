"""Tests for the mini parallel engine (context, dataset, shuffle)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import EngineContext
from repro.engine.partition import hash_partition, split_partitions
from repro.errors import EngineError


@pytest.fixture(scope="module")
def ctx():
    context = EngineContext(parallelism=4)
    yield context
    context.shutdown()


class TestPartitioning:
    def test_split_even(self):
        parts = split_partitions(list(range(8)), 4)
        assert [len(p) for p in parts] == [2, 2, 2, 2]

    def test_split_uneven(self):
        parts = split_partitions(list(range(10)), 4)
        assert [len(p) for p in parts] == [3, 3, 2, 2]
        assert [x for p in parts for x in p] == list(range(10))

    def test_fewer_items_than_partitions(self):
        parts = split_partitions([1, 2], 8)
        assert len(parts) == 2

    def test_empty_input_single_empty_partition(self):
        assert split_partitions([], 4) == [[]]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            split_partitions([1], 0)

    def test_hash_partition_stable(self):
        assert hash_partition("key", 7) == hash_partition("key", 7)
        assert 0 <= hash_partition("key", 7) < 7


class TestNarrowOps(object):
    def test_map(self, ctx):
        assert ctx.parallelize([1, 2, 3]).map(lambda x: x * 2).collect() == [2, 4, 6]

    def test_filter(self, ctx):
        data = ctx.parallelize(range(10)).filter(lambda x: x % 2 == 0)
        assert data.collect() == [0, 2, 4, 6, 8]

    def test_flat_map(self, ctx):
        data = ctx.parallelize([1, 2]).flat_map(lambda x: [x] * x)
        assert data.collect() == [1, 2, 2]

    def test_chained_pipeline_is_lazy_then_correct(self, ctx):
        data = (
            ctx.parallelize(range(100))
            .map(lambda x: x + 1)
            .filter(lambda x: x % 3 == 0)
            .map(str)
        )
        assert data.collect() == [str(x) for x in range(1, 101) if x % 3 == 0]

    def test_count_and_take(self, ctx):
        data = ctx.parallelize(range(50))
        assert data.count() == 50
        assert data.take(5) == [0, 1, 2, 3, 4]
        assert data.take(100) == list(range(50))

    def test_collect_preserves_order(self, ctx):
        assert ctx.parallelize(list(range(97))).collect() == list(range(97))


class TestActions:
    def test_reduce(self, ctx):
        assert ctx.parallelize(range(101)).reduce(lambda a, b: a + b) == 5050

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([]).reduce(lambda a, b: a + b)

    def test_aggregate(self, ctx):
        total, count = ctx.parallelize(range(10)).aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert (total, count) == (45, 10)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_property_reduce_matches_sum(self, values):
        with EngineContext(parallelism=3) as local:
            assert local.parallelize(values).reduce(lambda a, b: a + b) == sum(values)


class TestWideOps:
    def test_reduce_by_key(self, ctx):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)]
        result = dict(ctx.parallelize(pairs).reduce_by_key(lambda a, b: a + b).collect())
        assert result == {"a": 4, "b": 7, "c": 4}

    def test_group_by_key(self, ctx):
        pairs = [("x", 1), ("y", 2), ("x", 3)]
        result = dict(ctx.parallelize(pairs).group_by_key().collect())
        assert sorted(result["x"]) == [1, 3]
        assert result["y"] == [2]

    def test_map_values(self, ctx):
        pairs = [("a", 1), ("b", 2)]
        result = dict(ctx.parallelize(pairs).map_values(lambda v: v * 10).collect())
        assert result == {"a": 10, "b": 20}

    def test_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)])
        right = ctx.parallelize([("a", "x"), ("c", "y")])
        result = sorted(left.join(right).collect())
        assert result == [("a", (1, "x")), ("a", (3, "x"))]

    def test_distinct(self, ctx):
        assert sorted(ctx.parallelize([3, 1, 3, 2, 1]).distinct().collect()) == [1, 2, 3]

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(-50, 50)), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_property_reduce_by_key_matches_dict(self, pairs):
        expected: dict[int, int] = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0) + v
        with EngineContext(parallelism=3) as local:
            result = dict(
                local.parallelize(pairs).reduce_by_key(lambda a, b: a + b).collect()
            )
        assert result == expected


class TestContext:
    def test_from_partitions_preserves_layout(self):
        with EngineContext(parallelism=2) as local:
            data = local.from_partitions([[1, 2], [3], [4, 5, 6]])
            assert data.num_partitions == 3
            assert data.collect() == [1, 2, 3, 4, 5, 6]

    def test_shutdown_rejects_work(self):
        local = EngineContext(parallelism=2)
        local.shutdown()
        with pytest.raises(RuntimeError):
            local.parallelize([1, 2]).collect()

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            EngineContext(parallelism=0)
