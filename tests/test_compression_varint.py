"""Unit tests for the varint codec."""

import pytest
from hypothesis import given, strategies as st

from repro.compression.varint import decode_varint, encode_varint
from repro.errors import CorruptStreamError


class TestEncode:
    def test_small_values_are_one_byte(self):
        for value in (0, 1, 127):
            assert len(encode_varint(value)) == 1

    def test_128_needs_two_bytes(self):
        assert len(encode_varint(128)) == 2

    def test_specific_encoding(self):
        assert encode_varint(300) == bytes([0xAC, 0x02])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)


class TestDecode:
    def test_round_trip_with_offset(self):
        data = b"xx" + encode_varint(12345) + b"tail"
        value, pos = decode_varint(data, 2)
        assert value == 12345
        assert data[pos:] == b"tail"

    def test_truncated_raises(self):
        with pytest.raises(CorruptStreamError):
            decode_varint(bytes([0x80]))

    def test_empty_raises(self):
        with pytest.raises(CorruptStreamError):
            decode_varint(b"")

    def test_overlong_raises(self):
        with pytest.raises(CorruptStreamError):
            decode_varint(bytes([0x80] * 10 + [0x01]))

    @given(st.integers(0, 2**63 - 1))
    def test_property_round_trip(self, value):
        encoded = encode_varint(value)
        decoded, pos = decode_varint(encoded)
        assert decoded == value
        assert pos == len(encoded)

    @given(st.lists(st.integers(0, 2**40), min_size=1, max_size=20))
    def test_property_concatenated_stream(self, values):
        blob = b"".join(encode_varint(v) for v in values)
        pos = 0
        out = []
        for _ in values:
            value, pos = decode_varint(blob, pos)
            out.append(value)
        assert out == values
        assert pos == len(blob)
