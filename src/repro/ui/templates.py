"""Template queries from the SPATE-UI query bar (paper §VI-B).

The UI exposes presets — drop calls, downflux/upflux, heatmap
statistics such as RSSI intensity — each defined here as a SQL string
parameterized by a temporal window.
"""

from __future__ import annotations

from typing import Callable

from repro.query.sql import Database, QueryResult

#: name -> (description, SQL builder taking (first_ts, last_ts)).
QUERY_TEMPLATES: dict[str, tuple[str, Callable[[str, str], str]]] = {
    "drop_calls": (
        "Dropped calls per cell over the window",
        lambda first, last: (
            "SELECT cell_id, COUNT(*) AS drops FROM CDR "
            f"WHERE drop_flag = '1' AND ts >= '{first}' AND ts <= '{last}' "
            "GROUP BY cell_id ORDER BY drops DESC"
        ),
    ),
    "downflux_upflux": (
        "Total download/upload bytes per cell",
        lambda first, last: (
            "SELECT cell_id, SUM(downflux) AS down, SUM(upflux) AS up FROM CDR "
            f"WHERE ts >= '{first}' AND ts <= '{last}' "
            "GROUP BY cell_id ORDER BY down DESC"
        ),
    ),
    "rssi_heatmap": (
        "Mean RSSI per cell (heatmap source)",
        lambda first, last: (
            "SELECT cellid, AVG(val) AS rssi FROM NMS "
            f"WHERE kpi = 'rssi_avg' AND ts >= '{first}' AND ts <= '{last}' "
            "GROUP BY cellid"
        ),
    ),
    "congestion": (
        "Congestion counter totals per cell",
        lambda first, last: (
            "SELECT cellid, SUM(val) AS congestion FROM NMS "
            f"WHERE kpi = 'congestion' AND ts >= '{first}' AND ts <= '{last}' "
            "GROUP BY cellid ORDER BY congestion DESC"
        ),
    ),
    "measured_rssi": (
        "Mean measured RSSI per cell from MR reports (coverage check)",
        lambda first, last: (
            "SELECT cellid, AVG(rssi_dbm) AS rssi, COUNT(*) AS reports "
            f"FROM MR WHERE ts >= '{first}' AND ts <= '{last}' "
            "GROUP BY cellid ORDER BY rssi"
        ),
    ),
    "busiest_cells": (
        "Cells by session count",
        lambda first, last: (
            "SELECT cell_id, COUNT(*) AS sessions FROM CDR "
            f"WHERE ts >= '{first}' AND ts <= '{last}' "
            "GROUP BY cell_id ORDER BY sessions DESC LIMIT 20"
        ),
    ),
}


def run_template(
    db: Database, name: str, first_ts: str, last_ts: str
) -> QueryResult:
    """Execute a named template over a timestamp window.

    Raises:
        KeyError: for an unknown template name.
    """
    __, builder = QUERY_TEMPLATES[name]
    return db.execute(builder(first_ts, last_ts))
