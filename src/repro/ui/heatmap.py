"""Text heatmap rendering of spatial aggregates.

Rasterizes (cell centroid, value) pairs onto a character grid: the
terminal equivalent of the paper's coverage/RSSI heatmap overlays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.grid import UniformGrid

#: Intensity ramp, light to dark.
_RAMP = " .:-=+*#%@"


@dataclass
class HeatmapRenderer:
    """Renders value fields over a bounding box as ASCII art."""

    area: BoundingBox
    cols: int = 60
    rows: int = 20

    def render(self, samples: list[tuple[Point, float]], title: str = "") -> str:
        """Render mean-value-per-tile as intensity characters.

        Args:
            samples: (location, value) pairs; values are averaged per tile.
            title: optional heading line.
        """
        grid = UniformGrid(self.area, cols=self.cols, rows=self.rows)
        for point, value in samples:
            if self.area.contains(point):
                grid.insert(point, value)

        means: dict[tuple[int, int], float] = {}
        for row in range(self.rows):
            for col in range(self.cols):
                bucket = grid.bucket(col, row)
                if bucket:
                    means[(col, row)] = sum(bucket) / len(bucket)
        if means:
            lo = min(means.values())
            hi = max(means.values())
        else:
            lo = hi = 0.0
        span = (hi - lo) or 1.0

        lines: list[str] = []
        if title:
            lines.append(title)
        # Row 0 is the south edge; render north-up.
        for row in range(self.rows - 1, -1, -1):
            chars = []
            for col in range(self.cols):
                mean = means.get((col, row))
                if mean is None:
                    chars.append(" ")
                else:
                    idx = int((mean - lo) / span * (len(_RAMP) - 1))
                    chars.append(_RAMP[idx])
            lines.append("".join(chars))
        lines.append(f"[{lo:.1f} .. {hi:.1f}] over {len(samples)} samples")
        return "\n".join(lines)


def render_heatmap(
    samples: list[tuple[Point, float]],
    area: BoundingBox,
    cols: int = 60,
    rows: int = 20,
    title: str = "",
) -> str:
    """One-shot convenience wrapper around :class:`HeatmapRenderer`."""
    return HeatmapRenderer(area=area, cols=cols, rows=rows).render(samples, title=title)
