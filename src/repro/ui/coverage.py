"""Precomputed network coverage models (paper Figure 6).

SPATE-UI overlays "precomputed heatmap models" (predicted coverage)
against "the real network measurements" loaded from storage.  The
:class:`CoverageModel` rasterizes predicted RSSI over the service area
using the same log-distance propagation physics the trace generator
uses for MR records, so predicted-vs-measured comparisons are apples
to apples — large deltas indicate propagation faults (terrain, broken
antennas), exactly the use case the paper's UI query bar lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spatial.geometry import Point
from repro.telco.network import NetworkTopology
from repro.telco.radio import NOISE_FLOOR_DBM, received_power_dbm
from repro.ui.heatmap import HeatmapRenderer


@dataclass
class CoverageModel:
    """Predicted best-server RSSI over a grid of the service area."""

    topology: NetworkTopology
    cols: int = 48
    rows: int = 16
    _grid: dict[tuple[int, int], float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        area = self.topology.area
        tile_w = area.width / self.cols
        tile_h = area.height / self.rows
        for row in range(self.rows):
            for col in range(self.cols):
                center = Point(
                    area.min_x + (col + 0.5) * tile_w,
                    area.min_y + (row + 0.5) * tile_h,
                )
                self._grid[(col, row)] = self._best_rssi(center)

    def _best_rssi(self, point: Point) -> float:
        best = NOISE_FLOOR_DBM
        for antenna in self.topology.antennas:
            rssi = received_power_dbm(
                antenna.location.distance_to(point), antenna.tech
            )
            if rssi > best:
                best = rssi
        return best

    def predicted_rssi(self, point: Point) -> float:
        """Predicted best-server RSSI at a point (tile-resolution)."""
        area = self.topology.area
        if not area.contains(point):
            return NOISE_FLOOR_DBM
        col = min(
            int((point.x - area.min_x) / area.width * self.cols), self.cols - 1
        )
        row = min(
            int((point.y - area.min_y) / area.height * self.rows), self.rows - 1
        )
        return self._grid[(col, row)]

    def coverage_fraction(self, threshold_dbm: float = -105.0) -> float:
        """Fraction of tiles predicted above ``threshold_dbm``."""
        if not self._grid:
            return 0.0
        covered = sum(1 for v in self._grid.values() if v >= threshold_dbm)
        return covered / len(self._grid)

    def render(self) -> str:
        """ASCII heatmap of predicted coverage."""
        area = self.topology.area
        tile_w = area.width / self.cols
        tile_h = area.height / self.rows
        samples = [
            (
                Point(
                    area.min_x + (col + 0.5) * tile_w,
                    area.min_y + (row + 0.5) * tile_h,
                ),
                value,
            )
            for (col, row), value in self._grid.items()
        ]
        renderer = HeatmapRenderer(area, cols=self.cols, rows=self.rows)
        return renderer.render(samples, title="Predicted coverage (RSSI dBm)")

    def compare_with_measurements(
        self, measurements: list[tuple[Point, float]]
    ) -> "CoverageComparison":
        """Per-measurement predicted-vs-observed deltas.

        Args:
            measurements: (location, measured RSSI dBm) pairs, e.g.
                decoded from stored MR records.
        """
        deltas = [
            measured - self.predicted_rssi(point)
            for point, measured in measurements
        ]
        return CoverageComparison(deltas=deltas)


@dataclass
class CoverageComparison:
    """Summary of predicted-vs-measured RSSI deltas."""

    deltas: list[float]

    @property
    def count(self) -> int:
        """Number of compared measurements."""
        return len(self.deltas)

    @property
    def mean_delta_db(self) -> float:
        """Mean signed measured-minus-predicted delta."""
        return sum(self.deltas) / len(self.deltas) if self.deltas else 0.0

    @property
    def mean_abs_delta_db(self) -> float:
        """Mean absolute measured-vs-predicted delta."""
        return (
            sum(abs(d) for d in self.deltas) / len(self.deltas)
            if self.deltas
            else 0.0
        )

    def anomaly_fraction(self, threshold_db: float = 15.0) -> float:
        """Share of measurements deviating more than ``threshold_db``
        from the model — candidate propagation faults."""
        if not self.deltas:
            return 0.0
        return sum(1 for d in self.deltas if abs(d) > threshold_db) / len(self.deltas)
