"""Application-layer presentation: text heatmaps and query templates.

Substitutes the paper's Google-Maps SPATE-UI (Figure 6): the heatmap
renderer rasterizes per-cell aggregates over the service area, and the
template registry mirrors the UI's "query bar" presets (drop calls,
downflux/upflux, RSSI heatmaps).
"""

from repro.ui.cache import CachedExplorer
from repro.ui.coverage import CoverageComparison, CoverageModel
from repro.ui.heatmap import HeatmapRenderer, render_heatmap
from repro.ui.templates import QUERY_TEMPLATES, run_template

__all__ = [
    "CachedExplorer",
    "HeatmapRenderer",
    "render_heatmap",
    "CoverageModel",
    "CoverageComparison",
    "QUERY_TEMPLATES",
    "run_template",
]
