"""UI-side exploration cache (paper §VI-A).

"When users decide to focus on a smaller window within w, it is
considered as a data exploration query Q(a, b, w') with |w'| < |w|,
which can be served directly from the cache of the user interface."

:class:`CachedExplorer` wraps a SPATE instance: results are cached, and
a new query whose window is *contained* in a cached query's window
(same table, attributes and box) is answered by narrowing the cached
records — no storage access, the zoom-in path the paper describes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.index.highlights import NumericStats
from repro.query.explore import ExplorationQuery, ExplorationResult
from repro.spatial.geometry import BoundingBox


def _box_key(box: BoundingBox | None) -> tuple | None:
    if box is None:
        return None
    return (box.min_x, box.min_y, box.max_x, box.max_y)


@dataclass(frozen=True)
class _CacheKey:
    table: str
    attributes: tuple[str, ...]
    box: tuple | None


class CachedExplorer:
    """LRU exploration cache over one SPATE instance."""

    def __init__(self, spate, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._spate = spate
        self._capacity = capacity
        self._entries: OrderedDict[_CacheKey, ExplorationResult] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def explore(
        self,
        table: str,
        attributes: tuple[str, ...],
        box: BoundingBox | None,
        first_epoch: int,
        last_epoch: int,
    ) -> ExplorationResult:
        """Q(a, b, w), preferring a cached covering result."""
        key = _CacheKey(
            table=table, attributes=tuple(attributes), box=_box_key(box)
        )
        cached = self._entries.get(key)
        if cached is not None and self._covers(cached, first_epoch, last_epoch):
            self.hits += 1
            self._entries.move_to_end(key)
            return self._narrow(cached, first_epoch, last_epoch)
        self.misses += 1
        result = self._spate.explore(
            table, attributes, box, first_epoch, last_epoch
        )
        # Only record-bearing results can be narrowed later; summary-only
        # answers (decayed windows) are cached for exact repeats only.
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return result

    def invalidate(self) -> None:
        """Drop everything (call after new ingests or decay passes)."""
        self._entries.clear()

    @property
    def size(self) -> int:
        """Number of cached results."""
        return len(self._entries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _covers(cached: ExplorationResult, first: int, last: int) -> bool:
        query = cached.query
        if not (query.first_epoch <= first and last <= query.last_epoch):
            return False
        if query.first_epoch == first and query.last_epoch == last:
            return True
        # Narrowing needs exact records; a result that leaned on decayed
        # summaries can't be sliced by epoch.
        return not cached.used_decayed_data

    def _narrow(
        self, cached: ExplorationResult, first: int, last: int
    ) -> ExplorationResult:
        query = cached.query
        if query.first_epoch == first and query.last_epoch == last:
            return cached
        narrowed_query = ExplorationQuery(
            table=query.table,
            attributes=query.attributes,
            box=query.box,
            first_epoch=first,
            last_epoch=last,
        )
        records = [
            record
            for record in cached.records
            if first <= int(record[0]) <= last
        ]
        aggregates: dict[str, NumericStats] = {}
        for position, name in enumerate(cached.columns[1:], start=1):
            stats = NumericStats()
            for record in records:
                value = record[position]
                if value and value.lstrip("-").isdigit():
                    stats.add(int(value))
            if stats.count:
                aggregates[name] = stats
        return ExplorationResult(
            query=narrowed_query,
            columns=list(cached.columns),
            records=records,
            aggregates=aggregates,
            highlights=list(cached.highlights),
            resolution_by_day={"*": "cache"},
            snapshots_read=0,
        )
