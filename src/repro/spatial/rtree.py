"""R-tree with quadratic split (Guttman 1984).

Stores ``(BoundingBox, payload)`` entries; point data is stored as a
degenerate box.  Supports box-intersection queries, which is all the
leaf-level snapshot index needs (paper §V-A: "Each leaf node could
store an additional spatial index (e.g., R-tree or quad-tree variant)").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.spatial.geometry import BoundingBox, Point


@dataclass
class _Entry:
    box: BoundingBox
    payload: Any = None  # leaf entries
    child: "_Node | None" = None  # internal entries


@dataclass
class _Node:
    leaf: bool
    entries: list[_Entry] = field(default_factory=list)

    def bounds(self) -> BoundingBox:
        """Smallest box covering every entry of this node."""
        box = self.entries[0].box
        for entry in self.entries[1:]:
            box = box.union(entry.box)
        return box


class RTree:
    """Dynamic R-tree index over boxed payloads."""

    def __init__(self, max_entries: int = 8) -> None:
        """
        Args:
            max_entries: node fan-out M; minimum fill is ``M // 2``.
        """
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self._max = max_entries
        self._min = max_entries // 2
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, box: BoundingBox, payload: Any) -> None:
        """Insert a payload under ``box``."""
        entry = _Entry(box=box, payload=payload)
        split = self._insert(self._root, entry)
        if split is not None:
            old_root = self._root
            self._root = _Node(
                leaf=False,
                entries=[
                    _Entry(box=old_root.bounds(), child=old_root),
                    _Entry(box=split.bounds(), child=split),
                ],
            )
        self._size += 1

    def insert_point(self, point: Point, payload: Any) -> None:
        """Insert a point payload (degenerate box)."""
        self.insert(BoundingBox(point.x, point.y, point.x, point.y), payload)

    @classmethod
    def bulk_load(
        cls, entries: list[tuple[BoundingBox, Any]], max_entries: int = 8
    ) -> "RTree":
        """Build a packed R-tree with Sort-Tile-Recursive (STR) loading.

        STR sorts by x, slices into vertical strips, sorts each strip by
        y and packs full leaves — yielding near-100% node utilization
        and far better query performance than one-at-a-time insertion
        (the strategy SpatialHadoop uses for static partitions).
        """
        import math

        tree = cls(max_entries=max_entries)
        if not entries:
            return tree
        tree._size = len(entries)

        leaf_count = math.ceil(len(entries) / max_entries)
        strip_count = max(1, math.ceil(math.sqrt(leaf_count)))
        by_x = sorted(entries, key=lambda e: (e[0].min_x + e[0].max_x))
        strip_size = math.ceil(len(by_x) / strip_count)

        leaves: list[_Node] = []
        for s in range(0, len(by_x), strip_size):
            strip = sorted(
                by_x[s : s + strip_size],
                key=lambda e: (e[0].min_y + e[0].max_y),
            )
            for i in range(0, len(strip), max_entries):
                chunk = strip[i : i + max_entries]
                leaves.append(
                    _Node(
                        leaf=True,
                        entries=[_Entry(box=b, payload=p) for b, p in chunk],
                    )
                )

        level = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            for i in range(0, len(level), max_entries):
                children = level[i : i + max_entries]
                parents.append(
                    _Node(
                        leaf=False,
                        entries=[
                            _Entry(box=child.bounds(), child=child)
                            for child in children
                        ],
                    )
                )
            level = parents
        tree._root = level[0]
        return tree

    def delete(self, box: BoundingBox, payload: Any) -> bool:
        """Remove one entry matching ``(box, payload)`` exactly.

        Returns True when an entry was removed.  Underfull nodes are
        handled by reinserting their orphaned entries (Guttman's
        condense-tree), keeping queries exact after deletions.
        """
        orphans: list[_Entry] = []
        removed = self._delete(self._root, box, payload, orphans)
        if not removed:
            return False
        self._size -= 1
        # Collapse a root with a single internal child.
        while not self._root.leaf and len(self._root.entries) == 1:
            child = self._root.entries[0].child
            assert child is not None
            self._root = child
        if not self._root.entries and not self._root.leaf:
            self._root = _Node(leaf=True)
        for orphan in orphans:
            if orphan.child is not None:
                for leaf_box, leaf_payload in _collect(orphan.child):
                    self._size -= 1
                    self.insert(leaf_box, leaf_payload)
            else:
                self._size -= 1
                self.insert(orphan.box, orphan.payload)
        return True

    def _delete(
        self,
        node: _Node,
        box: BoundingBox,
        payload: Any,
        orphans: list[_Entry],
    ) -> bool:
        if node.leaf:
            for i, entry in enumerate(node.entries):
                if entry.box == box and entry.payload == payload:
                    del node.entries[i]
                    return True
            return False
        for i, entry in enumerate(node.entries):
            if not entry.box.intersects(box):
                continue
            assert entry.child is not None
            if self._delete(entry.child, box, payload, orphans):
                if len(entry.child.entries) < self._min:
                    # Orphan the underfull subtree for reinsertion.
                    orphans.extend(entry.child.entries)
                    del node.entries[i]
                else:
                    entry.box = entry.child.bounds()
                return True
        return False

    def query(self, box: BoundingBox) -> list[Any]:
        """Payloads whose boxes intersect ``box``."""
        return [entry.payload for entry in self._query_entries(self._root, box)]

    def query_count(self, box: BoundingBox) -> int:
        """Number of intersecting entries (no payload materialization)."""
        return sum(1 for __ in self._query_entries(self._root, box))

    def items(self) -> Iterator[tuple[BoundingBox, Any]]:
        """Iterate every (box, payload) pair."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if node.leaf:
                    yield entry.box, entry.payload
                else:
                    assert entry.child is not None
                    stack.append(entry.child)

    @property
    def depth(self) -> int:
        """Height of the tree (1 for a single leaf root)."""
        depth = 1
        node = self._root
        while not node.leaf:
            node = node.entries[0].child  # R-trees are height-balanced
            assert node is not None
            depth += 1
        return depth

    def _query_entries(self, node: _Node, box: BoundingBox) -> Iterator[_Entry]:
        for entry in node.entries:
            if not entry.box.intersects(box):
                continue
            if node.leaf:
                yield entry
            else:
                assert entry.child is not None
                yield from self._query_entries(entry.child, box)

    def _insert(self, node: _Node, entry: _Entry) -> _Node | None:
        """Insert recursively; returns a new sibling if ``node`` split."""
        if node.leaf:
            node.entries.append(entry)
        else:
            best = min(
                node.entries,
                key=lambda e: (e.box.enlargement(entry.box), e.box.area),
            )
            assert best.child is not None
            split = self._insert(best.child, entry)
            best.box = best.child.bounds()
            if split is not None:
                node.entries.append(_Entry(box=split.bounds(), child=split))
        if len(node.entries) > self._max:
            return self._split(node)
        return None

    def _split(self, node: _Node) -> _Node:
        """Quadratic split: seed with the most wasteful pair, then greedily
        assign each remaining entry to the group needing less enlargement."""
        entries = node.entries
        worst = -1.0
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i].box.union(entries[j].box).area
                    - entries[i].box.area
                    - entries[j].box.area
                )
                if waste > worst:
                    worst = waste
                    seeds = (i, j)

        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        box_a = group_a[0].box
        box_b = group_b[0].box
        rest = [e for k, e in enumerate(entries) if k not in seeds]
        for entry in rest:
            # Force assignment when one group must absorb all remaining
            # entries to reach minimum fill.
            remaining = len(rest) - (len(group_a) + len(group_b) - 2)
            if len(group_a) + remaining <= self._min:
                group_a.append(entry)
                box_a = box_a.union(entry.box)
                continue
            if len(group_b) + remaining <= self._min:
                group_b.append(entry)
                box_b = box_b.union(entry.box)
                continue
            grow_a = box_a.enlargement(entry.box)
            grow_b = box_b.enlargement(entry.box)
            if grow_a < grow_b or (grow_a == grow_b and box_a.area <= box_b.area):
                group_a.append(entry)
                box_a = box_a.union(entry.box)
            else:
                group_b.append(entry)
                box_b = box_b.union(entry.box)

        node.entries = group_a
        return _Node(leaf=node.leaf, entries=group_b)


def _collect(node: _Node):
    """All (box, payload) pairs in a subtree."""
    stack = [node]
    while stack:
        current = stack.pop()
        for entry in current.entries:
            if current.leaf:
                yield entry.box, entry.payload
            else:
                assert entry.child is not None
                stack.append(entry.child)
