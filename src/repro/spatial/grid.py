"""Uniform grid index: the cheapest spatial access method.

SPATE's highlights are aggregated per spatial grid tile at each temporal
resolution; a uniform grid gives O(1) tile lookup and a natural raster
for the heatmap renderer in :mod:`repro.ui`.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.spatial.geometry import BoundingBox, Point


class UniformGrid:
    """Fixed ``cols`` x ``rows`` grid of buckets over a bounding box."""

    def __init__(self, area: BoundingBox, cols: int = 32, rows: int = 32) -> None:
        if cols < 1 or rows < 1:
            raise ValueError("grid must have at least one column and row")
        if area.width <= 0 or area.height <= 0:
            raise ValueError("grid area must have positive extent")
        self.area = area
        self.cols = cols
        self.rows = rows
        self._buckets: dict[tuple[int, int], list[Any]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def tile_of(self, point: Point) -> tuple[int, int]:
        """(col, row) of the tile containing ``point``.

        Points on the max edge fold into the last tile.

        Raises:
            ValueError: if the point is outside the grid area.
        """
        if not self.area.contains(point):
            raise ValueError(f"{point} outside grid area")
        col = min(int((point.x - self.area.min_x) / self.area.width * self.cols), self.cols - 1)
        row = min(int((point.y - self.area.min_y) / self.area.height * self.rows), self.rows - 1)
        return col, row

    def tile_bounds(self, col: int, row: int) -> BoundingBox:
        """Geometry of tile (col, row)."""
        if not (0 <= col < self.cols and 0 <= row < self.rows):
            raise ValueError(f"tile ({col},{row}) out of range")
        tile_w = self.area.width / self.cols
        tile_h = self.area.height / self.rows
        min_x = self.area.min_x + col * tile_w
        min_y = self.area.min_y + row * tile_h
        return BoundingBox(min_x, min_y, min_x + tile_w, min_y + tile_h)

    def insert(self, point: Point, payload: Any = None) -> None:
        """Add a payload to the tile containing ``point``."""
        self._buckets.setdefault(self.tile_of(point), []).append(payload)
        self._size += 1

    def query(self, box: BoundingBox) -> list[Any]:
        """Payloads in tiles intersecting ``box`` (exact per-point filter
        is the caller's job; the grid is a coarse pre-filter)."""
        out: list[Any] = []
        for col, row in self.tiles_intersecting(box):
            out.extend(self._buckets.get((col, row), []))
        return out

    def tiles_intersecting(self, box: BoundingBox) -> Iterator[tuple[int, int]]:
        """Tile coordinates overlapping ``box``.

        The lower bounds are clamped into range like ``tile_of`` clamps
        max-edge points into the last tile — a box touching only the
        area's max edge must still cover that edge's tiles, or the grid
        would disagree with ``tile_of`` about edge points.
        """
        if not self.area.intersects(box):
            return
        lo_col = min(
            self.cols - 1,
            max(0, int((box.min_x - self.area.min_x) / self.area.width * self.cols)),
        )
        hi_col = min(
            self.cols - 1, int((box.max_x - self.area.min_x) / self.area.width * self.cols)
        )
        lo_row = min(
            self.rows - 1,
            max(0, int((box.min_y - self.area.min_y) / self.area.height * self.rows)),
        )
        hi_row = min(
            self.rows - 1, int((box.max_y - self.area.min_y) / self.area.height * self.rows)
        )
        for row in range(lo_row, hi_row + 1):
            for col in range(lo_col, hi_col + 1):
                yield col, row

    def bucket(self, col: int, row: int) -> list[Any]:
        """Direct tile contents (empty list for untouched tiles)."""
        return self._buckets.get((col, row), [])
