"""2-D geometry primitives: points and axis-aligned bounding boxes."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A point in metres within the service-area coordinate frame."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Degenerate boxes (zero width/height) are valid and behave as points
    or segments; inverted boxes are rejected.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"inverted bounding box ({self.min_x},{self.min_y})-"
                f"({self.max_x},{self.max_y})"
            )

    @classmethod
    def from_points(cls, points: list[Point]) -> "BoundingBox":
        """Smallest box containing every point; raises on an empty list."""
        if not points:
            raise ValueError("cannot bound zero points")
        return cls(
            min(p.x for p in points),
            min(p.y for p in points),
            max(p.x for p in points),
            max(p.y for p in points),
        )

    @classmethod
    def around(
        cls, center: Point, half_width: float, half_height: float | None = None
    ) -> "BoundingBox":
        """Box centred on ``center`` with the given half-extents."""
        if half_height is None:
            half_height = half_width
        return cls(
            center.x - half_width,
            center.y - half_height,
            center.x + half_width,
            center.y + half_height,
        )

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Covered area."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Geometric centre point."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        """Inclusive containment check."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """True when ``other`` lies entirely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True when the boxes share any point (touching counts)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box covering both."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expand_to(self, point: Point) -> "BoundingBox":
        """Smallest box covering this box and ``point``."""
        return BoundingBox(
            min(self.min_x, point.x),
            min(self.min_y, point.y),
            max(self.max_x, point.x),
            max(self.max_y, point.y),
        )

    def enlargement(self, other: "BoundingBox") -> float:
        """Area growth needed to absorb ``other`` (R-tree insert metric)."""
        return self.union(other).area - self.area
