"""Spatial primitives and indexes.

Provides the geometry types used across the library and two classic
spatial indexes — an R-tree and a PR quadtree — plus a uniform grid.
The paper discusses embedding a spatial index per leaf snapshot
(§V-A) but argues the storage cost outweighs the benefit for 30-minute
snapshots; our leaf-spatial ablation bench quantifies that trade-off.
"""

from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.rtree import RTree
from repro.spatial.quadtree import QuadTree
from repro.spatial.grid import UniformGrid

__all__ = ["BoundingBox", "Point", "RTree", "QuadTree", "UniformGrid"]
