"""Point-region (PR) quadtree over a fixed service area.

Used by the SHAHED baseline's aggregate index (SpatialHadoop partitions
space with quad-tree style tiles) and available as the per-leaf snapshot
index in SPATE's ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.spatial.geometry import BoundingBox, Point


@dataclass
class _QNode:
    box: BoundingBox
    points: list[tuple[Point, Any]] = field(default_factory=list)
    children: "list[_QNode] | None" = None

    @property
    def is_leaf(self) -> bool:
        """True for nodes without children."""
        return self.children is None


class QuadTree:
    """PR quadtree: leaves hold up to ``capacity`` points, then split."""

    def __init__(self, area: BoundingBox, capacity: int = 16, max_depth: int = 12) -> None:
        """
        Args:
            area: the fixed space covered by the root tile.
            capacity: points per leaf before splitting.
            max_depth: split limit; overflowing max-depth leaves grow
                unbounded rather than recursing forever on duplicates.
        """
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._root = _QNode(box=area)
        self._capacity = capacity
        self._max_depth = max_depth
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def area(self) -> BoundingBox:
        """The fixed space covered by the root tile."""
        return self._root.box

    def insert(self, point: Point, payload: Any = None) -> None:
        """Insert a point.

        Raises:
            ValueError: if the point lies outside the root area.
        """
        if not self._root.box.contains(point):
            raise ValueError(f"{point} outside quadtree area {self._root.box}")
        node = self._root
        depth = 0
        while not node.is_leaf:
            node = self._child_for(node, point)
            depth += 1
        node.points.append((point, payload))
        self._size += 1
        if len(node.points) > self._capacity and depth < self._max_depth:
            self._split(node)

    def query(self, box: BoundingBox) -> list[Any]:
        """Payloads of points inside ``box``."""
        return [payload for __, payload in self.query_points(box)]

    def query_points(self, box: BoundingBox) -> Iterator[tuple[Point, Any]]:
        """(point, payload) pairs inside ``box``."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(box):
                continue
            if node.is_leaf:
                for point, payload in node.points:
                    if box.contains(point):
                        yield point, payload
            else:
                stack.extend(node.children)

    def leaf_tiles(self) -> Iterator[BoundingBox]:
        """Every leaf tile's bounds (SHAHED-style spatial partitioning)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node.box
            else:
                stack.extend(node.children)

    @property
    def depth(self) -> int:
        """Maximum leaf depth (0 for a root-only tree)."""

        def walk(node: _QNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(child) for child in node.children)

        return walk(self._root)

    def _split(self, node: _QNode) -> None:
        box = node.box
        cx = (box.min_x + box.max_x) / 2.0
        cy = (box.min_y + box.max_y) / 2.0
        node.children = [
            _QNode(box=BoundingBox(box.min_x, box.min_y, cx, cy)),  # SW
            _QNode(box=BoundingBox(cx, box.min_y, box.max_x, cy)),  # SE
            _QNode(box=BoundingBox(box.min_x, cy, cx, box.max_y)),  # NW
            _QNode(box=BoundingBox(cx, cy, box.max_x, box.max_y)),  # NE
        ]
        points = node.points
        node.points = []
        for point, payload in points:
            self._child_for(node, point).points.append((point, payload))

    @staticmethod
    def _child_for(node: _QNode, point: Point) -> _QNode:
        assert node.children is not None
        box = node.box
        cx = (box.min_x + box.max_x) / 2.0
        cy = (box.min_y + box.max_y) / 2.0
        east = point.x > cx
        north = point.y > cy
        index = (2 if north else 0) + (1 if east else 0)
        return node.children[index]
