"""Schema and per-attribute generation specs for CDR / NMS / CELL files.

The paper (Figure 3) shows the first 10 of ~200 CDR attributes plus the
full 8-attribute NMS and 10-attribute CELL schemas, and Figure 4 plots
each attribute's Shannon entropy: most CDR attributes fall below 1 bit
(optional fields left blank, near-constant flags), a handful reach 3-5
bits, while NMS counters span up to ~10 bits.  Each attribute here
carries a distribution spec so the generator reproduces that entropy
profile — which is what determines the achievable compression ratios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

CDR_TABLE = "CDR"
NMS_TABLE = "NMS"
CELL_TABLE = "CELL"
MR_TABLE = "MR"


@dataclass(frozen=True)
class AttributeSpec:
    """How to generate one attribute's value.

    kind:
        - ``core``: filled in by the generator's domain logic (timestamps,
          ids, fluxes...); ``sample`` is never called.
        - ``blank``: always empty (the paper's zero-entropy optional fields).
        - ``constant``: a single fixed value (zero entropy).
        - ``categorical``: weighted choice over ``values``; skewed weights
          yield sub-1-bit entropies.
        - ``int_range``: uniform integer in ``[low, high]``.
        - ``int_skewed``: geometric-ish integer concentrated near ``low``.
    """

    name: str
    kind: str = "core"
    values: tuple[str, ...] = ()
    weights: tuple[float, ...] = ()
    low: int = 0
    high: int = 0

    def sample(self, rng: random.Random) -> str:
        """Draw one generated value for this attribute."""
        if self.kind == "blank":
            return ""
        if self.kind == "constant":
            return self.values[0]
        if self.kind == "categorical":
            return rng.choices(self.values, weights=self.weights or None)[0]
        if self.kind == "int_range":
            return str(rng.randint(self.low, self.high))
        if self.kind == "int_skewed":
            span = max(1, self.high - self.low)
            value = self.low + min(int(rng.expovariate(8.0 / span)), span)
            return str(value)
        raise ValueError(f"attribute {self.name!r} of kind {self.kind!r} "
                         "must be filled by the generator")


def _skewed(name: str, *values: str) -> AttributeSpec:
    """Categorical spec with a 90/…-style skew (entropy well below 1 bit)."""
    head = 0.92
    tail = (1.0 - head) / max(1, len(values) - 1)
    weights = (head,) + (tail,) * (len(values) - 1)
    return AttributeSpec(name=name, kind="categorical", values=values, weights=weights)


def _build_cdr_schema() -> list[AttributeSpec]:
    """~200 attributes: 14 core domain fields + operational filler whose
    entropy profile matches Figure 4 (left)."""
    core = [
        AttributeSpec("ts"),            # epoch-granular timestamp
        AttributeSpec("caller_id"),     # anonymized subscriber id
        AttributeSpec("callee_id"),
        AttributeSpec("cell_id"),       # serving cell at session start
        AttributeSpec("call_type"),     # voice / sms / data
        AttributeSpec("tech"),          # 2G / 3G / 4G
        AttributeSpec("duration_s"),
        AttributeSpec("upflux"),        # uploaded bytes
        AttributeSpec("downflux"),      # downloaded bytes
        AttributeSpec("result"),        # completion code
        AttributeSpec("drop_flag"),
        AttributeSpec("roaming"),
        AttributeSpec("plan_type"),
        AttributeSpec("record_id"),
    ]
    filler: list[AttributeSpec] = []
    # ~60 optional attributes left blank in this trace (entropy 0).
    for i in range(60):
        filler.append(AttributeSpec(f"opt_{i:03d}", kind="blank"))
    # ~30 constant config/version tags (entropy 0).
    for i in range(30):
        filler.append(AttributeSpec(f"cfg_{i:03d}", kind="constant", values=(f"v{i % 4}",)))
    # ~70 heavily skewed flags/codes (entropy < 1 bit).
    for i in range(70):
        filler.append(_skewed(f"flag_{i:03d}", "0", "1", "2"))
    # ~16 moderately diverse categorical codes (1-3 bits).
    for i in range(16):
        values = tuple(f"K{j}" for j in range(4 + (i % 5)))
        filler.append(AttributeSpec(
            f"code_{i:02d}", kind="categorical", values=values,
            weights=tuple(1.0 / (j + 1) for j in range(len(values))),
        ))
    # ~10 numeric measurement attributes (3-5 bits).
    for i in range(10):
        filler.append(AttributeSpec(f"meas_{i:02d}", kind="int_skewed", low=0, high=200))
    return core + filler


#: Full CDR schema, core attributes first (mirrors Figure 3's layout).
CDR_SCHEMA: list[AttributeSpec] = _build_cdr_schema()

#: NMS: aggregated per-cell network counters (8 attributes, Figure 3 centre).
NMS_SCHEMA: list[AttributeSpec] = [
    AttributeSpec("ts"),
    AttributeSpec("cellid"),
    AttributeSpec("kpi"),           # which counter this row reports
    AttributeSpec("val"),           # the counter value
    AttributeSpec("throughput_kbps"),
    AttributeSpec("attempts"),
    AttributeSpec("drops"),
    AttributeSpec("latency_ms"),
]

#: NMS KPI rotation — several report types per cell per epoch, which is
#: why NMS dominates the data volume (>97% per the paper).
NMS_KPIS: tuple[str, ...] = (
    "call_drop_rate", "call_duration_avg", "antenna_throughput",
    "handover_success", "rssi_avg", "paging_success",
    "channel_occupancy", "tx_power", "interference", "availability",
    "setup_time", "congestion", "packet_loss", "jitter",
    "attach_success", "bearer_drops", "dl_prb_util",
)

#: MR: per-session radio measurement reports (OSS's third part,
#: paper §II-B: "MR includes a variety of measurement reports (e.g.,
#: for estimating user location)").  RSSI values follow the
#: log-distance propagation model in :mod:`repro.telco.radio`.
MR_SCHEMA: list[AttributeSpec] = [
    AttributeSpec("ts"),
    AttributeSpec("user_id"),
    AttributeSpec("cellid"),
    AttributeSpec("rssi_dbm"),
    AttributeSpec("rsrq_db"),
    AttributeSpec("timing_advance"),
]

#: CELL: static cell descriptions (10 attributes, Figure 3 right).
CELL_SCHEMA: list[AttributeSpec] = [
    AttributeSpec("cell_id"),
    AttributeSpec("antenna_id"),
    AttributeSpec("controller_id"),
    AttributeSpec("tech"),
    AttributeSpec("x"),
    AttributeSpec("y"),
    AttributeSpec("azimuth"),
    AttributeSpec("range_m"),
    AttributeSpec("capacity"),
    AttributeSpec("site_name"),
]

#: Column-name lists, the form most call sites want.
CDR_COLUMNS: list[str] = [a.name for a in CDR_SCHEMA]
NMS_COLUMNS: list[str] = [a.name for a in NMS_SCHEMA]
CELL_COLUMNS: list[str] = [a.name for a in CELL_SCHEMA]
MR_COLUMNS: list[str] = [a.name for a in MR_SCHEMA]

#: CDR quasi-identifiers for the privacy task (T5).
CDR_QUASI_IDENTIFIERS: list[str] = ["cell_id", "plan_type", "tech", "call_type"]


@dataclass(frozen=True)
class SchemaInfo:
    """Bundle of a table's name and column list."""

    table: str
    columns: list[str] = field(default_factory=list)


ALL_SCHEMAS: dict[str, list[AttributeSpec]] = {
    CDR_TABLE: CDR_SCHEMA,
    NMS_TABLE: NMS_SCHEMA,
    CELL_TABLE: CELL_SCHEMA,
    MR_TABLE: MR_SCHEMA,
}
