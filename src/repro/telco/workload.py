"""Temporal workload model: diurnal and weekly load curves.

The paper partitions its one-week trace by arrival time into four day
periods (morning 5-12, afternoon 12-17, evening 17-21, night 21-5) and
into the seven weekdays, and shows per-partition ingestion time and
disk space (Figures 7-10).  This module defines those partitions and
the load multipliers that make the synthetic trace's volume vary the
same way.
"""

from __future__ import annotations

import math

from repro.core.snapshot import EPOCHS_PER_DAY, epoch_to_timestamp

#: Day-period name -> [start_hour, end_hour) in local time, paper §VII-C.
DAY_PERIODS: dict[str, tuple[int, int]] = {
    "morning": (5, 12),
    "afternoon": (12, 17),
    "evening": (17, 21),
    "night": (21, 5),  # wraps midnight
}

WEEKDAYS: tuple[str, ...] = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def day_period_of_hour(hour: int) -> str:
    """The paper's day-period containing ``hour`` (0-23)."""
    if not 0 <= hour < 24:
        raise ValueError(f"hour {hour} out of range")
    if 5 <= hour < 12:
        return "morning"
    if 12 <= hour < 17:
        return "afternoon"
    if 17 <= hour < 21:
        return "evening"
    return "night"


def day_period_of_epoch(epoch: int) -> str:
    """Day-period of an ingestion cycle."""
    return day_period_of_hour(epoch_to_timestamp(epoch).hour)


def weekday_of_epoch(epoch: int) -> str:
    """Weekday name ("Mon".."Sun") of an ingestion cycle."""
    return WEEKDAYS[epoch_to_timestamp(epoch).weekday()]


#: Relative activity level per weekday: weekdays busier than the
#: weekend for signalling-heavy traffic, Friday the peak.
_WEEKDAY_FACTOR: dict[str, float] = {
    "Mon": 1.00, "Tue": 1.02, "Wed": 1.04, "Thu": 1.05,
    "Fri": 1.12, "Sat": 0.88, "Sun": 0.78,
}


def diurnal_factor(hour: float) -> float:
    """Smooth daily activity curve.

    Calm overnight trough, morning ramp, midday plateau, evening peak —
    the classic telco traffic shape.  Normalized so the daily mean is
    roughly 1.0.
    """
    # Two harmonics: the main day/night cycle plus an evening bump.
    base = 1.0 + 0.55 * math.sin((hour - 9.0) / 24.0 * 2.0 * math.pi)
    evening = 0.25 * math.exp(-((hour - 19.0) ** 2) / 8.0)
    night_suppress = 0.35 if (hour < 5.0 or hour >= 23.0) else 0.0
    return max(0.12, base + evening - night_suppress)


def load_multiplier(epoch: int) -> float:
    """Combined weekday x time-of-day activity multiplier for an epoch."""
    when = epoch_to_timestamp(epoch)
    hour = when.hour + when.minute / 60.0
    return diurnal_factor(hour) * _WEEKDAY_FACTOR[WEEKDAYS[when.weekday()]]


def epochs_of_day_period(period: str, days: int = 7) -> list[int]:
    """All epochs (over ``days`` days from the origin) in a day period.

    Raises:
        KeyError: for an unknown period name.
    """
    if period not in DAY_PERIODS:
        raise KeyError(f"unknown day period {period!r}")
    return [
        epoch
        for epoch in range(days * EPOCHS_PER_DAY)
        if day_period_of_epoch(epoch) == period
    ]


def epochs_of_weekday(weekday: str, days: int = 7) -> list[int]:
    """All epochs falling on ``weekday`` within ``days`` days of trace."""
    if weekday not in WEEKDAYS:
        raise KeyError(f"unknown weekday {weekday!r}")
    return [
        epoch
        for epoch in range(days * EPOCHS_PER_DAY)
        if weekday_of_epoch(epoch) == weekday
    ]
