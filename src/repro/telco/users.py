"""Subscriber population and mobility model.

Each subscriber has a home antenna neighbourhood, an activity level
(drawn from a heavy-tailed distribution — a few subscribers generate
most sessions), and a simple Markov mobility model that moves them
between nearby cells across epochs.  Mobility is what makes the T4
self-join ("products that changed their location") non-trivial.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.telco.network import NetworkTopology


@dataclass
class Subscriber:
    """One anonymized subscriber."""

    user_id: str
    home_cell_index: int
    current_cell_index: int
    activity: float  # relative session rate
    plan_type: str
    mobility: float  # probability of moving to a neighbour cell per epoch


class UserPopulation:
    """Manages subscribers and steps their mobility each epoch."""

    PLAN_TYPES = ("prepaid", "postpaid", "business", "iot")
    _PLAN_WEIGHTS = (0.45, 0.40, 0.10, 0.05)

    def __init__(
        self,
        topology: NetworkTopology,
        n_users: int = 300_000,
        seed: int = 2017,
    ) -> None:
        """
        Args:
            topology: the radio network subscribers attach to.
            n_users: population size (paper: ~300K).
            seed: RNG seed for reproducibility.
        """
        if not topology.cells:
            raise ValueError("topology has no cells")
        self._topology = topology
        self._rng = random.Random(seed)
        self._neighbours = self._build_neighbour_table()
        self.subscribers: list[Subscriber] = []
        n_cells = len(topology.cells)
        for i in range(n_users):
            home = self._rng.randrange(n_cells)
            self.subscribers.append(
                Subscriber(
                    user_id=f"U{i:06d}",
                    home_cell_index=home,
                    current_cell_index=home,
                    # Pareto-ish activity: most users light, few heavy.
                    activity=min(self._rng.paretovariate(1.8), 20.0),
                    plan_type=self._rng.choices(
                        self.PLAN_TYPES, weights=self._PLAN_WEIGHTS
                    )[0],
                    mobility=self._rng.uniform(0.02, 0.35),
                )
            )
        # Precompute cumulative weights once: activities never change and
        # random.choices would otherwise rebuild them on every epoch.
        running = 0.0
        self._cum_weights: list[float] = []
        for sub in self.subscribers:
            running += sub.activity
            self._cum_weights.append(running)
        self._total_activity = running

    def _build_neighbour_table(self) -> list[list[int]]:
        """For each cell, the indexes of its ~6 nearest cells.

        Built on a coarse grid so construction is O(n) rather than the
        naive O(n^2) pairwise scan.
        """
        cells = self._topology.cells
        grid: dict[tuple[int, int], list[int]] = {}
        tile = 3000.0  # metres
        for idx, cell in enumerate(cells):
            key = (int(cell.centroid.x // tile), int(cell.centroid.y // tile))
            grid.setdefault(key, []).append(idx)
        neighbours: list[list[int]] = []
        for idx, cell in enumerate(cells):
            kx = int(cell.centroid.x // tile)
            ky = int(cell.centroid.y // tile)
            candidates: list[int] = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    candidates.extend(grid.get((kx + dx, ky + dy), []))
            candidates = [c for c in candidates if c != idx]
            candidates.sort(
                key=lambda c: cells[c].centroid.distance_to(cell.centroid)
            )
            neighbours.append(candidates[:6] or [idx])
        return neighbours

    def step_mobility(self) -> None:
        """Advance one epoch: each subscriber may hop to a neighbour cell,
        with a pull back towards home (so positions don't diffuse away)."""
        rng = self._rng
        for sub in self.subscribers:
            roll = rng.random()
            if roll < sub.mobility:
                options = self._neighbours[sub.current_cell_index]
                sub.current_cell_index = options[rng.randrange(len(options))]
            elif roll < sub.mobility + 0.05:
                sub.current_cell_index = sub.home_cell_index

    def sample_active(self, count: int) -> list[Subscriber]:
        """Draw ``count`` subscribers weighted by activity (with
        replacement — heavy users produce multiple sessions per epoch)."""
        if not self.subscribers:
            return []
        return self._rng.choices(
            self.subscribers,
            cum_weights=self._cum_weights,
            k=count,
        )

    def random_peer(self) -> Subscriber:
        """Uniform random subscriber (call destination)."""
        return self.subscribers[self._rng.randrange(len(self.subscribers))]
