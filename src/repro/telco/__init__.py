"""Synthetic telco substrate: network topology, users, and trace generation.

Substitutes the paper's proprietary 5 GB anonymized trace (1.7M CDR,
21M NMS, 3660 CELL records from 1192 antennas over ~6000 km², 300K
users, one week).  The generator is seeded and scale-parameterized: at
``scale=1.0`` it produces the paper's record counts; benchmarks default
to a smaller scale because the from-scratch codecs run in pure Python.
"""

from repro.telco.network import NetworkTopology, RadioTech
from repro.telco.generator import TelcoTraceGenerator, TraceConfig
from repro.telco.workload import (
    DAY_PERIODS,
    WEEKDAYS,
    day_period_of_epoch,
    load_multiplier,
    weekday_of_epoch,
)

__all__ = [
    "NetworkTopology",
    "RadioTech",
    "TelcoTraceGenerator",
    "TraceConfig",
    "DAY_PERIODS",
    "WEEKDAYS",
    "day_period_of_epoch",
    "weekday_of_epoch",
    "load_multiplier",
]
