"""Radio/core network topology model (paper §II-A, Figure 2).

Builds the physical side of a telco network: base stations of three
generations (GSM BTS, UMTS Node B, LTE eNode B) placed over a service
area, their controllers (BSC / RNC / MME), and the sector cells each
antenna serves.  Every generated record in the trace is linked to a
cell id; the cell's centroid gives the record its (x, y) used by the
spatial index.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from enum import Enum

from repro.spatial.geometry import BoundingBox, Point


class RadioTech(Enum):
    """Radio access technology generation."""

    GSM = "2G"  # BTS controlled by a BSC
    UMTS = "3G"  # Node B controlled by an RNC
    LTE = "4G"  # eNode B attached to an MME

    @property
    def base_station_kind(self) -> str:
        """Base-station name for this generation (BTS/NodeB/eNodeB)."""
        return {"2G": "BTS", "3G": "NodeB", "4G": "eNodeB"}[self.value]

    @property
    def controller_kind(self) -> str:
        """Controller name for this generation (BSC/RNC/MME)."""
        return {"2G": "BSC", "3G": "RNC", "4G": "MME"}[self.value]


@dataclass(frozen=True)
class Controller:
    """BSC / RNC / MME aggregating many base stations."""

    controller_id: str
    kind: str
    tech: RadioTech


@dataclass(frozen=True)
class Antenna:
    """One base station (BTS / Node B / eNode B)."""

    antenna_id: str
    tech: RadioTech
    location: Point
    controller_id: str
    sectors: int


@dataclass(frozen=True)
class Cell:
    """One sector cell served by an antenna.

    The cell covers an area around the antenna; records carry only the
    cell id, so the centroid is the finest spatial resolution available
    (the paper: "we can not talk about spatial data in the traditional
    sense").
    """

    cell_id: str
    antenna_id: str
    controller_id: str
    tech: RadioTech
    centroid: Point
    azimuth_deg: int
    range_m: int
    capacity_erlang: int


@dataclass
class NetworkTopology:
    """The full radio network: controllers, antennas, and cells."""

    area: BoundingBox
    controllers: list[Controller] = field(default_factory=list)
    antennas: list[Antenna] = field(default_factory=list)
    cells: list[Cell] = field(default_factory=list)

    _cells_by_id: dict[str, Cell] = field(default_factory=dict, repr=False)

    def cell(self, cell_id: str) -> Cell:
        """Look up a cell by id; raises ``KeyError`` for unknown ids."""
        return self._cells_by_id[cell_id]

    def cells_in(self, box: BoundingBox) -> list[Cell]:
        """Cells whose centroid lies inside ``box``."""
        return [c for c in self.cells if box.contains(c.centroid)]

    @classmethod
    def build(
        cls,
        n_antennas: int = 1192,
        area_km: tuple[float, float] = (100.0, 60.0),
        seed: int = 2017,
        hotspot_count: int = 5,
    ) -> "NetworkTopology":
        """Generate a topology shaped like the paper's deployment.

        Antennas cluster around ``hotspot_count`` city centres (dense
        urban cores) with a uniform rural remainder; each antenna serves
        1-4 sector cells, giving ~3660 cells for 1192 antennas, over an
        ``area_km`` service rectangle (~6000 km² by default).

        Args:
            n_antennas: number of base stations.
            area_km: (width, height) of the service area in kilometres.
            seed: RNG seed; same seed -> identical topology.
            hotspot_count: number of urban clusters.
        """
        rng = random.Random(seed)
        width_m = area_km[0] * 1000.0
        height_m = area_km[1] * 1000.0
        area = BoundingBox(0.0, 0.0, width_m, height_m)
        topo = cls(area=area)

        hotspots = [
            (
                rng.uniform(0.15, 0.85) * width_m,
                rng.uniform(0.15, 0.85) * height_m,
                rng.uniform(2000.0, 6000.0),  # cluster radius
            )
            for __ in range(hotspot_count)
        ]

        # Controllers: one BSC per ~150 GSM antennas, one RNC per ~100
        # UMTS antennas, one MME pool for LTE.
        tech_shares = [(RadioTech.GSM, 0.35), (RadioTech.UMTS, 0.40), (RadioTech.LTE, 0.25)]
        controller_capacity = {RadioTech.GSM: 150, RadioTech.UMTS: 100, RadioTech.LTE: 400}
        controller_pools: dict[RadioTech, list[Controller]] = {}
        for tech, share in tech_shares:
            count = max(1, math.ceil(n_antennas * share / controller_capacity[tech]))
            pool = [
                Controller(
                    controller_id=f"{tech.controller_kind}-{i:03d}",
                    kind=tech.controller_kind,
                    tech=tech,
                )
                for i in range(count)
            ]
            controller_pools[tech] = pool
            topo.controllers.extend(pool)

        cell_seq = 0
        for idx in range(n_antennas):
            roll = rng.random()
            cumulative = 0.0
            tech = RadioTech.GSM
            for candidate, share in tech_shares:
                cumulative += share
                if roll < cumulative:
                    tech = candidate
                    break

            # 70% of antennas live in a hotspot cluster, the rest are rural.
            if rng.random() < 0.70:
                cx, cy, radius = hotspots[rng.randrange(len(hotspots))]
                angle = rng.uniform(0.0, 2.0 * math.pi)
                dist = abs(rng.gauss(0.0, radius))
                x = min(max(cx + dist * math.cos(angle), 0.0), width_m)
                y = min(max(cy + dist * math.sin(angle), 0.0), height_m)
            else:
                x = rng.uniform(0.0, width_m)
                y = rng.uniform(0.0, height_m)

            controller = controller_pools[tech][idx % len(controller_pools[tech])]
            sectors = rng.choices([1, 2, 3, 4], weights=[10, 20, 55, 15])[0]
            antenna = Antenna(
                antenna_id=f"{tech.base_station_kind}-{idx:04d}",
                tech=tech,
                location=Point(x, y),
                controller_id=controller.controller_id,
                sectors=sectors,
            )
            topo.antennas.append(antenna)

            cell_range = {
                RadioTech.GSM: rng.randint(800, 3000),
                RadioTech.UMTS: rng.randint(400, 1500),
                RadioTech.LTE: rng.randint(200, 900),
            }[tech]
            for sector in range(sectors):
                azimuth = (360 // sectors) * sector
                offset = cell_range / 2.0
                rad = math.radians(azimuth)
                centroid = Point(
                    min(max(x + offset * math.cos(rad), 0.0), width_m),
                    min(max(y + offset * math.sin(rad), 0.0), height_m),
                )
                cell = Cell(
                    cell_id=f"C{cell_seq:05d}",
                    antenna_id=antenna.antenna_id,
                    controller_id=controller.controller_id,
                    tech=tech,
                    centroid=centroid,
                    azimuth_deg=azimuth,
                    range_m=cell_range,
                    capacity_erlang=rng.randint(20, 200),
                )
                topo.cells.append(cell)
                topo._cells_by_id[cell.cell_id] = cell
                cell_seq += 1

        return topo
