"""Seeded synthetic telco trace generator.

Produces the three file types the paper ingests — CDR, NMS, CELL — as
:class:`~repro.core.snapshot.Snapshot` batches, one per 30-minute
ingestion cycle.  At ``scale=1.0`` one week yields ~1.7M CDR and ~21M
NMS records from ~300K users over ~3660 cells, matching the paper's
trace; benchmarks run at smaller scales because the from-scratch codecs
are pure Python.

The generator is deterministic for a given ``TraceConfig`` (topology,
population and record sampling all derive from ``seed``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.snapshot import EPOCHS_PER_DAY, Snapshot, Table, epoch_to_timestamp
from repro.telco.network import NetworkTopology
from repro.telco.schema import (
    CDR_COLUMNS,
    CDR_SCHEMA,
    CDR_TABLE,
    CELL_COLUMNS,
    CELL_TABLE,
    MR_COLUMNS,
    MR_TABLE,
    NMS_COLUMNS,
    NMS_KPIS,
    NMS_TABLE,
)
from repro.telco.users import UserPopulation
from repro.telco.workload import load_multiplier

#: Paper-scale weekly volumes used to derive per-epoch base rates.
PAPER_CDR_PER_WEEK = 1_700_000
PAPER_NMS_PER_WEEK = 21_000_000
PAPER_USERS = 300_000
PAPER_ANTENNAS = 1192
_WEEK_EPOCHS = 7 * EPOCHS_PER_DAY


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for the synthetic trace.

    ``scale`` multiplies users, antennas and record rates together so a
    scaled trace keeps the paper's per-user and per-cell densities.
    """

    scale: float = 0.01
    seed: int = 2017
    days: int = 7
    area_km: tuple[float, float] = (100.0, 60.0)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.days < 1:
            raise ValueError("days must be at least 1")

    @property
    def n_users(self) -> int:
        """Scaled subscriber population size."""
        return max(20, int(PAPER_USERS * self.scale))

    @property
    def n_antennas(self) -> int:
        """Scaled base-station count."""
        return max(8, int(PAPER_ANTENNAS * self.scale))

    @property
    def cdr_per_epoch(self) -> int:
        """Baseline CDR records per ingestion cycle (before load curve)."""
        return max(5, int(PAPER_CDR_PER_WEEK * self.scale / _WEEK_EPOCHS))

    @property
    def nms_per_epoch(self) -> int:
        """Baseline NMS records per ingestion cycle (before load curve)."""
        return max(10, int(PAPER_NMS_PER_WEEK * self.scale / _WEEK_EPOCHS))


class TelcoTraceGenerator:
    """Generates CELL metadata and per-epoch CDR/NMS snapshots."""

    def __init__(self, config: TraceConfig | None = None) -> None:
        self.config = config or TraceConfig()
        self.topology = NetworkTopology.build(
            n_antennas=self.config.n_antennas,
            area_km=self.config.area_km,
            seed=self.config.seed,
        )
        self.population = UserPopulation(
            self.topology,
            n_users=self.config.n_users,
            seed=self.config.seed + 1,
        )
        self._next_record_id = 0
        self._last_stepped_epoch = -1

    def cells_table(self) -> Table:
        """The static CELL relation (one row per sector cell)."""
        table = Table(name=CELL_TABLE, columns=list(CELL_COLUMNS))
        for cell in self.topology.cells:
            table.append([
                cell.cell_id,
                cell.antenna_id,
                cell.controller_id,
                cell.tech.value,
                f"{cell.centroid.x:.1f}",
                f"{cell.centroid.y:.1f}",
                str(cell.azimuth_deg),
                str(cell.range_m),
                str(cell.capacity_erlang),
                f"site-{cell.antenna_id.lower()}",
            ])
        return table

    def snapshot(self, epoch: int) -> Snapshot:
        """Generate the data batch for one ingestion cycle.

        Record volume follows the diurnal/weekday load curve so the
        day-period and weekday experiments (Figures 7-10) see realistic
        variation.
        """
        rng = random.Random((self.config.seed << 20) ^ epoch)
        # Step mobility once per generated epoch, in order.
        if epoch > self._last_stepped_epoch:
            for __ in range(epoch - self._last_stepped_epoch):
                self.population.step_mobility()
            self._last_stepped_epoch = epoch

        load = load_multiplier(epoch)
        snapshot = Snapshot(epoch=epoch)
        cdr, sessions = self._generate_cdr(epoch, load, rng)
        snapshot.add_table(cdr)
        snapshot.add_table(self._generate_nms(epoch, load, rng))
        snapshot.add_table(self._generate_mr(epoch, sessions, rng))
        return snapshot

    def generate(self, epochs: list[int] | None = None) -> Iterator[Snapshot]:
        """Stream snapshots for ``epochs`` (default: the whole trace)."""
        if epochs is None:
            epochs = list(range(self.config.days * EPOCHS_PER_DAY))
        for epoch in epochs:
            yield self.snapshot(epoch)

    def _generate_cdr(
        self, epoch: int, load: float, rng: random.Random
    ) -> tuple[Table, list[tuple[str, "object"]]]:
        count = max(1, int(self.config.cdr_per_epoch * load))
        ts = epoch_to_timestamp(epoch).strftime("%Y%m%d%H%M")
        cells = self.topology.cells
        sessions: list[tuple[str, object]] = []
        table = Table(name=CDR_TABLE, columns=list(CDR_COLUMNS))
        call_types = ("voice", "data", "sms")
        call_weights = (0.35, 0.50, 0.15)
        results = ("OK", "BUSY", "NOANSWER", "FAIL")
        result_weights = (0.90, 0.04, 0.04, 0.02)
        filler_specs = CDR_SCHEMA[14:]
        for sub in self.population.sample_active(count):
            cell = cells[sub.current_cell_index]
            call_type = rng.choices(call_types, weights=call_weights)[0]
            # Durations and fluxes are quantized (billing-granular) so
            # their entropies land near Figure 4's CDR ceiling (~5 bits).
            duration = (
                int(rng.expovariate(1.0 / 95.0)) // 5 * 5
                if call_type != "sms"
                else 0
            )
            if call_type == "data":
                upflux = int(rng.expovariate(1.0 / 60.0)) * 1024
                downflux = int(rng.expovariate(1.0 / 400.0)) * 1024
            else:
                upflux = 0
                downflux = 0
            result = rng.choices(results, weights=result_weights)[0]
            dropped = "1" if (result == "OK" and rng.random() < 0.015) else "0"
            core = [
                ts,
                sub.user_id,
                self.population.random_peer().user_id,
                cell.cell_id,
                call_type,
                cell.tech.value,
                str(duration),
                str(upflux),
                str(downflux),
                result,
                dropped,
                "1" if rng.random() < 0.03 else "0",
                sub.plan_type,
                f"R{self._next_record_id:08d}",
            ]
            self._next_record_id += 1
            table.rows.append(core + [spec.sample(rng) for spec in filler_specs])
            sessions.append((sub.user_id, cell))
        return table, sessions

    def _generate_nms(self, epoch: int, load: float, rng: random.Random) -> Table:
        count = max(1, int(self.config.nms_per_epoch * load))
        ts = epoch_to_timestamp(epoch).strftime("%Y%m%d%H%M")
        cells = self.topology.cells
        table = Table(name=NMS_TABLE, columns=list(NMS_COLUMNS))
        n_cells = len(cells)
        n_kpis = len(NMS_KPIS)
        for i in range(count):
            # Rotate cells and KPIs so every cell reports every KPI over
            # the epoch, as a real OSS poller would.
            cell = cells[(i + epoch) % n_cells]
            kpi = NMS_KPIS[(i // n_cells + i) % n_kpis]
            # Counters are quantized the way real OSS reports are (the
            # paper's Figure 4 shows NMS attribute entropies <= ~3.5
            # bits): values snap to coarse steps and skew toward small
            # numbers, which is what makes NMS compress so well.
            val = min(int(rng.expovariate(0.5)), 15) * 10
            throughput = min(int(abs(rng.gauss(4.0, 2.5)) * load), 12) * 500
            attempts = min(int(rng.expovariate(0.25)), 12) * 5
            drops = min(int(rng.expovariate(1.2)), 8)
            latency = 20 + min(int(abs(rng.gauss(2.0, 1.5))), 7) * 10
            table.rows.append([
                ts,
                cell.cell_id,
                kpi,
                str(val),
                str(throughput),
                str(attempts),
                str(drops),
                str(latency),
            ])
        return table

    def _generate_mr(
        self, epoch: int, sessions: list[tuple[str, object]], rng: random.Random
    ) -> Table:
        """Measurement reports tied to the epoch's sessions.

        Each session yields 1-3 reports; the RSSI follows the
        log-distance propagation model from a position drawn inside the
        serving cell, so the UI's predicted-coverage model and these
        "real" measurements are physically consistent.
        """
        import math

        from repro.telco.radio import received_power_dbm

        ts = epoch_to_timestamp(epoch).strftime("%Y%m%d%H%M")
        table = Table(name=MR_TABLE, columns=list(MR_COLUMNS))
        for user_id, cell in sessions:
            for __ in range(rng.randint(1, 3)):
                # Position uniform-ish inside the serving cell's range.
                distance = cell.range_m * math.sqrt(rng.random())
                rssi = received_power_dbm(
                    distance, cell.tech, shadowing_db=rng.gauss(0.0, 4.0)
                )
                rsrq = -rng.randint(5, 19)
                timing_advance = int(distance // 78)  # LTE TA step ~78 m
                table.rows.append([
                    ts,
                    user_id,
                    cell.cell_id,
                    str(int(rssi)),
                    str(rsrq),
                    str(timing_advance),
                ])
        return table
