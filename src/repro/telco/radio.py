"""Radio propagation model shared by the generator and the UI.

A log-distance path-loss model: received power falls with
``10 * n * log10(distance)`` from the antenna's transmit power, with
technology-specific exponents (urban macro ~3.5).  The generator uses
it to synthesize measurement-report RSSI values; the UI's coverage
model uses the *same* physics to predict coverage, so comparing
predicted vs measured maps (paper Figure 6) is meaningful.
"""

from __future__ import annotations

import math

from repro.telco.network import RadioTech

#: Effective radiated power referenced at 1 m, dBm, per technology —
#: calibrated so a macro cell reads ~-90 dBm at 1 km, the realistic
#: mid-cell RSSI.
TX_POWER_DBM: dict[RadioTech, float] = {
    RadioTech.GSM: 18.0,
    RadioTech.UMTS: 14.0,
    RadioTech.LTE: 12.0,
}

#: Path-loss exponent per technology (higher frequency decays faster).
PATH_LOSS_EXPONENT: dict[RadioTech, float] = {
    RadioTech.GSM: 3.2,
    RadioTech.UMTS: 3.5,
    RadioTech.LTE: 3.7,
}

#: Receiver sensitivity floor; below this the signal is unusable.
NOISE_FLOOR_DBM = -120.0


def received_power_dbm(
    distance_m: float,
    tech: RadioTech,
    shadowing_db: float = 0.0,
) -> float:
    """Received signal strength at ``distance_m`` from an antenna.

    Args:
        distance_m: metres from the transmitter (clamped to >= 1).
        tech: radio technology (sets TX power and decay exponent).
        shadowing_db: log-normal shadowing term to add (0 for the
            deterministic prediction model).
    """
    distance = max(distance_m, 1.0)
    loss = 10.0 * PATH_LOSS_EXPONENT[tech] * math.log10(distance)
    rssi = TX_POWER_DBM[tech] - loss + shadowing_db
    return max(rssi, NOISE_FLOOR_DBM)


def usable(rssi_dbm: float, margin_db: float = 10.0) -> bool:
    """True when the signal clears the noise floor by ``margin_db``."""
    return rssi_dbm >= NOISE_FLOOR_DBM + margin_db
