"""Exception hierarchy for the SPATE reproduction.

Every error raised by the library derives from :class:`SpateError`, so
callers can catch one type at the integration boundary while still being
able to discriminate storage, index, query, and engine failures.
"""

from __future__ import annotations


class SpateError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(SpateError):
    """An invalid configuration value was supplied."""


class CompressionError(SpateError):
    """A codec failed to compress or decompress a payload."""


class CorruptStreamError(CompressionError):
    """A compressed stream failed validation (bad magic, checksum, length)."""


class StorageError(SpateError):
    """The simulated distributed filesystem rejected an operation."""


class FileNotFoundInDFSError(StorageError):
    """The requested path does not exist in the DFS namespace."""


class FileExistsInDFSError(StorageError):
    """Attempted to create a path that already exists."""


class ReplicationError(StorageError):
    """Not enough live datanodes to satisfy the replication factor."""


class BlockLostError(StorageError):
    """Every replica of a block is on a failed datanode."""


class ChecksumError(StorageError):
    """A stored block replica failed its CRC32 verification."""


class TransientWriteError(StorageError):
    """A replica write failed transiently (retryable, bounded backoff)."""


class LeafQuarantinedError(StorageError):
    """A snapshot leaf's blocks were found unrecoverable at recovery
    time; strict queries refuse it, ``partial_ok`` queries skip it."""


class RecoveryError(StorageError):
    """Warehouse metadata could not be recovered from durable state."""


class IndexError_(SpateError):
    """The temporal index rejected an operation (renamed to avoid builtin)."""


class DecayedDataError(IndexError_):
    """The requested data has been decayed (evicted) from the index."""


class OutOfOrderSnapshotError(IndexError_):
    """A snapshot arrived with a timestamp older than the index frontier."""


class QueryError(SpateError):
    """A data-exploration or SQL query is invalid or failed to execute."""


class QueryDeadlineError(QueryError):
    """A query exceeded its time budget in strict mode (``partial_ok``
    queries return a partial answer with a coverage report instead)."""


class SqlSyntaxError(QueryError):
    """The SQL text could not be parsed."""


class SqlPlanError(QueryError):
    """The parsed SQL statement could not be planned (unknown table/column)."""


class ServingError(SpateError):
    """The serving front-end (``repro.server``) refused a request."""


class AdmissionError(ServingError):
    """A request failed admission control (quota or overload)."""


class QuotaExceededError(AdmissionError):
    """The tenant's queued-request quota is exhausted."""


class ServerOverloadedError(AdmissionError):
    """The global waiting queue is full; the request was shed."""


class IngestBackpressureError(ServingError):
    """The bounded ingest queue is full and the append chose not to wait."""


class SessionClosedError(ServingError):
    """An append/query was submitted to a closed session or service."""


class ShuttingDownError(ServingError):
    """The server is draining in-flight work and refuses new requests."""


class ShardError(SpateError):
    """A shard-layer RPC or placement operation failed."""


class ShardUnavailableError(ShardError):
    """The target shard is dead, unreachable, or its breaker is open."""


class ShardTimeoutError(ShardError):
    """A shard RPC exceeded its per-call deadline slice."""


class PrivacyError(SpateError):
    """A privacy-sanitization request could not be satisfied."""


class AnonymityUnsatisfiableError(PrivacyError):
    """k-anonymity cannot be reached even with full generalization."""


class EngineError(SpateError):
    """The parallel execution engine failed a job."""
