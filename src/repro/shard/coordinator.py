"""Scatter-gather coordinator: a sharded warehouse that quacks like
:class:`~repro.core.spate.Spate`.

``ShardedSpate`` partitions every arriving snapshot by the hybrid
(cell-region, day) key into a FIXED number of region groups and fans
each group's sub-snapshot out to its replica set of worker shards
(:func:`~repro.shard.key.shards_for_group`: distinct shards per group).
Queries scatter to one live replica per group — primary first, failing
over down the chain — and gather with partial aggregation pushed down:
workers return per-epoch row groups, ready-merged ``NumericStats``,
and their own coverage/scan telemetry; the coordinator only
concatenates in deterministic (epoch, group-rank) order and merges
counters.

Because the group count is fixed and the merge order is deterministic,
answers are byte-identical for every shard count — ``ShardedSpate``
with ``shards=1`` is the single-shard reference the differential gate
compares against.  (Relative to a *plain* ``Spate``, rows within an
epoch are permuted by region group; aggregates, grouped queries, and
ordered queries agree, row order of unordered scans does not — which
is exactly why the gate pins the shard API's own N=1 as the truth.)

Degradation contract: with ``partial_ok``, a group whose whole replica
chain is down (dead, breaker open, or timed out) is *skipped* and
itemised in ``CoverageReport.shards_skipped`` with its reason; strict
queries raise instead.  Mutations that miss a dead shard are buffered
per shard and replayed, in order, by :meth:`recover_shard` after the
worker's WAL-replay restart — rejoin without stopping reads.

Routing: a query with a spatial footprint — an explore box, or SQL
cell-equality predicates pushed down by the planner — contacts only
the region groups whose grid tiles the footprint covers, always
including group 0 (unknown cells and cell-less tables live there, so
the candidate set is provably a superset of the groups holding
matching rows).  Routed-away groups are itemised in
``CoverageReport.groups_routed``; like pruning, routing never makes a
query incomplete.  A query with no footprint scatters to all groups.
"""

from __future__ import annotations

import threading

from repro.baselines.base import IngestStats
from repro.core.config import SpateConfig
from repro.core.metrics import WarehouseMetrics
from repro.core.snapshot import Snapshot, Table
from repro.errors import QueryError, ShardError
from repro.query.explore import (
    CoverageReport,
    ExplorationQuery,
    ExplorationResult,
)
from repro.query.leafscan import ScanStats
from repro.query.sql.planner import cell_equality_values
from repro.shard.key import (
    RegionMap,
    effective_replication,
    shards_for_group,
    groups_for_shard,
)
from repro.shard.rpc import (
    CircuitBreaker,
    DeadlineBudget,
    ShardClient,
    failure_reason,
)
from repro.shard.split import split_snapshot
from repro.shard.worker import ShardWorker
from repro.spatial.geometry import Point


def _coverage_from_dict(data: dict) -> CoverageReport:
    report = CoverageReport()
    report.epochs_served = list(data.get("epochs_served", []))
    report.epochs_skipped = dict(data.get("epochs_skipped", {}))
    report.epochs_pruned = list(data.get("epochs_pruned", []))
    report.deadline_hit = bool(data.get("deadline_hit", False))
    report.shards_skipped = dict(data.get("shards_skipped", {}))
    report.groups_routed = list(data.get("groups_routed", []))
    return report


def _coverage_to_dict(report: CoverageReport) -> dict:
    return {
        "epochs_served": list(report.epochs_served),
        "epochs_skipped": dict(report.epochs_skipped),
        "epochs_pruned": list(report.epochs_pruned),
        "deadline_hit": report.deadline_hit,
        "shards_skipped": dict(report.shards_skipped),
        "groups_routed": list(report.groups_routed),
    }


class ShardedSpate:
    """Thin scatter-gather client over N process-backed worker shards."""

    name = "SPATE-sharded"

    def __init__(
        self,
        config: SpateConfig | None = None,
        worker_endpoints: dict[int, tuple[str, int]] | None = None,
    ) -> None:
        self.config = config or SpateConfig()
        sharding = self.config.sharding
        self.shards = sharding.shards
        self.region_groups = sharding.region_groups
        self.replication = sharding.group_replication
        #: shards_for_group cannot place more distinct replicas than
        #: shards exist; this is the factor queries actually get.
        self.effective_replication = effective_replication(
            self.shards, self.replication
        )
        #: Worker processes this coordinator spawned (socket transport
        #: only).  Empty when attached to pre-existing endpoints — the
        #: spawner owns termination, an attacher never does.
        self._worker_processes: dict[int, object] = {}
        if sharding.transport == "socket":
            from repro.shard.transport import (
                SocketShardProxy,
                start_worker_process,
            )

            if worker_endpoints is None:
                endpoints: dict[int, tuple[str, int]] = {}
                for shard_id in range(self.shards):
                    process, port = start_worker_process(
                        shard_id, self.config
                    )
                    self._worker_processes[shard_id] = process
                    endpoints[shard_id] = ("127.0.0.1", port)
            else:
                endpoints = {
                    int(shard_id): (host, int(port))
                    for shard_id, (host, port) in worker_endpoints.items()
                }
            self.worker_endpoints: dict[int, tuple[str, int]] | None = (
                endpoints
            )
            self.workers = {
                shard_id: SocketShardProxy(shard_id, host, port)
                for shard_id, (host, port) in sorted(endpoints.items())
            }
        else:
            if worker_endpoints is not None:
                raise ShardError(
                    "worker_endpoints requires sharding.transport='socket' "
                    f"(got {sharding.transport!r})"
                )
            self.worker_endpoints = None
            self.workers = {
                shard_id: ShardWorker(
                    shard_id,
                    self.config,
                    groups_for_shard(
                        shard_id,
                        self.shards,
                        self.region_groups,
                        self.replication,
                    ),
                )
                for shard_id in range(self.shards)
            }
        self.client = ShardClient(self.workers, sharding)
        self.metrics = WarehouseMetrics()
        self.metrics.shard_replication_configured = self.replication
        self.metrics.shard_replication_effective = self.effective_replication
        #: Region-group routing switch.  Flips off when the region map
        #: is rebuilt after rows were already placed (the rebuilt map
        #: cannot be proven to match placement); tests flip it to force
        #: full scatter for routed-vs-full differential comparison.
        self.route_queries = True
        self.cell_locations: dict[str, Point] = {}
        self._region_map: RegionMap | None = None
        #: shard -> mutations it missed while dead, replayed on rejoin.
        self._missed: dict[int, list[tuple[str, tuple]]] = {}
        self._suspected: set[int] = set()
        self._miss_streak: dict[int, int] = {s: 0 for s in self.workers}
        self._tables_seen: set[str] = set()
        self._ingested: list[int] = []
        self._frontier = 0
        self._finalized = False
        self._scan_tls = threading.local()

    # ------------------------------------------------------------------
    # Thread-local scan telemetry (same contract as Spate's)
    # ------------------------------------------------------------------

    @property
    def last_scan_coverage(self) -> dict:
        coverage = getattr(self._scan_tls, "coverage", None)
        if coverage is None:
            coverage = {"epochs_served": [], "epochs_skipped": {}}
            self._scan_tls.coverage = coverage
        return coverage

    @last_scan_coverage.setter
    def last_scan_coverage(self, coverage: dict) -> None:
        self._scan_tls.coverage = coverage

    @property
    def last_scan_stats(self) -> ScanStats:
        stats = getattr(self._scan_tls, "stats", None)
        if stats is None:
            stats = ScanStats()
            self._scan_tls.stats = stats
        return stats

    @last_scan_stats.setter
    def last_scan_stats(self, stats: ScanStats) -> None:
        self._scan_tls.stats = stats

    def _deadline(self) -> DeadlineBudget | None:
        """The current SQL statement's budget (set by sql/explain)."""
        return getattr(self._scan_tls, "deadline", None)

    # ------------------------------------------------------------------
    # Placement and RPC plumbing
    # ------------------------------------------------------------------

    def _group_of_cell(self, cell_id: str) -> int:
        if self._region_map is None:
            return 0
        return self._region_map.group_of(cell_id)

    def _route_groups(
        self, box=None, table=None, predicates=None
    ) -> list[int]:
        """Candidate region groups for a query footprint: sorted and
        always containing group 0 (unknown cells and cell-less tables
        live there), so the set is provably a superset of the groups
        holding matching rows.  Every group when there is no usable
        footprint or routing is off."""
        full = list(range(self.region_groups))
        if not self.route_queries or self._region_map is None:
            return full
        if box is not None:
            return self._region_map.groups_for_box(box)
        if table is not None and predicates:
            values = cell_equality_values(table, predicates)
            if values:
                # Each pinned cell restricts the scan to {0, its group};
                # ANDed pins intersect (two different cells leave only
                # group 0's unknown-cell rows as possible matches).
                sets = [
                    set(self._region_map.groups_for_cells([value]))
                    for value in values
                ]
                return sorted(set.intersection(*sets) | {0})
        return full

    def _note_routed(self, coverage: CoverageReport, groups: list[int]) -> None:
        """Record the groups a restricted scatter routed away."""
        if len(groups) >= self.region_groups:
            return
        routed = [g for g in range(self.region_groups) if g not in groups]
        coverage.groups_routed = routed
        self.client.counters.inc("groups_routed", len(routed))

    def _chain(self, group: int) -> list[int]:
        """Replica chain for a group, heartbeat-suspected shards last."""
        chain = shards_for_group(group, self.shards, self.replication)
        healthy = [s for s in chain if s not in self._suspected]
        suspected = [s for s in chain if s in self._suspected]
        return healthy + suspected

    def _call_group(
        self, group: int, method: str, *args, deadline=None, **kwargs
    ):
        """Call one live replica of a group, failing over down the chain.

        Raises the last :class:`ShardError` when every replica is out;
        application errors from a *reached* shard propagate immediately
        (a deterministic answer must not be retried elsewhere).
        """
        chain = self._chain(group)
        last_exc: ShardError | None = None
        for position, shard_id in enumerate(chain):
            try:
                result = self.client.call(
                    shard_id, method, group, *args, deadline=deadline, **kwargs
                )
            except ShardError as exc:
                last_exc = exc
                continue
            if position:
                self.client.counters.inc("failovers")
            return result
        raise last_exc

    def _mutate_group(self, group: int, method: str, *args):
        """Apply a mutation on every hosting replica of a group,
        buffering it for shards that are unreachable.  Returns the
        first (primary-most) successful result, or None."""
        first_result = None
        got_one = False
        for shard_id in shards_for_group(group, self.shards, self.replication):
            try:
                result = self.client.call(shard_id, method, group, *args)
            except ShardError:
                self._missed.setdefault(shard_id, []).append(
                    (method, (group, *args))
                )
                continue
            if not got_one:
                first_result = result
                got_one = True
        return first_result

    # ------------------------------------------------------------------
    # Setup / ingest (the Framework write surface)
    # ------------------------------------------------------------------

    def register_cells(self, cells: Table) -> None:
        """Build the region map and fan the full CELL relation to every
        shard (each group store needs the whole service area)."""
        x_idx = cells.column_index("x")
        y_idx = cells.column_index("y")
        id_idx = cells.column_index("cell_id")
        for row in cells.rows:
            self.cell_locations[row[id_idx]] = Point(
                float(row[x_idx]), float(row[y_idx])
            )
        if self._ingested:
            # Rows are already placed by the previous map (or by the
            # no-map group-0 default); a rebuilt map cannot be proven
            # to match that placement, so routing — which trusts the
            # map — is disabled rather than risk missing rows.  Full
            # scatter stays correct regardless of placement.
            self.route_queries = False
        self._region_map = RegionMap(
            self.cell_locations,
            self.region_groups,
            layout=self.config.sharding.region_layout,
        )
        for shard_id in sorted(self.workers):
            try:
                self.client.call(shard_id, "register_cells", cells)
            except ShardError:
                self._missed.setdefault(shard_id, []).append(
                    ("register_cells", (cells,))
                )

    def ingest(self, snapshot: Snapshot) -> IngestStats:
        """Split by region group and fan out to each group's replicas.

        Sizes are summed over one copy per group (replicas store the
        same bytes again; the logical warehouse did not grow twice).
        """
        if self._finalized:
            raise QueryError(
                f"cannot ingest epoch {snapshot.epoch}: the stream is "
                "finalized (rollups are closed; open a new warehouse)"
            )
        subs = split_snapshot(
            snapshot, self._group_of_cell, self.region_groups
        )
        raw = stored = 0
        seconds = 0.0
        for group in range(self.region_groups):
            stats = self._mutate_group(group, "ingest", subs[group])
            if stats is not None:
                raw += stats.raw_bytes
                stored += stats.stored_bytes
                seconds += stats.seconds
        self._tables_seen.update(snapshot.tables)
        self._ingested.append(snapshot.epoch)
        if snapshot.epoch > self._frontier:
            self._frontier = snapshot.epoch
        self.metrics.on_ingest(
            records=snapshot.record_count(),
            raw_bytes=raw,
            stored_bytes=stored,
            seconds=seconds,
        )
        self.metrics.sync_shards(self.client.counters)
        return IngestStats(
            epoch=snapshot.epoch,
            seconds=seconds,
            raw_bytes=raw,
            stored_bytes=stored,
        )

    def finalize(self) -> None:
        if self._finalized:
            raise QueryError(
                "finalize() was already called on this warehouse "
                "(possibly before a crash); the stream is closed"
            )
        for group in range(self.region_groups):
            self._mutate_group(group, "finalize")
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def frontier_epoch(self) -> int:
        """Latest ingested epoch (the coordinator saw every ingest)."""
        return self._frontier

    def run_decay(self):
        """Force a decay pass on every group store (replicas included —
        they must age in lockstep)."""
        return [
            self._mutate_group(group, "run_decay")
            for group in range(self.region_groups)
        ]

    def decay_groups(self, older_than_epoch: int, keep_fraction: float = 0.25):
        """Apply the grouped-eviction fungus on every group store."""
        return [
            self._mutate_group(
                group, "decay_groups", older_than_epoch, keep_fraction
            )
            for group in range(self.region_groups)
        ]

    def heal(self):
        """Storage repair pass on every group store's DFS."""
        return [
            self._mutate_group(group, "heal")
            for group in range(self.region_groups)
        ]

    # ------------------------------------------------------------------
    # Chaos / recovery (shard ring membership)
    # ------------------------------------------------------------------

    def kill_shard(self, shard_id: int) -> None:
        """Crash one worker: its stores vanish, its DFS state stays."""
        self.workers[shard_id].kill()

    def recover_shard(self, shard_id: int) -> int:
        """Restart a dead worker (checkpoint + WAL replay per group
        store), replay the mutations it missed while down, reset its
        breaker, and un-suspect it.  Reads keep flowing on the replicas
        throughout.  Returns the number of replayed mutations."""
        worker = self.workers[shard_id]
        worker.restart()
        missed = self._missed.pop(shard_id, [])
        for method, args in missed:
            getattr(worker, method)(*args)
        sharding = self.config.sharding
        self.client.breakers[shard_id] = CircuitBreaker(
            sharding.breaker_threshold, sharding.breaker_cooldown_rpcs
        )
        self._suspected.discard(shard_id)
        self._miss_streak[shard_id] = 0
        self.client.counters.inc("recoveries")
        self.metrics.sync_shards(self.client.counters)
        return len(missed)

    # Alias mirroring the worker verb; chaos tooling uses either.
    restart_shard = recover_shard

    def heartbeat(self) -> dict[int, bool]:
        """Ping every shard; after ``heartbeat_miss_limit`` consecutive
        misses a shard is *suspected* and demoted to the back of every
        replica chain until it answers again (or is recovered)."""
        health = self.client.heartbeat()
        limit = self.config.sharding.heartbeat_miss_limit
        for shard_id, healthy in health.items():
            if healthy:
                self._miss_streak[shard_id] = 0
                self._suspected.discard(shard_id)
            else:
                self._miss_streak[shard_id] += 1
                if self._miss_streak[shard_id] >= limit:
                    self._suspected.add(shard_id)
        self.metrics.sync_shards(self.client.counters)
        return health

    # ------------------------------------------------------------------
    # Read surface (what the SQL layer and explore callers see)
    # ------------------------------------------------------------------

    def ingested_epochs(self) -> list[int]:
        """Live epochs, from any reachable replica of group 0 (groups
        ingest and decay in lockstep, so any group's answer is the
        warehouse's)."""
        try:
            return self._call_group(0, "ingested_epochs")
        except ShardError:
            return sorted(set(self._ingested))

    def table_columns(
        self, table: str, first_epoch: int, last_epoch: int
    ) -> list[str]:
        """Schema probe; any group knows every table's header."""
        for group in range(self.region_groups):
            try:
                columns = self._call_group(
                    group, "table_columns", table, first_epoch, last_epoch
                )
            except ShardError:
                continue
            if columns:
                return columns
        return []

    def read_rows_by_epoch(
        self,
        table: str,
        first_epoch: int,
        last_epoch: int,
        partial_ok: bool = False,
        predicates=None,
        columns=None,
    ) -> tuple[list[str], list[tuple[int, list[list[str]]]]]:
        """Scatter the scan to one live replica per group and gather
        per-epoch row groups in (epoch, group-rank) order."""
        deadline = self._deadline()
        merged_cov = CoverageReport()
        merged_stats = ScanStats()
        out_columns: list[str] = []
        per_epoch: dict[int, list[list[str]]] = {}
        groups = self._route_groups(table=table, predicates=predicates)
        self._note_routed(merged_cov, groups)
        for group in groups:
            try:
                gcols, g_by_epoch, gcov, gstats = self._call_group(
                    group,
                    "read_rows_by_epoch",
                    table,
                    first_epoch,
                    last_epoch,
                    partial_ok,
                    predicates,
                    columns,
                    deadline=deadline,
                )
            except ShardError as exc:
                if not partial_ok:
                    raise
                key = f"g{group}@s{self._chain(group)[0]}"
                merged_cov.shards_skipped[key] = failure_reason(exc)
                self.client.counters.inc("shards_skipped")
                continue
            if not out_columns and gcols:
                out_columns = list(gcols)
            for epoch, rows in g_by_epoch:
                per_epoch.setdefault(epoch, []).extend(rows)
            merged_cov.merge(_coverage_from_dict(gcov))
            merged_stats.merge(gstats)
        self.last_scan_coverage = _coverage_to_dict(merged_cov)
        self.last_scan_stats = merged_stats
        self.metrics.on_query_scan(merged_stats)
        self.metrics.sync_shards(self.client.counters)
        return out_columns, [
            (epoch, per_epoch[epoch]) for epoch in sorted(per_epoch)
        ]

    def read_rows(
        self,
        table: str,
        first_epoch: int,
        last_epoch: int,
        partial_ok: bool = False,
        predicates=None,
        columns=None,
    ) -> tuple[list[str], list[list[str]]]:
        out_columns, by_epoch = self.read_rows_by_epoch(
            table,
            first_epoch,
            last_epoch,
            partial_ok=partial_ok,
            predicates=predicates,
            columns=columns,
        )
        rows: list[list[str]] = []
        for __, chunk in by_epoch:
            rows.extend(chunk)
        return out_columns, rows

    def read_columns_by_epoch(
        self,
        table: str,
        first_epoch: int,
        last_epoch: int,
        partial_ok: bool = False,
        predicates=None,
        columns=None,
    ) -> tuple[list[str], list[tuple[int, list[list[str]]]]]:
        """Column-major scatter-gather: per-epoch column chunks merged
        by concatenating each column's cells in group-rank order — the
        transpose of :meth:`read_rows_by_epoch`, byte for byte."""
        deadline = self._deadline()
        merged_cov = CoverageReport()
        merged_stats = ScanStats()
        out_columns: list[str] = []
        per_epoch: dict[int, list[list[str]]] = {}
        groups = self._route_groups(table=table, predicates=predicates)
        self._note_routed(merged_cov, groups)
        for group in groups:
            try:
                gcols, g_by_epoch, gcov, gstats = self._call_group(
                    group,
                    "read_columns_by_epoch",
                    table,
                    first_epoch,
                    last_epoch,
                    partial_ok,
                    predicates,
                    columns,
                    deadline=deadline,
                )
            except ShardError as exc:
                if not partial_ok:
                    raise
                key = f"g{group}@s{self._chain(group)[0]}"
                merged_cov.shards_skipped[key] = failure_reason(exc)
                self.client.counters.inc("shards_skipped")
                continue
            if not out_columns and gcols:
                out_columns = list(gcols)
            for epoch, chunk in g_by_epoch:
                existing = per_epoch.get(epoch)
                if existing is None:
                    per_epoch[epoch] = [list(cells) for cells in chunk]
                    continue
                for c, cells in enumerate(chunk):
                    if c < len(existing):
                        existing[c].extend(cells)
                    else:
                        existing.append(list(cells))
            merged_cov.merge(_coverage_from_dict(gcov))
            merged_stats.merge(gstats)
        self.last_scan_coverage = _coverage_to_dict(merged_cov)
        self.last_scan_stats = merged_stats
        self.metrics.on_query_scan(merged_stats)
        self.metrics.sync_shards(self.client.counters)
        return out_columns, [
            (epoch, per_epoch[epoch]) for epoch in sorted(per_epoch)
        ]

    def read_columns(
        self,
        table: str,
        first_epoch: int,
        last_epoch: int,
        partial_ok: bool = False,
        predicates=None,
        columns=None,
    ) -> tuple[list[str], list[list[str]]]:
        out_columns, by_epoch = self.read_columns_by_epoch(
            table,
            first_epoch,
            last_epoch,
            partial_ok=partial_ok,
            predicates=predicates,
            columns=columns,
        )
        data: list[list[str]] = [[] for __ in out_columns]
        for __, chunk in by_epoch:
            n_rows = len(chunk[0]) if chunk else 0
            for c in range(len(out_columns)):
                if c < len(chunk):
                    data[c].extend(chunk[c])
                else:
                    data[c].extend([""] * n_rows)
        return out_columns, data

    def table_statistics(self, table: str, first_epoch: int, last_epoch: int):
        """Planner statistics merged across all reachable groups (row
        counts add, bounds widen, distincts stay a lower bound).  Purely
        advisory: an unreachable group degrades the estimate, never the
        answer, so shard errors are swallowed."""
        merged = None
        for group in range(self.region_groups):
            try:
                stats = self._call_group(
                    group, "table_statistics", table, first_epoch, last_epoch
                )
            except ShardError:
                continue
            if stats is None:
                continue
            if merged is None:
                merged = stats
            else:
                merged.merge(stats)
        return merged

    def explore(
        self,
        table: str,
        attributes: tuple,
        box,
        first_epoch: int,
        last_epoch: int,
        coarse: bool = False,
        partial_ok: bool = False,
        deadline_ms: int | None = None,
    ) -> ExplorationResult:
        """Scatter Q(a, b, w) per group, gather with pushed-down partial
        aggregation: workers return merged ``NumericStats`` per
        attribute, the coordinator only merges accumulators and
        concatenates records in (epoch, group-rank) order."""
        if deadline_ms is None:
            deadline_ms = self.config.query_deadline_ms
        deadline = DeadlineBudget(deadline_ms or None)
        query = ExplorationQuery(
            table=table,
            attributes=tuple(attributes),
            box=box,
            first_epoch=first_epoch,
            last_epoch=last_epoch,
        )
        merged = ExplorationResult(query=query)
        per_epoch: dict[int, list[list[str]]] = {}
        groups = self._route_groups(box=box)
        self._note_routed(merged.coverage, groups)
        for group in groups:
            try:
                result = self._call_group(
                    group,
                    "explore",
                    table,
                    tuple(attributes),
                    box,
                    first_epoch,
                    last_epoch,
                    coarse,
                    partial_ok,
                    deadline.remaining_ms(),
                    deadline=deadline,
                )
            except ShardError as exc:
                if not partial_ok:
                    raise
                key = f"g{group}@s{self._chain(group)[0]}"
                merged.coverage.shards_skipped[key] = failure_reason(exc)
                self.client.counters.inc("shards_skipped")
                continue
            if not merged.columns and result.columns:
                merged.columns = list(result.columns)
            for record in result.records:
                per_epoch.setdefault(int(record[0]), []).append(record)
            for name, stats in result.aggregates.items():
                mine = merged.aggregates.get(name)
                if mine is None:
                    merged.aggregates[name] = stats.copy()
                else:
                    mine.merge(stats)
            merged.highlights.extend(result.highlights)
            for day, resolution in result.resolution_by_day.items():
                merged.resolution_by_day.setdefault(day, resolution)
            merged.snapshots_read += result.snapshots_read
            merged.coverage.merge(result.coverage)
            merged.scan_stats.merge(result.scan_stats)
        merged.records = [
            record
            for epoch in sorted(per_epoch)
            for record in per_epoch[epoch]
        ]
        self.metrics.on_explore(merged.snapshots_read, merged.used_decayed_data)
        self.metrics.on_query_scan(merged.scan_stats)
        if partial_ok and not merged.coverage.complete:
            self.metrics.on_degraded_query(
                epochs_skipped=len(merged.coverage.epochs_skipped),
                deadline_hit=merged.coverage.deadline_hit,
            )
        self.metrics.sync_shards(self.client.counters)
        return merged

    def highlights(self, first_epoch: int, last_epoch: int):
        """Detected highlights across all groups, group-rank order."""
        out = []
        for group in range(self.region_groups):
            out.extend(
                self._call_group(group, "highlights", first_epoch, last_epoch)
            )
        return out

    # ------------------------------------------------------------------
    # SQL surface
    # ------------------------------------------------------------------

    def sql_database(
        self,
        first_epoch: int | None = None,
        last_epoch: int | None = None,
        partial_ok: bool = False,
        tables: list[str] | None = None,
    ):
        from repro.query.sql.executor import Database

        first = 0 if first_epoch is None else first_epoch
        last = self._frontier if last_epoch is None else last_epoch
        names = tables or sorted(self._tables_seen)
        db = Database()
        db.metrics = self.metrics
        db.register_framework_scan(
            self, list(names), first, last, partial_ok=partial_ok
        )
        return db

    def sql(
        self,
        query: str,
        first_epoch: int | None = None,
        last_epoch: int | None = None,
        deadline_ms: int | None = None,
        partial_ok: bool = False,
    ):
        db = self.sql_database(first_epoch, last_epoch, partial_ok=partial_ok)
        if deadline_ms is None:
            deadline_ms = self.config.query_deadline_ms or None
        # One budget spans parse-to-output AND every shard RPC slice the
        # scans fan out (picked up thread-locally by read_rows_by_epoch).
        # Save/restore rather than clear: a nested sql() on the same
        # thread must not strip the outer statement's budget.
        previous = getattr(self._scan_tls, "deadline", None)
        self._scan_tls.deadline = DeadlineBudget(deadline_ms)
        try:
            return db.execute(query, deadline_ms=deadline_ms)
        finally:
            self._scan_tls.deadline = previous

    def explain(
        self,
        query: str,
        first_epoch: int | None = None,
        last_epoch: int | None = None,
        deadline_ms: int | None = None,
        partial_ok: bool = False,
    ) -> str:
        db = self.sql_database(first_epoch, last_epoch, partial_ok=partial_ok)
        if deadline_ms is None:
            deadline_ms = self.config.query_deadline_ms or None
        previous = getattr(self._scan_tls, "deadline", None)
        self._scan_tls.deadline = DeadlineBudget(deadline_ms)
        try:
            __, report = db.explain_analyze(query, deadline_ms=deadline_ms)
        finally:
            self._scan_tls.deadline = previous
        return report

    # ------------------------------------------------------------------
    # Coordinator restart (socket transport)
    # ------------------------------------------------------------------

    def resync(self) -> dict:
        """Rebuild coordinator bookkeeping from live workers after
        attaching to surviving socket endpoints: the worker processes
        outlived the old coordinator, its in-memory frontier and table
        registry did not.  Group stores ingest in lockstep, so group 0
        speaks for the warehouse.  Routing stays off until cells are
        re-registered — and stays off even then, because the rebuilt
        map cannot be proven to match the old coordinator's placement;
        a reattached coordinator answers by full scatter, which is
        correct for any placement.  Returns a small summary dict."""
        epochs = self._call_group(0, "ingested_epochs")
        self._ingested = sorted(epochs)
        self._frontier = max(epochs, default=0)
        tables = self._call_group(0, "known_tables")
        self._tables_seen.update(tables)
        self.metrics.sync_shards(self.client.counters)
        return {
            "epochs": len(self._ingested),
            "frontier": self._frontier,
            "tables": sorted(self._tables_seen),
        }

    def close(self) -> None:
        """Close RPC resources; terminate worker processes only if this
        coordinator spawned them (an attacher leaves them serving)."""
        self.client.close()
        for process in self._worker_processes.values():
            process.terminate()
            process.join(timeout=5.0)
        self._worker_processes.clear()


__all__ = ["ShardedSpate"]
