"""Scatter-gather coordinator: a sharded warehouse that quacks like
:class:`~repro.core.spate.Spate`.

``ShardedSpate`` partitions every arriving snapshot by the hybrid
(cell-region, day) key into a FIXED number of region groups and fans
each group's sub-snapshot out to its replica set of worker shards
(:func:`~repro.shard.key.shards_for_group`: distinct shards per group).
Queries scatter to one live replica per group — primary first, failing
over down the chain — and gather with partial aggregation pushed down:
workers return per-epoch row groups, ready-merged ``NumericStats``,
and their own coverage/scan telemetry; the coordinator only
concatenates in deterministic (epoch, group-rank) order and merges
counters.

Because the group count is fixed and the merge order is deterministic,
answers are byte-identical for every shard count — ``ShardedSpate``
with ``shards=1`` is the single-shard reference the differential gate
compares against.  (Relative to a *plain* ``Spate``, rows within an
epoch are permuted by region group; aggregates, grouped queries, and
ordered queries agree, row order of unordered scans does not — which
is exactly why the gate pins the shard API's own N=1 as the truth.)

Degradation contract: with ``partial_ok``, a group whose whole replica
chain is down (dead, breaker open, or timed out) is *skipped* and
itemised in ``CoverageReport.shards_skipped`` with its reason; strict
queries raise instead.  Mutations that miss a dead shard are buffered
per shard and replayed, in order, by :meth:`recover_shard` after the
worker's WAL-replay restart — rejoin without stopping reads.
"""

from __future__ import annotations

import threading

from repro.baselines.base import IngestStats
from repro.core.config import SpateConfig
from repro.core.metrics import WarehouseMetrics
from repro.core.snapshot import Snapshot, Table
from repro.errors import QueryError, ShardError
from repro.query.explore import (
    CoverageReport,
    ExplorationQuery,
    ExplorationResult,
)
from repro.query.leafscan import ScanStats
from repro.shard.key import RegionMap, shards_for_group, groups_for_shard
from repro.shard.rpc import (
    CircuitBreaker,
    DeadlineBudget,
    ShardClient,
    failure_reason,
)
from repro.shard.split import split_snapshot
from repro.shard.worker import ShardWorker
from repro.spatial.geometry import Point


def _coverage_from_dict(data: dict) -> CoverageReport:
    report = CoverageReport()
    report.epochs_served = list(data.get("epochs_served", []))
    report.epochs_skipped = dict(data.get("epochs_skipped", {}))
    report.epochs_pruned = list(data.get("epochs_pruned", []))
    report.deadline_hit = bool(data.get("deadline_hit", False))
    report.shards_skipped = dict(data.get("shards_skipped", {}))
    return report


def _coverage_to_dict(report: CoverageReport) -> dict:
    return {
        "epochs_served": list(report.epochs_served),
        "epochs_skipped": dict(report.epochs_skipped),
        "epochs_pruned": list(report.epochs_pruned),
        "deadline_hit": report.deadline_hit,
        "shards_skipped": dict(report.shards_skipped),
    }


class ShardedSpate:
    """Thin scatter-gather client over N process-backed worker shards."""

    name = "SPATE-sharded"

    def __init__(self, config: SpateConfig | None = None) -> None:
        self.config = config or SpateConfig()
        sharding = self.config.sharding
        self.shards = sharding.shards
        self.region_groups = sharding.region_groups
        self.replication = sharding.group_replication
        self.workers: dict[int, ShardWorker] = {
            shard_id: ShardWorker(
                shard_id,
                self.config,
                groups_for_shard(
                    shard_id, self.shards, self.region_groups, self.replication
                ),
            )
            for shard_id in range(self.shards)
        }
        self.client = ShardClient(self.workers, sharding)
        self.metrics = WarehouseMetrics()
        self.cell_locations: dict[str, Point] = {}
        self._region_map: RegionMap | None = None
        #: shard -> mutations it missed while dead, replayed on rejoin.
        self._missed: dict[int, list[tuple[str, tuple]]] = {}
        self._suspected: set[int] = set()
        self._miss_streak: dict[int, int] = {s: 0 for s in self.workers}
        self._tables_seen: set[str] = set()
        self._ingested: list[int] = []
        self._frontier = 0
        self._finalized = False
        self._scan_tls = threading.local()

    # ------------------------------------------------------------------
    # Thread-local scan telemetry (same contract as Spate's)
    # ------------------------------------------------------------------

    @property
    def last_scan_coverage(self) -> dict:
        coverage = getattr(self._scan_tls, "coverage", None)
        if coverage is None:
            coverage = {"epochs_served": [], "epochs_skipped": {}}
            self._scan_tls.coverage = coverage
        return coverage

    @last_scan_coverage.setter
    def last_scan_coverage(self, coverage: dict) -> None:
        self._scan_tls.coverage = coverage

    @property
    def last_scan_stats(self) -> ScanStats:
        stats = getattr(self._scan_tls, "stats", None)
        if stats is None:
            stats = ScanStats()
            self._scan_tls.stats = stats
        return stats

    @last_scan_stats.setter
    def last_scan_stats(self, stats: ScanStats) -> None:
        self._scan_tls.stats = stats

    def _deadline(self) -> DeadlineBudget | None:
        """The current SQL statement's budget (set by sql/explain)."""
        return getattr(self._scan_tls, "deadline", None)

    # ------------------------------------------------------------------
    # Placement and RPC plumbing
    # ------------------------------------------------------------------

    def _group_of_cell(self, cell_id: str) -> int:
        if self._region_map is None:
            return 0
        return self._region_map.group_of(cell_id)

    def _chain(self, group: int) -> list[int]:
        """Replica chain for a group, heartbeat-suspected shards last."""
        chain = shards_for_group(group, self.shards, self.replication)
        healthy = [s for s in chain if s not in self._suspected]
        suspected = [s for s in chain if s in self._suspected]
        return healthy + suspected

    def _call_group(
        self, group: int, method: str, *args, deadline=None, **kwargs
    ):
        """Call one live replica of a group, failing over down the chain.

        Raises the last :class:`ShardError` when every replica is out;
        application errors from a *reached* shard propagate immediately
        (a deterministic answer must not be retried elsewhere).
        """
        chain = self._chain(group)
        last_exc: ShardError | None = None
        for position, shard_id in enumerate(chain):
            try:
                result = self.client.call(
                    shard_id, method, group, *args, deadline=deadline, **kwargs
                )
            except ShardError as exc:
                last_exc = exc
                continue
            if position:
                self.client.counters.inc("failovers")
            return result
        raise last_exc

    def _mutate_group(self, group: int, method: str, *args):
        """Apply a mutation on every hosting replica of a group,
        buffering it for shards that are unreachable.  Returns the
        first (primary-most) successful result, or None."""
        first_result = None
        got_one = False
        for shard_id in shards_for_group(group, self.shards, self.replication):
            try:
                result = self.client.call(shard_id, method, group, *args)
            except ShardError:
                self._missed.setdefault(shard_id, []).append(
                    (method, (group, *args))
                )
                continue
            if not got_one:
                first_result = result
                got_one = True
        return first_result

    # ------------------------------------------------------------------
    # Setup / ingest (the Framework write surface)
    # ------------------------------------------------------------------

    def register_cells(self, cells: Table) -> None:
        """Build the region map and fan the full CELL relation to every
        shard (each group store needs the whole service area)."""
        x_idx = cells.column_index("x")
        y_idx = cells.column_index("y")
        id_idx = cells.column_index("cell_id")
        for row in cells.rows:
            self.cell_locations[row[id_idx]] = Point(
                float(row[x_idx]), float(row[y_idx])
            )
        self._region_map = RegionMap(self.cell_locations, self.region_groups)
        for shard_id in sorted(self.workers):
            try:
                self.client.call(shard_id, "register_cells", cells)
            except ShardError:
                self._missed.setdefault(shard_id, []).append(
                    ("register_cells", (cells,))
                )

    def ingest(self, snapshot: Snapshot) -> IngestStats:
        """Split by region group and fan out to each group's replicas.

        Sizes are summed over one copy per group (replicas store the
        same bytes again; the logical warehouse did not grow twice).
        """
        if self._finalized:
            raise QueryError(
                f"cannot ingest epoch {snapshot.epoch}: the stream is "
                "finalized (rollups are closed; open a new warehouse)"
            )
        subs = split_snapshot(
            snapshot, self._group_of_cell, self.region_groups
        )
        raw = stored = 0
        seconds = 0.0
        for group in range(self.region_groups):
            stats = self._mutate_group(group, "ingest", subs[group])
            if stats is not None:
                raw += stats.raw_bytes
                stored += stats.stored_bytes
                seconds += stats.seconds
        self._tables_seen.update(snapshot.tables)
        self._ingested.append(snapshot.epoch)
        if snapshot.epoch > self._frontier:
            self._frontier = snapshot.epoch
        self.metrics.on_ingest(
            records=snapshot.record_count(),
            raw_bytes=raw,
            stored_bytes=stored,
            seconds=seconds,
        )
        self.metrics.sync_shards(self.client.counters)
        return IngestStats(
            epoch=snapshot.epoch,
            seconds=seconds,
            raw_bytes=raw,
            stored_bytes=stored,
        )

    def finalize(self) -> None:
        if self._finalized:
            raise QueryError(
                "finalize() was already called on this warehouse "
                "(possibly before a crash); the stream is closed"
            )
        for group in range(self.region_groups):
            self._mutate_group(group, "finalize")
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def frontier_epoch(self) -> int:
        """Latest ingested epoch (the coordinator saw every ingest)."""
        return self._frontier

    def run_decay(self):
        """Force a decay pass on every group store (replicas included —
        they must age in lockstep)."""
        return [
            self._mutate_group(group, "run_decay")
            for group in range(self.region_groups)
        ]

    def decay_groups(self, older_than_epoch: int, keep_fraction: float = 0.25):
        """Apply the grouped-eviction fungus on every group store."""
        return [
            self._mutate_group(
                group, "decay_groups", older_than_epoch, keep_fraction
            )
            for group in range(self.region_groups)
        ]

    def heal(self):
        """Storage repair pass on every group store's DFS."""
        return [
            self._mutate_group(group, "heal")
            for group in range(self.region_groups)
        ]

    # ------------------------------------------------------------------
    # Chaos / recovery (shard ring membership)
    # ------------------------------------------------------------------

    def kill_shard(self, shard_id: int) -> None:
        """Crash one worker: its stores vanish, its DFS state stays."""
        self.workers[shard_id].kill()

    def recover_shard(self, shard_id: int) -> int:
        """Restart a dead worker (checkpoint + WAL replay per group
        store), replay the mutations it missed while down, reset its
        breaker, and un-suspect it.  Reads keep flowing on the replicas
        throughout.  Returns the number of replayed mutations."""
        worker = self.workers[shard_id]
        worker.restart()
        missed = self._missed.pop(shard_id, [])
        for method, args in missed:
            getattr(worker, method)(*args)
        sharding = self.config.sharding
        self.client.breakers[shard_id] = CircuitBreaker(
            sharding.breaker_threshold, sharding.breaker_cooldown_rpcs
        )
        self._suspected.discard(shard_id)
        self._miss_streak[shard_id] = 0
        self.client.counters.inc("recoveries")
        self.metrics.sync_shards(self.client.counters)
        return len(missed)

    # Alias mirroring the worker verb; chaos tooling uses either.
    restart_shard = recover_shard

    def heartbeat(self) -> dict[int, bool]:
        """Ping every shard; after ``heartbeat_miss_limit`` consecutive
        misses a shard is *suspected* and demoted to the back of every
        replica chain until it answers again (or is recovered)."""
        health = self.client.heartbeat()
        limit = self.config.sharding.heartbeat_miss_limit
        for shard_id, healthy in health.items():
            if healthy:
                self._miss_streak[shard_id] = 0
                self._suspected.discard(shard_id)
            else:
                self._miss_streak[shard_id] += 1
                if self._miss_streak[shard_id] >= limit:
                    self._suspected.add(shard_id)
        self.metrics.sync_shards(self.client.counters)
        return health

    # ------------------------------------------------------------------
    # Read surface (what the SQL layer and explore callers see)
    # ------------------------------------------------------------------

    def ingested_epochs(self) -> list[int]:
        """Live epochs, from any reachable replica of group 0 (groups
        ingest and decay in lockstep, so any group's answer is the
        warehouse's)."""
        try:
            return self._call_group(0, "ingested_epochs")
        except ShardError:
            return sorted(set(self._ingested))

    def table_columns(
        self, table: str, first_epoch: int, last_epoch: int
    ) -> list[str]:
        """Schema probe; any group knows every table's header."""
        for group in range(self.region_groups):
            try:
                columns = self._call_group(
                    group, "table_columns", table, first_epoch, last_epoch
                )
            except ShardError:
                continue
            if columns:
                return columns
        return []

    def read_rows_by_epoch(
        self,
        table: str,
        first_epoch: int,
        last_epoch: int,
        partial_ok: bool = False,
        predicates=None,
        columns=None,
    ) -> tuple[list[str], list[tuple[int, list[list[str]]]]]:
        """Scatter the scan to one live replica per group and gather
        per-epoch row groups in (epoch, group-rank) order."""
        deadline = self._deadline()
        merged_cov = CoverageReport()
        merged_stats = ScanStats()
        out_columns: list[str] = []
        per_epoch: dict[int, list[list[str]]] = {}
        for group in range(self.region_groups):
            try:
                gcols, g_by_epoch, gcov, gstats = self._call_group(
                    group,
                    "read_rows_by_epoch",
                    table,
                    first_epoch,
                    last_epoch,
                    partial_ok,
                    predicates,
                    columns,
                    deadline=deadline,
                )
            except ShardError as exc:
                if not partial_ok:
                    raise
                key = f"g{group}@s{self._chain(group)[0]}"
                merged_cov.shards_skipped[key] = failure_reason(exc)
                self.client.counters.inc("shards_skipped")
                continue
            if not out_columns and gcols:
                out_columns = list(gcols)
            for epoch, rows in g_by_epoch:
                per_epoch.setdefault(epoch, []).extend(rows)
            merged_cov.merge(_coverage_from_dict(gcov))
            merged_stats.merge(gstats)
        self.last_scan_coverage = _coverage_to_dict(merged_cov)
        self.last_scan_stats = merged_stats
        self.metrics.on_query_scan(merged_stats)
        self.metrics.sync_shards(self.client.counters)
        return out_columns, [
            (epoch, per_epoch[epoch]) for epoch in sorted(per_epoch)
        ]

    def read_rows(
        self,
        table: str,
        first_epoch: int,
        last_epoch: int,
        partial_ok: bool = False,
        predicates=None,
        columns=None,
    ) -> tuple[list[str], list[list[str]]]:
        out_columns, by_epoch = self.read_rows_by_epoch(
            table,
            first_epoch,
            last_epoch,
            partial_ok=partial_ok,
            predicates=predicates,
            columns=columns,
        )
        rows: list[list[str]] = []
        for __, chunk in by_epoch:
            rows.extend(chunk)
        return out_columns, rows

    def read_columns_by_epoch(
        self,
        table: str,
        first_epoch: int,
        last_epoch: int,
        partial_ok: bool = False,
        predicates=None,
        columns=None,
    ) -> tuple[list[str], list[tuple[int, list[list[str]]]]]:
        """Column-major scatter-gather: per-epoch column chunks merged
        by concatenating each column's cells in group-rank order — the
        transpose of :meth:`read_rows_by_epoch`, byte for byte."""
        deadline = self._deadline()
        merged_cov = CoverageReport()
        merged_stats = ScanStats()
        out_columns: list[str] = []
        per_epoch: dict[int, list[list[str]]] = {}
        for group in range(self.region_groups):
            try:
                gcols, g_by_epoch, gcov, gstats = self._call_group(
                    group,
                    "read_columns_by_epoch",
                    table,
                    first_epoch,
                    last_epoch,
                    partial_ok,
                    predicates,
                    columns,
                    deadline=deadline,
                )
            except ShardError as exc:
                if not partial_ok:
                    raise
                key = f"g{group}@s{self._chain(group)[0]}"
                merged_cov.shards_skipped[key] = failure_reason(exc)
                self.client.counters.inc("shards_skipped")
                continue
            if not out_columns and gcols:
                out_columns = list(gcols)
            for epoch, chunk in g_by_epoch:
                existing = per_epoch.get(epoch)
                if existing is None:
                    per_epoch[epoch] = [list(cells) for cells in chunk]
                    continue
                for c, cells in enumerate(chunk):
                    if c < len(existing):
                        existing[c].extend(cells)
                    else:
                        existing.append(list(cells))
            merged_cov.merge(_coverage_from_dict(gcov))
            merged_stats.merge(gstats)
        self.last_scan_coverage = _coverage_to_dict(merged_cov)
        self.last_scan_stats = merged_stats
        self.metrics.on_query_scan(merged_stats)
        self.metrics.sync_shards(self.client.counters)
        return out_columns, [
            (epoch, per_epoch[epoch]) for epoch in sorted(per_epoch)
        ]

    def read_columns(
        self,
        table: str,
        first_epoch: int,
        last_epoch: int,
        partial_ok: bool = False,
        predicates=None,
        columns=None,
    ) -> tuple[list[str], list[list[str]]]:
        out_columns, by_epoch = self.read_columns_by_epoch(
            table,
            first_epoch,
            last_epoch,
            partial_ok=partial_ok,
            predicates=predicates,
            columns=columns,
        )
        data: list[list[str]] = [[] for __ in out_columns]
        for __, chunk in by_epoch:
            n_rows = len(chunk[0]) if chunk else 0
            for c in range(len(out_columns)):
                if c < len(chunk):
                    data[c].extend(chunk[c])
                else:
                    data[c].extend([""] * n_rows)
        return out_columns, data

    def table_statistics(self, table: str, first_epoch: int, last_epoch: int):
        """Planner statistics merged across all reachable groups (row
        counts add, bounds widen, distincts stay a lower bound).  Purely
        advisory: an unreachable group degrades the estimate, never the
        answer, so shard errors are swallowed."""
        merged = None
        for group in range(self.region_groups):
            try:
                stats = self._call_group(
                    group, "table_statistics", table, first_epoch, last_epoch
                )
            except ShardError:
                continue
            if stats is None:
                continue
            if merged is None:
                merged = stats
            else:
                merged.merge(stats)
        return merged

    def explore(
        self,
        table: str,
        attributes: tuple,
        box,
        first_epoch: int,
        last_epoch: int,
        coarse: bool = False,
        partial_ok: bool = False,
        deadline_ms: int | None = None,
    ) -> ExplorationResult:
        """Scatter Q(a, b, w) per group, gather with pushed-down partial
        aggregation: workers return merged ``NumericStats`` per
        attribute, the coordinator only merges accumulators and
        concatenates records in (epoch, group-rank) order."""
        if deadline_ms is None:
            deadline_ms = self.config.query_deadline_ms
        deadline = DeadlineBudget(deadline_ms or None)
        query = ExplorationQuery(
            table=table,
            attributes=tuple(attributes),
            box=box,
            first_epoch=first_epoch,
            last_epoch=last_epoch,
        )
        merged = ExplorationResult(query=query)
        per_epoch: dict[int, list[list[str]]] = {}
        for group in range(self.region_groups):
            try:
                result = self._call_group(
                    group,
                    "explore",
                    table,
                    tuple(attributes),
                    box,
                    first_epoch,
                    last_epoch,
                    coarse,
                    partial_ok,
                    deadline.remaining_ms(),
                    deadline=deadline,
                )
            except ShardError as exc:
                if not partial_ok:
                    raise
                key = f"g{group}@s{self._chain(group)[0]}"
                merged.coverage.shards_skipped[key] = failure_reason(exc)
                self.client.counters.inc("shards_skipped")
                continue
            if not merged.columns and result.columns:
                merged.columns = list(result.columns)
            for record in result.records:
                per_epoch.setdefault(int(record[0]), []).append(record)
            for name, stats in result.aggregates.items():
                mine = merged.aggregates.get(name)
                if mine is None:
                    merged.aggregates[name] = stats.copy()
                else:
                    mine.merge(stats)
            merged.highlights.extend(result.highlights)
            for day, resolution in result.resolution_by_day.items():
                merged.resolution_by_day.setdefault(day, resolution)
            merged.snapshots_read += result.snapshots_read
            merged.coverage.merge(result.coverage)
            merged.scan_stats.merge(result.scan_stats)
        merged.records = [
            record
            for epoch in sorted(per_epoch)
            for record in per_epoch[epoch]
        ]
        self.metrics.on_explore(merged.snapshots_read, merged.used_decayed_data)
        self.metrics.on_query_scan(merged.scan_stats)
        if partial_ok and not merged.coverage.complete:
            self.metrics.on_degraded_query(
                epochs_skipped=len(merged.coverage.epochs_skipped),
                deadline_hit=merged.coverage.deadline_hit,
            )
        self.metrics.sync_shards(self.client.counters)
        return merged

    def highlights(self, first_epoch: int, last_epoch: int):
        """Detected highlights across all groups, group-rank order."""
        out = []
        for group in range(self.region_groups):
            out.extend(
                self._call_group(group, "highlights", first_epoch, last_epoch)
            )
        return out

    # ------------------------------------------------------------------
    # SQL surface
    # ------------------------------------------------------------------

    def sql_database(
        self,
        first_epoch: int | None = None,
        last_epoch: int | None = None,
        partial_ok: bool = False,
        tables: list[str] | None = None,
    ):
        from repro.query.sql.executor import Database

        first = 0 if first_epoch is None else first_epoch
        last = self._frontier if last_epoch is None else last_epoch
        names = tables or sorted(self._tables_seen)
        db = Database()
        db.metrics = self.metrics
        db.register_framework_scan(
            self, list(names), first, last, partial_ok=partial_ok
        )
        return db

    def sql(
        self,
        query: str,
        first_epoch: int | None = None,
        last_epoch: int | None = None,
        deadline_ms: int | None = None,
        partial_ok: bool = False,
    ):
        db = self.sql_database(first_epoch, last_epoch, partial_ok=partial_ok)
        if deadline_ms is None:
            deadline_ms = self.config.query_deadline_ms or None
        # One budget spans parse-to-output AND every shard RPC slice the
        # scans fan out (picked up thread-locally by read_rows_by_epoch).
        self._scan_tls.deadline = DeadlineBudget(deadline_ms)
        try:
            return db.execute(query, deadline_ms=deadline_ms)
        finally:
            self._scan_tls.deadline = None

    def explain(
        self,
        query: str,
        first_epoch: int | None = None,
        last_epoch: int | None = None,
        deadline_ms: int | None = None,
        partial_ok: bool = False,
    ) -> str:
        db = self.sql_database(first_epoch, last_epoch, partial_ok=partial_ok)
        if deadline_ms is None:
            deadline_ms = self.config.query_deadline_ms or None
        self._scan_tls.deadline = DeadlineBudget(deadline_ms)
        try:
            __, report = db.explain_analyze(query, deadline_ms=deadline_ms)
        finally:
            self._scan_tls.deadline = None
        return report

    def close(self) -> None:
        self.client.close()


__all__ = ["ShardedSpate"]
