"""Wire codec for the socket shard transport.

The socket transport frames one JSON object per line (the same
framing :mod:`repro.server.tcp` uses for the query protocol), so every
RPC argument and result must round-trip through JSON.  The RPC surface
passes rich framework objects — :class:`~repro.core.snapshot.Snapshot`,
:class:`~repro.query.explore.ExplorationResult`, planner statistics,
decay/heal reports — all of which are plain dataclasses, so the codec
is generic: containers are tagged, dataclasses are encoded as
``{"__dc__": "module:qualname", "f": {field: value, ...}}`` and
reconstructed field-by-field (bypassing ``__init__``, whose validation
already ran on the sending side).

Decoding only ever imports from ``repro.`` modules and only
instantiates dataclasses; a hostile peer on the loopback socket could
at worst instantiate a repro dataclass with odd field values — the
same power any caller of the library has.  Exceptions cross the wire
as ``(module, qualname, message)`` and are re-raised as themselves
when they resolve to an Exception subclass in ``repro.errors`` or
``builtins``, so the client-side retry stack sees the exact error
class the worker raised (application errors must not look like shard
failures).
"""

from __future__ import annotations

import dataclasses
import importlib
import json

from repro.errors import ShardError

#: Tag keys (all reserved: a plain dict containing one is re-tagged).
_DC = "__dc__"
_TUPLE = "__t__"
_SET = "__s__"
_FSET = "__fs__"
_DICT = "__d__"
_TAGS = (_DC, _TUPLE, _SET, _FSET, _DICT)


class WireError(ShardError):
    """A value could not be encoded for, or decoded from, the wire."""


def encode_value(value):
    """Lower ``value`` to JSON-safe plain data (tagged containers)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        encoded = [encode_value(item) for item in value]
        return {_TUPLE: encoded} if isinstance(value, tuple) else encoded
    if isinstance(value, (set, frozenset)):
        try:
            items = sorted(value)
        except TypeError:
            items = list(value)
        tag = _FSET if isinstance(value, frozenset) else _SET
        return {tag: [encode_value(item) for item in items]}
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and not any(
            k in _TAGS for k in value
        ):
            return {k: encode_value(v) for k, v in value.items()}
        return {
            _DICT: [[encode_value(k), encode_value(v)] for k, v in value.items()]
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            _DC: f"{cls.__module__}:{cls.__qualname__}",
            "f": {
                field.name: encode_value(getattr(value, field.name))
                for field in dataclasses.fields(cls)
            },
        }
    raise WireError(
        f"cannot encode {type(value).__module__}.{type(value).__qualname__} "
        "for the socket transport"
    )


def decode_value(value):
    """Reverse of :func:`encode_value`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if _DC in value:
            cls = _resolve_dataclass(value[_DC])
            obj = object.__new__(cls)
            for name, encoded in value["f"].items():
                object.__setattr__(obj, name, decode_value(encoded))
            return obj
        if _TUPLE in value:
            return tuple(decode_value(item) for item in value[_TUPLE])
        if _SET in value:
            return {decode_value(item) for item in value[_SET]}
        if _FSET in value:
            return frozenset(decode_value(item) for item in value[_FSET])
        if _DICT in value:
            return {
                decode_value(k): decode_value(v) for k, v in value[_DICT]
            }
        return {k: decode_value(v) for k, v in value.items()}
    raise WireError(f"cannot decode wire value of type {type(value).__name__}")


def _resolve_dataclass(ref: str):
    module_name, __, qualname = ref.partition(":")
    if not module_name.startswith("repro."):
        raise WireError(f"refusing to decode non-repro type {ref!r}")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
        raise WireError(f"{ref!r} is not a dataclass")
    return obj


def encode_error(exc: BaseException) -> dict:
    """One raised exception as a wire envelope field."""
    cls = type(exc)
    module = cls.__module__
    return {
        "module": module,
        "qualname": cls.__qualname__,
        "message": str(exc),
    }


def decode_error(data: dict) -> BaseException:
    """Rebuild the worker's exception, falling back to ShardError when
    the recorded class cannot be resolved to a known exception type."""
    module_name = data.get("module", "")
    qualname = data.get("qualname", "")
    message = data.get("message", "shard rpc failed")
    try:
        if module_name == "builtins":
            cls = getattr(__import__("builtins"), qualname)
        elif module_name.startswith("repro."):
            obj = importlib.import_module(module_name)
            for part in qualname.split("."):
                obj = getattr(obj, part)
            cls = obj
        else:
            raise WireError(f"unknown error module {module_name!r}")
        if not (isinstance(cls, type) and issubclass(cls, BaseException)):
            raise WireError(f"{qualname!r} is not an exception type")
        return cls(message)
    except WireError:
        return ShardError(f"{module_name}.{qualname}: {message}")
    except Exception:
        return ShardError(f"{module_name}.{qualname}: {message}")


def dumps(message: dict) -> bytes:
    """One protocol message as a JSON line (the frame unit)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def loads(line: bytes) -> dict:
    return json.loads(line.decode("utf-8"))


__all__ = [
    "WireError",
    "decode_error",
    "decode_value",
    "dumps",
    "encode_error",
    "encode_value",
    "loads",
]
