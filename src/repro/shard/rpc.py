"""Shard RPC client: deadlines, bounded retries, breakers, failover.

The robustness core of the shard layer.  Every coordinator -> worker
call goes through :meth:`ShardClient.call`, which layers, in order:

- a **per-shard circuit breaker** — after ``breaker_threshold``
  consecutive failures the breaker opens and sheds the next
  ``breaker_cooldown_rpcs`` calls to that shard without touching it
  (deterministic RPC-counted cooldown, no wall clock), then half-opens;
- a **per-call deadline slice** — each attempt is bounded by
  ``rpc_timeout_ms`` *and* whatever remains of the query's
  ``deadline_ms`` budget (one :class:`DeadlineBudget` spans the whole
  scatter-gather, so slow shards eat the same budget the unsharded
  deadline path charges);
- **bounded retries** with exponential backoff + full jitter, sharing
  :class:`~repro.core.retry.RetryPolicy` / ``RetryBudget`` with the
  DFS transient-write path so both retry surfaces meter alike.

Failover across a group's replica chain lives in the coordinator; this
module decides only whether one shard's call succeeds, retries, or
fails fast.  Two transports: ``"inline"`` executes on the calling
thread with *modeled* backoff (deterministic, used by tests and the
differential gate) and ``"thread"`` runs each shard's calls on its own
single worker thread with real wall-clock timeouts.

Only :class:`~repro.errors.ShardError` subclasses count as RPC
failures.  Application errors — bad SQL, a quarantined leaf in strict
mode — pass through untouched: retrying a deterministic answer would
only burn budget.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.core.config import ShardConfig
from repro.core.retry import RetryBudget, RetryPolicy
from repro.errors import ShardError, ShardTimeoutError, ShardUnavailableError


class DeadlineBudget:
    """One query's wall-clock budget, shared by every RPC it fans out.

    ``None``/0 milliseconds means unlimited.  The shard layer charges
    its per-call slices against this single budget, so a sharded query
    with ``deadline_ms=200`` spends those 200 ms across all shards —
    the same contract the unsharded deadline path enforces.
    """

    def __init__(self, deadline_ms: int | None) -> None:
        self._expires = (
            time.monotonic() + deadline_ms / 1000.0 if deadline_ms else None
        )

    def expired(self) -> bool:
        return self._expires is not None and time.monotonic() >= self._expires

    def remaining_s(self) -> float | None:
        """Seconds left, clamped at 0; None when unlimited."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - time.monotonic())

    def remaining_ms(self) -> int | None:
        """Whole milliseconds left (at least 1 while unexpired), for
        forwarding as a store-level ``deadline_ms``."""
        remaining = self.remaining_s()
        if remaining is None:
            return None
        return max(1, int(remaining * 1000)) if remaining > 0 else 1


class CircuitBreaker:
    """Consecutive-failure breaker with an RPC-counted cooldown.

    Opens after ``threshold`` consecutive failures; while open it sheds
    the next ``cooldown_rpcs`` calls (each shed consumes one cooldown
    token, so recovery needs no clock and stays deterministic), then
    half-opens and lets one probe call through.
    """

    def __init__(self, threshold: int, cooldown_rpcs: int) -> None:
        self.threshold = threshold
        self.cooldown_rpcs = cooldown_rpcs
        self.failures = 0
        self.shed_remaining = 0
        self.trips = 0

    @property
    def open(self) -> bool:
        return self.shed_remaining > 0

    def allow(self) -> bool:
        """May the next call proceed?  Sheds consume cooldown tokens."""
        if self.shed_remaining > 0:
            self.shed_remaining -= 1
            return False
        return True

    def on_success(self) -> None:
        self.failures = 0

    def on_failure(self) -> None:
        self.failures += 1
        if self.threshold and self.failures >= self.threshold:
            self.trips += 1
            self.shed_remaining = self.cooldown_rpcs
            self.failures = 0


class ShardCounters:
    """Running totals of the shard layer's robustness machinery,
    mirrored into :class:`~repro.core.metrics.WarehouseMetrics`."""

    def __init__(self, budget: RetryBudget) -> None:
        self._budget = budget
        self._lock = threading.Lock()
        self.rpcs = 0
        self.retries = 0
        self.failovers = 0
        self.breaker_trips = 0
        self.heartbeat_misses = 0
        self.shards_skipped = 0
        self.recoveries = 0
        self.groups_routed = 0

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    @property
    def retry_budget_spent(self) -> int:
        return self._budget.spent

    @property
    def retry_budget_exhausted(self) -> int:
        return self._budget.exhausted_hits


def failure_reason(exc: BaseException) -> str:
    """Normalize an RPC failure for CoverageReport.shards_skipped."""
    if isinstance(exc, ShardTimeoutError):
        return "timeout"
    if "breaker" in str(exc):
        return "breaker_open"
    if isinstance(exc, ShardUnavailableError):
        return "dead"
    return "error"


class ShardClient:
    """Deadline-sliced, retrying, breaker-guarded calls to workers."""

    def __init__(
        self,
        workers: dict[int, object],
        config: ShardConfig,
        budget: RetryBudget | None = None,
    ) -> None:
        self.workers = workers
        self.config = config
        self.policy = RetryPolicy(max_attempts=config.rpc_retries)
        self.budget = budget or RetryBudget(config.rpc_retry_budget)
        self.counters = ShardCounters(self.budget)
        self.breakers = {
            shard_id: CircuitBreaker(
                config.breaker_threshold, config.breaker_cooldown_rpcs
            )
            for shard_id in workers
        }
        self._rng = random.Random(config.seed)
        #: Backoff the inline transport charged as modeled time instead
        #: of sleeping (keeps seeded runs deterministic and fast).
        self.modeled_backoff_s = 0.0
        #: Thread and socket transports have real wall clocks: retries
        #: actually sleep, timeouts actually expire.
        self._wall_clock = config.transport in ("thread", "socket")
        #: Test/chaos hook: called as ``(shard_id, method)`` right
        #: before each attempt is invoked — lets the chaos harness kill
        #: a shard mid-scatter at an exact RPC count.
        self.before_invoke = None
        self._pools: dict[int, ThreadPoolExecutor] = {}
        if config.transport == "thread":
            # One thread per shard: a shard's store is not concurrency-
            # safe across its own calls, and one lane per shard is
            # exactly the process-per-shard serialization being modeled.
            self._pools = {
                shard_id: ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"shard-{shard_id}"
                )
                for shard_id in workers
            }

    def close(self) -> None:
        for pool in self._pools.values():
            pool.shutdown(wait=False)
        for worker in self.workers.values():
            closer = getattr(worker, "close", None)
            if callable(closer):
                closer()

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def heartbeat(self) -> dict[int, bool]:
        """Ping every shard once (no retries — a miss is the signal).

        Returns shard -> healthy.  Misses feed the failure counters
        and the breaker exactly like failed data RPCs, so a shard that
        stops answering heartbeats trips its breaker and gets failed
        over before any query wastes its deadline on it.
        """
        health: dict[int, bool] = {}
        for shard_id in sorted(self.workers):
            try:
                self.call(shard_id, "ping", retry=False)
                health[shard_id] = True
            except ShardError:
                self.counters.inc("heartbeat_misses")
                health[shard_id] = False
        return health

    # ------------------------------------------------------------------
    # The call path
    # ------------------------------------------------------------------

    def call(
        self,
        shard_id: int,
        method: str,
        *args,
        deadline: DeadlineBudget | None = None,
        retry: bool = True,
        **kwargs,
    ):
        """Invoke ``method`` on one shard with the full robustness stack.

        Raises:
            ShardUnavailableError: dead worker, or breaker open.
            ShardTimeoutError: per-call slice or query budget exhausted.
        """
        breaker = self.breakers[shard_id]
        attempt = 0
        while True:
            if not breaker.allow():
                raise ShardUnavailableError(
                    f"shard {shard_id}: circuit breaker open "
                    f"({breaker.shed_remaining} sheds remaining)"
                )
            if deadline is not None and deadline.expired():
                raise ShardTimeoutError(
                    f"shard {shard_id}: query deadline exhausted "
                    f"before {method}"
                )
            self.counters.inc("rpcs")
            try:
                result = self._invoke(shard_id, method, args, kwargs, deadline)
            except ShardError:
                trips_before = breaker.trips
                breaker.on_failure()
                if breaker.trips > trips_before:
                    self.counters.inc("breaker_trips")
                attempt += 1
                if (
                    not retry
                    or attempt > self.policy.max_attempts
                    or (deadline is not None and deadline.expired())
                    or not self.budget.try_spend()
                ):
                    raise
                self.counters.inc("retries")
                backoff = self.policy.backoff_s(attempt, self._rng)
                if self._wall_clock:
                    time.sleep(backoff)
                else:
                    self.modeled_backoff_s += backoff
                continue
            breaker.on_success()
            return result

    def _invoke(self, shard_id, method, args, kwargs, deadline):
        if self.before_invoke is not None:
            self.before_invoke(shard_id, method)
        worker = self.workers[shard_id]
        if not getattr(worker, "alive", True):
            raise ShardUnavailableError(f"shard {shard_id} is dead")
        remote = getattr(worker, "invoke_rpc", None)
        if remote is not None:
            # Socket transport: the proxy applies the timeout slice at
            # the socket itself; errors already arrive as ShardErrors.
            return remote(method, args, kwargs, self._timeout_s(deadline))
        fn = getattr(worker, method)
        pool = self._pools.get(shard_id)
        if pool is None:
            return fn(*args, **kwargs)
        timeout_s = self._timeout_s(deadline)
        future = pool.submit(fn, *args, **kwargs)
        try:
            return future.result(timeout=timeout_s)
        except FutureTimeoutError:
            future.cancel()
            # cancel() is a no-op once the call started: the stale call
            # would keep occupying this shard's single lane, and the
            # next query's RPC — budgeted by its *own* deadline — would
            # queue behind it and time out through no fault of its own.
            # Retire the poisoned lane and start a fresh one, exactly
            # like abandoning a wedged connection to a real process.
            pool.shutdown(wait=False)
            self._pools[shard_id] = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"shard-{shard_id}"
            )
            raise ShardTimeoutError(
                f"shard {shard_id}: {method} exceeded its "
                f"{timeout_s * 1000:.0f} ms slice"
            ) from None

    def _timeout_s(self, deadline: DeadlineBudget | None) -> float:
        """Per-call slice: rpc_timeout_ms capped by the query budget."""
        timeout_s = self.config.rpc_timeout_ms / 1000.0
        if deadline is not None:
            remaining = deadline.remaining_s()
            if remaining is not None:
                timeout_s = min(timeout_s, remaining)
        return timeout_s


__all__ = [
    "CircuitBreaker",
    "DeadlineBudget",
    "ShardClient",
    "ShardCounters",
    "failure_reason",
]
