"""Stable region partitioning of snapshots.

``split_snapshot`` cuts one arriving epoch into ``region_groups``
sub-snapshots, one per region group.  The split is *stable*: a row's
group depends only on its cell id (via the :class:`~repro.shard.key.
RegionMap`), one region's rows never straddle groups, and rows keep
their relative order inside each group.  Every sub-snapshot carries
every table of the original — possibly empty, header only — so every
group store sees every epoch and every schema, which is what lets any
single group answer schema probes and keeps per-store temporal indexes
aligned.

Tables without a cell column (unknown table kinds) land wholly in
group 0: deterministic, and the coordinator's group-rank merge puts
them back exactly once.
"""

from __future__ import annotations

from typing import Callable

from repro.core.snapshot import Snapshot, Table
from repro.index.highlights import CELL_COLUMN


def split_snapshot(
    snapshot: Snapshot,
    group_of_cell: Callable[[str], int],
    region_groups: int,
) -> list[Snapshot]:
    """Partition one snapshot into ``region_groups`` sub-snapshots."""
    subs = [Snapshot(epoch=snapshot.epoch) for __ in range(region_groups)]
    for name, table in snapshot.tables.items():
        parts: list[list[list[str]]] = [[] for __ in range(region_groups)]
        cell_col = CELL_COLUMN.get(name)
        cell_idx = (
            table.column_index(cell_col)
            if cell_col is not None and cell_col in table.columns
            else None
        )
        if cell_idx is None:
            parts[0] = list(table.rows)
        else:
            for row in table.rows:
                parts[group_of_cell(row[cell_idx])].append(row)
        for group in range(region_groups):
            subs[group].add_table(
                Table(name, list(table.columns), parts[group])
            )
    return subs


__all__ = ["split_snapshot"]
