"""Socket shard transport: workers as real OS processes.

The ``"socket"`` transport runs each :class:`~repro.shard.worker.
ShardWorker` inside its own process, serving the full worker RPC
surface over localhost TCP with one JSON object per line — the same
framing :mod:`repro.server.tcp` uses, with values lowered through
:mod:`repro.shard.wire`.  Three pieces:

- :func:`start_worker_process` — fork one worker process; the child
  binds an ephemeral port, reports it back over a pipe, and serves
  until terminated.  The process owns its group stores, so it survives
  the coordinator: a new :class:`~repro.shard.coordinator.ShardedSpate`
  can attach to the same endpoints and keep answering (the
  coordinator-restart chaos drill does exactly that).
- :class:`WorkerServer` — the in-process serving loop: per-connection
  reader threads, one dispatch lock (a worker process serves its
  stores serially, like the single-lane thread transport models).
- :class:`SocketShardProxy` — the coordinator-side stand-in for a
  ``ShardWorker``.  :class:`~repro.shard.rpc.ShardClient` calls it
  through :meth:`invoke_rpc` with the per-call deadline slice; plain
  attribute access (``proxy.kill()``, replayed mutations) dispatches
  remotely too, so the whole coordinator surface — chaos verbs
  included — works unchanged over sockets.

Connection failures surface as ``ShardUnavailableError`` and socket
timeouts as ``ShardTimeoutError``, so the existing deadline-budget /
retry / circuit-breaker / failover stack applies to socket workers
exactly as it does to in-process ones.  Worker-side application errors
cross the wire by class (see :mod:`repro.shard.wire`) and are
re-raised as themselves — never retried.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading

from repro.core.config import SpateConfig
from repro.errors import ShardError, ShardTimeoutError, ShardUnavailableError
from repro.shard import wire
from repro.shard.key import groups_for_shard
from repro.shard.worker import ShardWorker

#: One RPC frame (request or response) may not exceed this many bytes.
#: Sub-snapshots dominate; 64 MiB is ~100x the chaos-drill payloads.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HOST = "127.0.0.1"


class WorkerServer:
    """Serve one ShardWorker's RPC surface over a listening socket."""

    def __init__(self, worker: ShardWorker, listener: socket.socket) -> None:
        self._worker = worker
        self._listener = listener
        #: Group stores are not concurrency-safe; one dispatch at a
        #: time models the process's single serving lane.
        self._dispatch_lock = threading.Lock()

    def serve_forever(self) -> None:
        while True:
            try:
                conn, __ = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        try:
            while True:
                line = stream.readline(MAX_FRAME_BYTES)
                if not line:
                    return
                response = self._handle(wire.loads(line))
                stream.write(wire.dumps(response))
                stream.flush()
        except (OSError, ValueError):
            return
        finally:
            try:
                stream.close()
                conn.close()
            except OSError:
                pass

    def _handle(self, request: dict) -> dict:
        request_id = request.get("id")
        method = request.get("method", "")
        try:
            if method.startswith("_") or not method:
                raise ShardError(f"unknown rpc method {method!r}")
            fn = getattr(self._worker, method, None)
            if not callable(fn):
                raise ShardError(f"unknown rpc method {method!r}")
            args = wire.decode_value(request.get("args", []))
            kwargs = wire.decode_value(request.get("kwargs", {}))
            with self._dispatch_lock:
                result = fn(*args, **kwargs)
            return {
                "id": request_id,
                "ok": True,
                "result": wire.encode_value(result),
            }
        except Exception as exc:
            return {"id": request_id, "ok": False, "error": wire.encode_error(exc)}


def _worker_main(shard_id: int, config: SpateConfig, conn) -> None:
    """Child-process entry: build the worker, report the port, serve."""
    sharding = config.sharding
    worker = ShardWorker(
        shard_id,
        config,
        groups_for_shard(
            shard_id,
            sharding.shards,
            sharding.region_groups,
            sharding.group_replication,
        ),
    )
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((_HOST, 0))
    listener.listen(16)
    conn.send(listener.getsockname()[1])
    conn.close()
    WorkerServer(worker, listener).serve_forever()


def start_worker_process(
    shard_id: int, config: SpateConfig
) -> tuple[multiprocessing.Process, int]:
    """Fork one worker process; returns (process, port) once the child
    is listening.  The process is a daemon: it dies with the Python
    interpreter, but survives any coordinator *object* — which is the
    restart-survival property the socket transport exists for."""
    parent_conn, child_conn = multiprocessing.Pipe()
    process = multiprocessing.Process(
        target=_worker_main,
        args=(shard_id, config, child_conn),
        daemon=True,
        name=f"spate-shard-{shard_id}",
    )
    process.start()
    child_conn.close()
    if not parent_conn.poll(30.0):
        process.terminate()
        raise ShardUnavailableError(
            f"shard {shard_id}: worker process did not report a port"
        )
    port = parent_conn.recv()
    parent_conn.close()
    return process, port


class SocketShardProxy:
    """Coordinator-side handle on one socket worker.

    Keeps a single persistent connection (reconnecting lazily after
    failures) and serializes request/response pairs under a lock so
    concurrent coordinator threads cannot interleave frames.
    """

    #: The RPC layer's local liveness probe; real liveness is whatever
    #: the remote worker answers (``ping`` raises when it played dead).
    alive = True

    def __init__(self, shard_id: int, host: str, port: int) -> None:
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._stream = None
        self._socket: socket.socket | None = None
        self._next_id = 0

    # -- connection management -----------------------------------------

    def _connect(self) -> None:
        if self._stream is not None:
            return
        try:
            sock = socket.create_connection((self.host, self.port), timeout=5.0)
        except OSError as exc:
            raise ShardUnavailableError(
                f"shard {self.shard_id}: cannot connect to "
                f"{self.host}:{self.port} ({exc})"
            ) from None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._socket = sock
        self._stream = sock.makefile("rwb")

    def _drop_connection(self) -> None:
        """After any transport fault the request/response pairing is
        unknowable; start over on a fresh connection."""
        stream, sock = self._stream, self._socket
        self._stream = None
        self._socket = None
        for closeable in (stream, sock):
            if closeable is not None:
                try:
                    closeable.close()
                except OSError:
                    pass

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    # -- the RPC path ---------------------------------------------------

    def invoke_rpc(self, method: str, args, kwargs, timeout_s: float | None):
        """One request/response exchange with a per-call timeout slice
        (:class:`~repro.shard.rpc.ShardClient` computes the slice from
        ``rpc_timeout_ms`` and the query's deadline budget)."""
        with self._lock:
            self._connect()
            self._next_id += 1
            request = wire.dumps(
                {
                    "id": self._next_id,
                    "method": method,
                    "args": wire.encode_value(list(args)),
                    "kwargs": wire.encode_value(dict(kwargs)),
                }
            )
            try:
                self._socket.settimeout(timeout_s)
                self._stream.write(request)
                self._stream.flush()
                line = self._stream.readline(MAX_FRAME_BYTES)
            except socket.timeout:
                self._drop_connection()
                raise ShardTimeoutError(
                    f"shard {self.shard_id}: {method} exceeded its "
                    f"{(timeout_s or 0) * 1000:.0f} ms slice"
                ) from None
            except OSError as exc:
                self._drop_connection()
                raise ShardUnavailableError(
                    f"shard {self.shard_id}: connection failed during "
                    f"{method} ({exc})"
                ) from None
            if not line:
                self._drop_connection()
                raise ShardUnavailableError(
                    f"shard {self.shard_id}: worker closed the connection "
                    f"during {method}"
                )
        response = wire.loads(line)
        if response.get("ok"):
            return wire.decode_value(response.get("result"))
        raise wire.decode_error(response.get("error") or {})

    def __getattr__(self, name: str):
        """Any worker method not defined locally dispatches remotely —
        replayed mutations and chaos verbs (``kill``, ``restart``) use
        plain attribute calls."""
        if name.startswith("_"):
            raise AttributeError(name)

        def remote(*args, **kwargs):
            return self.invoke_rpc(name, args, kwargs, None)

        remote.__name__ = name
        return remote


__all__ = [
    "MAX_FRAME_BYTES",
    "SocketShardProxy",
    "WorkerServer",
    "start_worker_process",
]
