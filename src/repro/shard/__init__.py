"""Sharded warehouse: hybrid-key partitioning, replication-aware
placement, and chaos-hardened scatter-gather over worker shards."""

from repro.shard.coordinator import ShardedSpate
from repro.shard.key import (
    RegionMap,
    groups_for_shard,
    leaf_key,
    shards_for_group,
)
from repro.shard.rpc import (
    CircuitBreaker,
    DeadlineBudget,
    ShardClient,
    ShardCounters,
    failure_reason,
)
from repro.shard.split import split_snapshot
from repro.shard.worker import ShardWorker, group_store_config

__all__ = [
    "CircuitBreaker",
    "DeadlineBudget",
    "RegionMap",
    "ShardClient",
    "ShardCounters",
    "ShardWorker",
    "ShardedSpate",
    "failure_reason",
    "group_store_config",
    "groups_for_shard",
    "leaf_key",
    "shards_for_group",
    "split_snapshot",
]
