"""Sharded warehouse: hybrid-key partitioning, replication-aware
placement, region-routed scatter, and chaos-hardened scatter-gather
over worker shards (in-process or socket-backed processes)."""

from repro.shard.coordinator import ShardedSpate
from repro.shard.key import (
    KNOWN_REGION_LAYOUTS,
    RegionMap,
    effective_replication,
    groups_for_shard,
    leaf_key,
    region_grid_shape,
    shards_for_group,
)
from repro.shard.rpc import (
    CircuitBreaker,
    DeadlineBudget,
    ShardClient,
    ShardCounters,
    failure_reason,
)
from repro.shard.split import split_snapshot
from repro.shard.transport import SocketShardProxy, start_worker_process
from repro.shard.worker import ShardWorker, group_store_config

__all__ = [
    "CircuitBreaker",
    "DeadlineBudget",
    "KNOWN_REGION_LAYOUTS",
    "RegionMap",
    "ShardClient",
    "ShardCounters",
    "ShardWorker",
    "ShardedSpate",
    "SocketShardProxy",
    "effective_replication",
    "failure_reason",
    "group_store_config",
    "groups_for_shard",
    "leaf_key",
    "region_grid_shape",
    "shards_for_group",
    "split_snapshot",
    "start_worker_process",
]
