"""Process-backed worker shard: hosts its slice of the region groups.

A :class:`ShardWorker` models one worker process of the cluster.  It
owns one full :class:`~repro.core.spate.Spate` store per region group
it hosts — each over its *own* simulated DFS, with metadata durability
forced on — so killing and restarting the worker exercises the real
crash-recovery machinery: ``kill()`` drops the store objects (the
process dies; the DFS state, standing in for the disks, survives) and
``restart()`` reopens every group store with ``Spate.open`` — newest
checkpoint + WAL replay — exactly the PR-2/3 recovery path.

Methods raise :class:`~repro.errors.ShardUnavailableError` while the
worker is dead; the RPC client turns that into failover.  Application
errors (bad query, quarantined leaf in strict mode) propagate as
themselves — they are deterministic answers, not shard failures, and
must never trigger a retry.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import ShardConfig, SpateConfig
from repro.core.snapshot import Snapshot, Table
from repro.errors import ShardUnavailableError


def group_store_config(config: SpateConfig) -> SpateConfig:
    """Derive a group store's config from the coordinator's.

    Durability is forced on (kill/restart needs WAL replay to work),
    sharding is reset (a group store is always single-shard), and the
    decode executor is pinned serial — eight stores per worker times N
    workers would otherwise multiply thread pools for no answer-side
    difference.  ``region_layout`` is carried over: the group store
    records it in its warehouse creation record, and ``restart()``'s
    ``Spate.open`` refuses a contradicting layout.
    """
    return dataclasses.replace(
        config,
        durability=dataclasses.replace(config.durability, enabled=True),
        sharding=ShardConfig(region_layout=config.sharding.region_layout),
        executor="serial",
    )


class ShardWorker:
    """One worker shard hosting ``groups`` of the region-group ring."""

    def __init__(
        self,
        shard_id: int,
        config: SpateConfig,
        groups: list[int],
    ) -> None:
        from repro.core.spate import Spate

        self.shard_id = shard_id
        self.groups = sorted(groups)
        self._config = group_store_config(config)
        self.alive = True
        #: Times this worker was killed / restarted (chaos bookkeeping).
        self.kills = 0
        self.restarts = 0
        self._stores = {
            group: Spate(self._config) for group in self.groups
        }
        #: group -> the group store's DFS; survives ``kill()`` the way
        #: disks survive a process crash.
        self._dfs = {
            group: store.dfs for group, store in self._stores.items()
        }

    # ------------------------------------------------------------------
    # Lifecycle (driven by the chaos harness / coordinator)
    # ------------------------------------------------------------------

    def kill(self) -> None:
        """Crash the worker process: stores vanish, DFS state stays."""
        self.alive = False
        self.kills += 1
        self._stores = {}

    def restart(self) -> None:
        """Recover every group store from its durable state (checkpoint
        + WAL replay) and rejoin the ring."""
        from repro.core.spate import Spate

        stores = {}
        for group in self.groups:
            stores[group] = Spate.open(self._config, dfs=self._dfs[group])
        self._stores = stores
        self.alive = True
        self.restarts += 1

    def _store(self, group: int):
        if not self.alive:
            raise ShardUnavailableError(f"shard {self.shard_id} is dead")
        store = self._stores.get(group)
        if store is None:
            raise ShardUnavailableError(
                f"shard {self.shard_id} does not host group {group}"
            )
        return store

    # ------------------------------------------------------------------
    # Shard RPC surface (called through repro.shard.rpc)
    # ------------------------------------------------------------------

    def ping(self) -> str:
        """Heartbeat probe."""
        if not self.alive:
            raise ShardUnavailableError(f"shard {self.shard_id} is dead")
        return "ok"

    def register_cells(self, cells: Table) -> None:
        """Load the full CELL relation into every hosted group store —
        each store needs the whole service area so spatial filtering
        matches the unsharded warehouse exactly."""
        if not self.alive:
            raise ShardUnavailableError(f"shard {self.shard_id} is dead")
        for group in self.groups:
            self._stores[group].register_cells(cells)

    def ingest(self, group: int, sub_snapshot: Snapshot):
        """Ingest one group's sub-snapshot into its store."""
        return self._store(group).ingest(sub_snapshot)

    def finalize(self, group: int) -> None:
        self._store(group).finalize()

    def read_rows_by_epoch(
        self,
        group: int,
        table: str,
        first_epoch: int,
        last_epoch: int,
        partial_ok: bool = False,
        predicates=None,
        columns=None,
    ):
        """Scan + the telemetry the coordinator needs to merge: returns
        ``(columns, [(epoch, rows)...], coverage_dict, scan_stats)``.

        Coverage and stats are captured here, on the serving thread —
        they are thread-local on the store, so the coordinator could
        not read them after a threaded RPC returned.
        """
        store = self._store(group)
        out_columns, by_epoch = store.read_rows_by_epoch(
            table,
            first_epoch,
            last_epoch,
            partial_ok=partial_ok,
            predicates=predicates,
            columns=columns,
        )
        return out_columns, by_epoch, store.last_scan_coverage, store.last_scan_stats

    def read_columns_by_epoch(
        self,
        group: int,
        table: str,
        first_epoch: int,
        last_epoch: int,
        partial_ok: bool = False,
        predicates=None,
        columns=None,
    ):
        """Column-major twin of :meth:`read_rows_by_epoch`: returns
        ``(columns, [(epoch, column_lists)...], coverage, stats)`` for
        the coordinator's batch merge."""
        store = self._store(group)
        out_columns, by_epoch = store.read_columns_by_epoch(
            table,
            first_epoch,
            last_epoch,
            partial_ok=partial_ok,
            predicates=predicates,
            columns=columns,
        )
        return out_columns, by_epoch, store.last_scan_coverage, store.last_scan_stats

    def table_statistics(
        self, group: int, table: str, first_epoch: int, last_epoch: int
    ):
        """Planner statistics for this group's slice of ``table``."""
        return self._store(group).table_statistics(
            table, first_epoch, last_epoch
        )

    def explore(
        self,
        group: int,
        table: str,
        attributes: tuple,
        box,
        first_epoch: int,
        last_epoch: int,
        coarse: bool = False,
        partial_ok: bool = False,
        deadline_ms: int | None = None,
    ):
        return self._store(group).explore(
            table,
            attributes,
            box,
            first_epoch,
            last_epoch,
            coarse=coarse,
            partial_ok=partial_ok,
            deadline_ms=deadline_ms,
        )

    def highlights(self, group: int, first_epoch: int, last_epoch: int):
        return self._store(group).highlights(first_epoch, last_epoch)

    def table_columns(
        self, group: int, table: str, first_epoch: int, last_epoch: int
    ) -> list[str]:
        return self._store(group).table_columns(table, first_epoch, last_epoch)

    def ingested_epochs(self, group: int) -> list[int]:
        return self._store(group).ingested_epochs()

    def known_tables(self, group: int) -> list[str]:
        """Table names with live leaves in this group store — what a
        reattaching coordinator needs to rebuild its SQL catalog."""
        store = self._store(group)
        return sorted(
            {
                name
                for leaf in store.index.leaves()
                if not leaf.decayed
                for name in leaf.table_paths
            }
        )

    def run_decay(self, group: int):
        return self._store(group).run_decay()

    def decay_groups(self, group: int, older_than_epoch: int, keep_fraction: float):
        return self._store(group).decay_groups(older_than_epoch, keep_fraction)

    def heal(self, group: int):
        return self._store(group).heal()

    def store_metrics(self, group: int):
        """The group store's own WarehouseMetrics (ingest-side truth)."""
        return self._store(group).metrics


__all__ = ["ShardWorker", "group_store_config"]
