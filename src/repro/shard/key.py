"""Hybrid (cell-region, day) partitioning key and replica placement.

The warehouse is partitioned spatially into a FIXED number of region
groups (``ShardConfig.region_groups``), independent of how many worker
shards serve them.  Each record's cell centroid falls into a tile of a
uniform grid over the service area; tiles fold onto region groups.  A
leaf — one epoch's slice of one group — is addressed by the hybrid key
``(group, day_key)``: the group picks the shard set, the day key places
the leaf inside that group store's temporal index.

Keeping the group count fixed is what makes scatter-gather answers
independent of the shard count: the same sub-snapshots exist whether
one shard hosts all groups or eight shards host one each, and the
coordinator always merges them in group-rank order.  Placement then
maps groups onto shards round-robin with replication — a group's
replicas land on *distinct* shards, so losing any single shard leaves
every group with a live copy (as long as ``shards >= 2``).

Region layouts
--------------

The tile→group fold is *versioned* (``ShardConfig.region_layout``),
because a warehouse's placement must never change under its feet:

- **layout 1** (legacy): ``(row * region_groups + col) % region_groups``
  over a ``region_groups x region_groups`` grid.  The row term is a
  multiple of the modulus, so it vanishes — groups degenerate to
  vertical stripes of the ``col`` coordinate.  Kept bit-for-bit so
  warehouses created before the fix keep their stripe placement.
- **layout 2** (fixed): the grid is factored ``cols x rows`` with
  ``cols * rows == region_groups`` (rows = the largest divisor
  ``<= sqrt(region_groups)``), so every tile IS a region group —
  true two-dimensional tiles, which is what box-based routing prunes
  against.  For 8 groups that is a 4x2 grid.

Both layouts expose the same routing helpers; layout 1 simply prunes
only along the x axis.  Routing is a *superset* contract: unknown
cells and cell-less tables always live in group 0, so every candidate
set includes group 0.
"""

from __future__ import annotations

import logging

from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.grid import UniformGrid

logger = logging.getLogger(__name__)

#: Region layouts this build understands (recorded per warehouse).
KNOWN_REGION_LAYOUTS = (1, 2)


def region_grid_shape(region_groups: int, layout: int) -> tuple[int, int]:
    """(cols, rows) of the region grid for one layout.

    Layout 1 keeps the legacy square ``G x G`` grid; layout 2 factors
    ``G = cols * rows`` with rows the largest divisor ``<= sqrt(G)``,
    so the fold below is a bijection from tiles to groups.  A prime
    group count degenerates to ``G x 1`` — stripes again, but by
    arithmetic necessity rather than by accident.
    """
    if layout == 1:
        return region_groups, region_groups
    rows = 1
    d = 1
    while d * d <= region_groups:
        if region_groups % d == 0:
            rows = d
        d += 1
    return region_groups // rows, rows


class RegionMap:
    """cell id -> region group, via a uniform grid over the cell area.

    Cells outside the area (should not happen — the area is built from
    the cells themselves) and unknown cell ids map to group 0, so a
    row is never lost, merely co-located with the first group.
    """

    def __init__(
        self,
        cell_locations: dict[str, Point],
        region_groups: int,
        layout: int = 2,
    ) -> None:
        if layout not in KNOWN_REGION_LAYOUTS:
            raise ValueError(f"unknown region layout {layout!r}")
        self.region_groups = region_groups
        self.layout = layout
        self._group_of: dict[str, int] = {}
        self._grid: UniformGrid | None = None
        if not cell_locations:
            return
        area = BoundingBox.from_points(list(cell_locations.values()))
        if area.width <= 0 or area.height <= 0:
            # Degenerate service area (single cell, or all collinear):
            # no grid to tile, everything lives in group 0.
            return
        cols, rows = region_grid_shape(region_groups, layout)
        grid = UniformGrid(area, cols=cols, rows=rows)
        self._grid = grid
        for cell_id, point in cell_locations.items():
            try:
                tile = grid.tile_of(point)
            except ValueError:
                self._group_of[cell_id] = 0
                continue
            self._group_of[cell_id] = self._fold(tile)

    def _fold(self, tile: tuple[int, int]) -> int:
        """Tile -> region group, per this map's layout version."""
        col, row = tile
        if self.layout == 1:
            # Legacy stripes: the row term is a multiple of the modulus.
            return (row * self.region_groups + col) % self.region_groups
        return (row * self._grid.cols + col) % self.region_groups

    def group_of(self, cell_id: str) -> int:
        """Region group owning this cell's records (0 when unknown)."""
        return self._group_of.get(cell_id, 0)

    # ------------------------------------------------------------------
    # Routing: candidate groups for a query's spatial footprint.
    # Both helpers return a *superset* of the groups holding matching
    # rows — group 0 is always included because unknown cells and
    # cell-less tables land there.
    # ------------------------------------------------------------------

    def groups_for_box(self, box: BoundingBox) -> list[int]:
        """Candidate groups for an explore box.

        Every cell centroid inside ``box`` lies in a grid tile that
        intersects ``box``, and ``tile_of`` / ``tiles_intersecting``
        share the same floor arithmetic, so folding the intersecting
        tiles covers every matching cell's group.  With no grid (no
        cells registered) everything lives in group 0.
        """
        groups = {0}
        if self._grid is not None:
            for tile in self._grid.tiles_intersecting(box):
                groups.add(self._fold(tile))
        return sorted(groups)

    def groups_for_cells(self, cell_ids) -> list[int]:
        """Candidate groups for an explicit cell-id set (SQL cell
        predicates).  Unknown ids map to group 0, which is included
        unconditionally anyway."""
        groups = {0}
        for cell_id in cell_ids:
            groups.add(self.group_of(str(cell_id)))
        return sorted(groups)


def leaf_key(group: int, day_key: str) -> tuple[int, str]:
    """The hybrid partition key of one leaf: (region group, day)."""
    return (group, day_key)


def effective_replication(shards: int, replication: int) -> int:
    """The replication factor placement can actually deliver: replicas
    must land on distinct shards, so the factor is clamped to the ring
    size."""
    return min(max(1, replication), max(1, shards))


#: (shards, replication) pairs whose clamp was already logged — the
#: placement math runs on every call and must not spam.
_clamp_logged: set[tuple[int, int]] = set()


def shards_for_group(group: int, shards: int, replication: int) -> list[int]:
    """Hosting shards for a group, primary first, replicas on distinct
    shards (round-robin from the primary).

    When ``replication > shards`` the factor is clamped — there are not
    enough distinct shards to hold more copies.  The clamp is logged
    once per (shards, replication) pair and surfaced through
    ``WarehouseMetrics`` (``spate metrics``); it must not silently
    degrade durability.
    """
    copies = effective_replication(shards, replication)
    if copies < replication and (shards, replication) not in _clamp_logged:
        _clamp_logged.add((shards, replication))
        logger.warning(
            "group replication %d clamped to %d: only %d distinct "
            "shard(s) to place copies on",
            replication,
            copies,
            shards,
        )
    return [(group + i) % shards for i in range(copies)]


def groups_for_shard(
    shard_id: int, shards: int, region_groups: int, replication: int
) -> list[int]:
    """Every group hosted (as primary or replica) by one shard."""
    return [
        group
        for group in range(region_groups)
        if shard_id in shards_for_group(group, shards, replication)
    ]


__all__ = [
    "KNOWN_REGION_LAYOUTS",
    "RegionMap",
    "effective_replication",
    "leaf_key",
    "region_grid_shape",
    "shards_for_group",
    "groups_for_shard",
]
