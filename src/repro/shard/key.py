"""Hybrid (cell-region, day) partitioning key and replica placement.

The warehouse is partitioned spatially into a FIXED number of region
groups (``ShardConfig.region_groups``), independent of how many worker
shards serve them.  Each record's cell centroid falls into a tile of a
uniform grid over the service area; tiles fold onto region groups.  A
leaf — one epoch's slice of one group — is addressed by the hybrid key
``(group, day_key)``: the group picks the shard set, the day key places
the leaf inside that group store's temporal index.

Keeping the group count fixed is what makes scatter-gather answers
independent of the shard count: the same sub-snapshots exist whether
one shard hosts all groups or eight shards host one each, and the
coordinator always merges them in group-rank order.  Placement then
maps groups onto shards round-robin with replication — a group's
replicas land on *distinct* shards, so losing any single shard leaves
every group with a live copy (as long as ``shards >= 2``).
"""

from __future__ import annotations

from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.grid import UniformGrid


class RegionMap:
    """cell id -> region group, via a uniform grid over the cell area.

    Cells outside the area (should not happen — the area is built from
    the cells themselves) and unknown cell ids map to group 0, so a
    row is never lost, merely co-located with the first group.
    """

    def __init__(
        self,
        cell_locations: dict[str, Point],
        region_groups: int,
    ) -> None:
        self.region_groups = region_groups
        self._group_of: dict[str, int] = {}
        if not cell_locations:
            return
        area = BoundingBox.from_points(list(cell_locations.values()))
        grid = UniformGrid(area, cols=region_groups, rows=region_groups)
        for cell_id, point in cell_locations.items():
            try:
                col, row = grid.tile_of(point)
            except ValueError:
                self._group_of[cell_id] = 0
                continue
            self._group_of[cell_id] = (row * region_groups + col) % region_groups

    def group_of(self, cell_id: str) -> int:
        """Region group owning this cell's records (0 when unknown)."""
        return self._group_of.get(cell_id, 0)


def leaf_key(group: int, day_key: str) -> tuple[int, str]:
    """The hybrid partition key of one leaf: (region group, day)."""
    return (group, day_key)


def shards_for_group(group: int, shards: int, replication: int) -> list[int]:
    """Hosting shards for a group, primary first, replicas on distinct
    shards (round-robin from the primary)."""
    copies = min(max(1, replication), shards)
    return [(group + i) % shards for i in range(copies)]


def groups_for_shard(
    shard_id: int, shards: int, region_groups: int, replication: int
) -> list[int]:
    """Every group hosted (as primary or replica) by one shard."""
    return [
        group
        for group in range(region_groups)
        if shard_id in shards_for_group(group, shards, replication)
    ]


__all__ = ["RegionMap", "leaf_key", "shards_for_group", "groups_for_shard"]
