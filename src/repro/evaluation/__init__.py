"""Experiment harness shared by the benchmarks and examples.

Builds the three compared frameworks (RAW / SHAHED / SPATE) over one
synthetic trace, drives ingestion, and aggregates the metrics the
paper's figures plot (ingestion time per snapshot, disk space, task
response time).
"""

from repro.evaluation.harness import (
    EvaluationSetup,
    FrameworkRun,
    build_frameworks,
    format_table,
    ingest_trace,
    run_all,
)

__all__ = [
    "EvaluationSetup",
    "FrameworkRun",
    "build_frameworks",
    "ingest_trace",
    "run_all",
    "format_table",
]
