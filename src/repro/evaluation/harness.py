"""Framework construction and trace-driven ingestion harness."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.baselines.base import Framework, IngestStats
from repro.baselines.raw import RawFramework
from repro.baselines.shahed import ShahedFramework
from repro.core.config import DecayPolicyConfig, SpateConfig
from repro.core.snapshot import Snapshot
from repro.core.spate import Spate
from repro.dfs.filesystem import IoCostModel, SimulatedDFS
from repro.spatial.geometry import Point
from repro.telco.generator import TelcoTraceGenerator, TraceConfig
from repro.telco.workload import day_period_of_epoch, weekday_of_epoch


def bench_scale(default: float = 0.002) -> float:
    """Trace scale for benchmarks, overridable via ``SPATE_BENCH_SCALE``."""
    try:
        return float(os.environ.get("SPATE_BENCH_SCALE", default))
    except ValueError:
        return default


def bench_codec(default: str = "gzip-ref") -> str:
    """Storage codec for benchmarks, overridable via ``SPATE_BENCH_CODEC``.

    ``gzip-ref`` (zlib) is the default for the framework-comparison
    figures: the paper's GZIP runs at C speed via ``java.util.zip``, so
    the zlib adapter is the faithful *performance* analogue, while the
    from-scratch ``gzip`` codec (set ``SPATE_BENCH_CODEC=gzip``) is the
    algorithmically-from-scratch path exercised by the Table I bench.
    """
    return os.environ.get("SPATE_BENCH_CODEC", default)


@dataclass
class EvaluationSetup:
    """One generated trace plus the three frameworks built over it."""

    generator: TelcoTraceGenerator
    frameworks: dict[str, Framework]

    @property
    def cell_locations(self) -> dict[str, Point]:
        """Cell id -> centroid for the generated topology."""
        return {
            cell.cell_id: cell.centroid for cell in self.generator.topology.cells
        }

    def cell_clusters(self) -> dict[str, str]:
        """Cell id -> controller id (the T3 'cluster of cells')."""
        return {
            cell.cell_id: cell.controller_id
            for cell in self.generator.topology.cells
        }


@dataclass
class FrameworkRun:
    """Ingestion outcome for one framework."""

    framework: Framework
    reports: list[IngestStats] = field(default_factory=list)

    def mean_ingest_seconds(self, epochs: set[int] | None = None) -> float:
        """Average ingest seconds, optionally over a subset of epochs."""
        picked = [
            r.seconds for r in self.reports if epochs is None or r.epoch in epochs
        ]
        return sum(picked) / len(picked) if picked else 0.0

    def stored_bytes(self) -> int:
        """Logical bytes this framework has on its DFS."""
        return self.framework.stored_logical_bytes

    def by_day_period(self) -> dict[str, float]:
        """Mean ingestion seconds per day period (Figure 7's series)."""
        buckets: dict[str, list[float]] = {}
        for report in self.reports:
            buckets.setdefault(day_period_of_epoch(report.epoch), []).append(
                report.seconds
            )
        return {k: sum(v) / len(v) for k, v in buckets.items()}

    def by_weekday(self) -> dict[str, float]:
        """Mean ingestion seconds per weekday (Figure 9's series)."""
        buckets: dict[str, list[float]] = {}
        for report in self.reports:
            buckets.setdefault(weekday_of_epoch(report.epoch), []).append(
                report.seconds
            )
        return {k: sum(v) / len(v) for k, v in buckets.items()}

    def stored_bytes_by(self, key_of) -> dict[str, int]:
        """Stored (post-compression) bytes grouped by an epoch keyer."""
        buckets: dict[str, int] = {}
        for report in self.reports:
            key = key_of(report.epoch)
            buckets[key] = buckets.get(key, 0) + report.stored_bytes
        return buckets


def build_frameworks(
    generator: TelcoTraceGenerator,
    codec: str = "gzip",
    decay: DecayPolicyConfig | None = None,
    io_model: IoCostModel | None = None,
    model_io: bool = True,
) -> EvaluationSetup:
    """Build RAW, SHAHED and SPATE over one trace's topology.

    Each framework gets its own simulated DFS so byte accounting stays
    independent (the paper runs them on the same physical HDFS but
    measures their files separately).  By default every DFS carries an
    :class:`~repro.dfs.filesystem.IoCostModel` so timings include the
    disk/network cost the in-process simulator doesn't physically pay
    — without it, RAW's reads from RAM would erase the byte-volume
    effects Figures 7-12 measure.
    """
    area = generator.topology.area
    cell_locations = {
        cell.cell_id: cell.centroid for cell in generator.topology.cells
    }
    if io_model is None and model_io:
        io_model = IoCostModel()
    spate_config = SpateConfig(
        codec=codec,
        decay=decay or DecayPolicyConfig(enabled=False),
    )
    spate = Spate(spate_config, dfs=SimulatedDFS(io_model=io_model))
    spate.register_cells(generator.cells_table())
    frameworks: dict[str, Framework] = {
        "RAW": RawFramework(SimulatedDFS(io_model=io_model)),
        "SHAHED": ShahedFramework(
            SimulatedDFS(io_model=io_model),
            area=area,
            cell_locations=cell_locations,
        ),
        "SPATE": spate,
    }
    return EvaluationSetup(generator=generator, frameworks=frameworks)


def ingest_trace(
    setup: EvaluationSetup,
    snapshots: list[Snapshot] | None = None,
    epochs: list[int] | None = None,
) -> dict[str, FrameworkRun]:
    """Feed the trace to every framework, collecting ingest reports."""
    if snapshots is None:
        snapshots = list(setup.generator.generate(epochs))
    runs = {
        name: FrameworkRun(framework=fw)
        for name, fw in setup.frameworks.items()
    }
    for snapshot in snapshots:
        for run in runs.values():
            run.reports.append(run.framework.ingest(snapshot))
    for run in runs.values():
        run.framework.finalize()
    return runs


def run_all(
    scale: float | None = None,
    days: int = 7,
    codec: str | None = None,
    seed: int = 2017,
) -> tuple[EvaluationSetup, dict[str, FrameworkRun]]:
    """One-call setup: generate, build, ingest — the benches' entry point."""
    generator = TelcoTraceGenerator(
        TraceConfig(scale=scale if scale is not None else bench_scale(),
                    days=days, seed=seed)
    )
    setup = build_frameworks(generator, codec=codec or bench_codec())
    runs = ingest_trace(setup)
    return setup, runs


def format_table(
    title: str,
    row_labels: list[str],
    series: dict[str, dict[str, float]],
    unit: str = "",
    precision: int = 4,
) -> str:
    """Render a figure's data as the text table the benches print.

    Args:
        title: heading.
        row_labels: x-axis categories (day periods, weekdays, tasks...).
        series: framework name -> {row label -> value}.
        unit: printed in the header.
        precision: decimals.
    """
    names = list(series)
    width = max(12, *(len(n) + 2 for n in names))
    label_width = max(10, *(len(r) + 2 for r in row_labels)) if row_labels else 10
    lines = [title, "-" * len(title)]
    header = " " * label_width + "".join(f"{n:>{width}}" for n in names)
    if unit:
        header += f"   ({unit})"
    lines.append(header)
    for label in row_labels:
        cells = "".join(
            f"{series[name].get(label, float('nan')):>{width}.{precision}f}"
            for name in names
        )
        lines.append(f"{label:<{label_width}}{cells}")
    return "\n".join(lines)
