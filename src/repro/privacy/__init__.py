"""Privacy sanitization: k-anonymity over query result sets (task T5).

Replaces the ARX library the paper calls: generalization hierarchies
(:mod:`repro.privacy.hierarchy`), a full-domain generalization
k-anonymizer with residual suppression and a Mondrian-style
multidimensional partitioner (:mod:`repro.privacy.kanonymity`), and
quality metrics (:mod:`repro.privacy.metrics`).
"""

from repro.privacy.hierarchy import (
    GeneralizationHierarchy,
    IntervalHierarchy,
    ValueMapHierarchy,
    default_cdr_hierarchies,
)
from repro.privacy.kanonymity import (
    AnonymizationResult,
    full_domain_anonymize,
    is_k_anonymous,
    mondrian_anonymize,
)
from repro.privacy.ldiversity import (
    is_entropy_l_diverse,
    is_l_diverse,
    l_diverse_anonymize,
)
from repro.privacy.metrics import (
    discernibility_metric,
    equivalence_classes,
    generalization_information_loss,
)

__all__ = [
    "GeneralizationHierarchy",
    "IntervalHierarchy",
    "ValueMapHierarchy",
    "default_cdr_hierarchies",
    "AnonymizationResult",
    "full_domain_anonymize",
    "mondrian_anonymize",
    "is_k_anonymous",
    "equivalence_classes",
    "discernibility_metric",
    "generalization_information_loss",
    "is_l_diverse",
    "is_entropy_l_diverse",
    "l_diverse_anonymize",
]
