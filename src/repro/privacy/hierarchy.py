"""Generalization hierarchies for quasi-identifier attributes.

A hierarchy maps a value through successively coarser levels, ending at
the fully suppressed ``"*"``.  Level 0 is the original value.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

SUPPRESSED = "*"


class GeneralizationHierarchy(ABC):
    """Maps values to coarser representations, level by level."""

    @property
    @abstractmethod
    def height(self) -> int:
        """Number of levels above the original (level ``height`` is "*")."""

    @abstractmethod
    def generalize(self, value: str, level: int) -> str:
        """``value`` at generalization ``level`` (0 = unchanged)."""


class ValueMapHierarchy(GeneralizationHierarchy):
    """Explicit per-level value mappings (categorical attributes)."""

    def __init__(self, levels: list[dict[str, str]], name: str = "") -> None:
        """
        Args:
            levels: ``levels[i]`` maps a level-``i`` value to its
                level-``i+1`` parent; unknown values generalize to "*".
            name: label for error messages.
        """
        self._levels = levels
        self.name = name

    @property
    def height(self) -> int:
        """Number of generalization levels above the original value."""
        return len(self._levels) + 1

    def generalize(self, value: str, level: int) -> str:
        """``value`` at generalization ``level`` (0 = unchanged)."""
        if level < 0 or level > self.height:
            raise ValueError(f"level {level} out of range for {self.name!r}")
        if level >= self.height:
            return SUPPRESSED
        current = value
        for step in range(level):
            if step >= len(self._levels):
                return SUPPRESSED
            current = self._levels[step].get(current, SUPPRESSED)
            if current == SUPPRESSED:
                return SUPPRESSED
        return current


class IntervalHierarchy(GeneralizationHierarchy):
    """Numeric generalization by widening intervals.

    Level ``i`` buckets the value into ranges of ``base_width *
    factor**(i-1)``, rendered as ``"[lo-hi)"``.
    """

    def __init__(self, base_width: int = 10, factor: int = 5, levels: int = 3) -> None:
        if base_width < 1 or factor < 2 or levels < 1:
            raise ValueError("invalid interval hierarchy parameters")
        self._base = base_width
        self._factor = factor
        self._levels = levels

    @property
    def height(self) -> int:
        """Number of generalization levels above the original value."""
        return self._levels + 1

    def generalize(self, value: str, level: int) -> str:
        """``value`` at generalization ``level`` (0 = unchanged)."""
        if level == 0:
            return value
        if level >= self.height:
            return SUPPRESSED
        try:
            number = int(value)
        except ValueError:
            return SUPPRESSED
        width = self._base * self._factor ** (level - 1)
        lo = (number // width) * width
        return f"[{lo}-{lo + width})"


class PrefixHierarchy(GeneralizationHierarchy):
    """Generalize identifiers by truncating suffix characters
    (cell ids like ``C01234`` -> ``C012**`` -> ``C0****`` -> ``*``)."""

    def __init__(self, chop_per_level: int = 2, levels: int = 3) -> None:
        self._chop = chop_per_level
        self._levels = levels

    @property
    def height(self) -> int:
        """Number of generalization levels above the original value."""
        return self._levels + 1

    def generalize(self, value: str, level: int) -> str:
        """``value`` at generalization ``level`` (0 = unchanged)."""
        if level == 0:
            return value
        if level >= self.height or not value:
            return SUPPRESSED
        keep = max(0, len(value) - self._chop * level)
        if keep == 0:
            return SUPPRESSED
        return value[:keep] + "*" * (len(value) - keep)


def default_cdr_hierarchies() -> dict[str, GeneralizationHierarchy]:
    """Hierarchies for the CDR quasi-identifiers used by task T5."""
    plan = ValueMapHierarchy(
        levels=[
            {
                "prepaid": "consumer",
                "postpaid": "consumer",
                "business": "enterprise",
                "iot": "enterprise",
            }
        ],
        name="plan_type",
    )
    tech = ValueMapHierarchy(
        levels=[{"2G": "legacy", "3G": "legacy", "4G": "modern"}],
        name="tech",
    )
    call_type = ValueMapHierarchy(
        levels=[{"voice": "realtime", "sms": "messaging", "data": "data"}],
        name="call_type",
    )
    return {
        "cell_id": PrefixHierarchy(chop_per_level=2, levels=3),
        "plan_type": plan,
        "tech": tech,
        "call_type": call_type,
    }
