"""Anonymization quality metrics."""

from __future__ import annotations

from collections import Counter

from repro.privacy.hierarchy import GeneralizationHierarchy


def equivalence_classes(
    rows: list[list[str]], quasi_indexes: list[int]
) -> dict[tuple[str, ...], int]:
    """Quasi-identifier signature -> class size."""
    return dict(Counter(tuple(row[i] for i in quasi_indexes) for row in rows))


def discernibility_metric(rows: list[list[str]], quasi_indexes: list[int]) -> int:
    """Bayardo-Agrawal discernibility: sum over classes of |class|^2.

    Lower is better (small classes keep records distinguishable).
    """
    classes = equivalence_classes(rows, quasi_indexes)
    return sum(size * size for size in classes.values())


def generalization_information_loss(
    levels: dict[str, int],
    hierarchies: dict[str, "GeneralizationHierarchy"],
) -> float:
    """Mean normalized generalization height in [0, 1].

    0 = untouched data, 1 = everything suppressed.  Mondrian results
    (level -1 sentinels) are excluded from the mean.
    """
    ratios = []
    for name, level in levels.items():
        if level < 0:
            continue
        height = hierarchies[name].height
        ratios.append(level / height if height else 0.0)
    return sum(ratios) / len(ratios) if ratios else 0.0


def suppression_ratio(released: int, suppressed: int) -> float:
    """Fraction of input rows suppressed."""
    total = released + suppressed
    return suppressed / total if total else 0.0
