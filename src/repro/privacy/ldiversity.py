"""l-diversity on top of k-anonymity (Machanavajjhala et al. 2007).

k-anonymity leaves a homogeneity attack open: if every record in an
equivalence class shares the same *sensitive* value, hiding among k
peers reveals it anyway.  Distinct l-diversity additionally requires
every released class to contain at least ``l`` distinct sensitive
values; entropy l-diversity strengthens that to an entropy bound.

The ARX library the paper uses for T5 supports both; this module adds
them to the reproduction's sanitizer.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter, defaultdict

from repro.errors import AnonymityUnsatisfiableError, PrivacyError
from repro.privacy.hierarchy import GeneralizationHierarchy
from repro.privacy.kanonymity import AnonymizationResult, _recode, _resolve_columns


def class_sensitive_values(
    rows: list[list[str]],
    quasi_indexes: list[int],
    sensitive_index: int,
) -> dict[tuple[str, ...], Counter]:
    """Quasi signature -> Counter of sensitive values."""
    classes: dict[tuple[str, ...], Counter] = defaultdict(Counter)
    for row in rows:
        signature = tuple(row[i] for i in quasi_indexes)
        classes[signature][row[sensitive_index]] += 1
    return dict(classes)


def is_l_diverse(
    rows: list[list[str]],
    quasi_indexes: list[int],
    sensitive_index: int,
    l: int,
) -> bool:
    """Distinct l-diversity: every class has >= l distinct sensitive values."""
    if not rows:
        return True
    classes = class_sensitive_values(rows, quasi_indexes, sensitive_index)
    return all(len(counter) >= l for counter in classes.values())


def is_entropy_l_diverse(
    rows: list[list[str]],
    quasi_indexes: list[int],
    sensitive_index: int,
    l: int,
) -> bool:
    """Entropy l-diversity: every class's sensitive-value entropy >= log(l)."""
    if not rows:
        return True
    threshold = math.log(l)
    for counter in class_sensitive_values(
        rows, quasi_indexes, sensitive_index
    ).values():
        total = sum(counter.values())
        entropy = -sum(
            (count / total) * math.log(count / total)
            for count in counter.values()
        )
        if entropy < threshold - 1e-12:
            return False
    return True


def l_diverse_anonymize(
    rows: list[list[str]],
    columns: list[str],
    quasi_identifiers: list[str],
    sensitive_attribute: str,
    hierarchies: dict[str, GeneralizationHierarchy],
    k: int = 5,
    l: int = 2,
    max_suppression: float = 0.05,
) -> AnonymizationResult:
    """Full-domain generalization to simultaneous k-anonymity and
    distinct l-diversity, suppressing residual violating classes.

    Raises:
        PrivacyError: on unknown columns, invalid k/l, or a sensitive
            attribute listed among the quasi-identifiers.
        AnonymityUnsatisfiableError: when no lattice point satisfies
            both constraints within the suppression budget.
    """
    if k < 1 or l < 1:
        raise PrivacyError("k and l must be at least 1")
    if sensitive_attribute in quasi_identifiers:
        raise PrivacyError("sensitive attribute cannot be a quasi-identifier")
    quasi_indexes = _resolve_columns(columns, quasi_identifiers)
    (sensitive_index,) = _resolve_columns(columns, [sensitive_attribute])
    if not rows:
        return AnonymizationResult(rows=[], columns=list(columns), k=k)

    heights = [hierarchies[q].height for q in quasi_identifiers]
    candidates = sorted(
        itertools.product(*(range(h + 1) for h in heights)),
        key=lambda levels: (sum(levels), max(levels)),
    )
    budget = int(len(rows) * max_suppression)

    for levels in candidates:
        recoded = _recode(rows, quasi_indexes, quasi_identifiers, hierarchies, levels)
        classes = class_sensitive_values(recoded, quasi_indexes, sensitive_index)
        violating = {
            signature
            for signature, counter in classes.items()
            if sum(counter.values()) < k or len(counter) < l
        }
        n_suppressed = sum(
            sum(classes[s].values()) for s in violating
        )
        if n_suppressed <= budget:
            released = [
                row
                for row in recoded
                if tuple(row[i] for i in quasi_indexes) not in violating
            ]
            return AnonymizationResult(
                rows=released,
                columns=list(columns),
                k=k,
                levels=dict(zip(quasi_identifiers, levels)),
                suppressed_rows=n_suppressed,
            )

    raise AnonymityUnsatisfiableError(
        f"cannot reach ({k}-anonymity, {l}-diversity) within "
        f"{max_suppression:.0%} suppression"
    )
