"""k-anonymity algorithms (Sweeney 2002), task T5's sanitizer.

Two algorithms:

- :func:`full_domain_anonymize` — full-domain generalization: search
  the per-attribute level lattice breadth-first for the lowest levels
  reaching k-anonymity, suppressing residual small equivalence classes
  (bounded by ``max_suppression``).
- :func:`mondrian_anonymize` — Mondrian multidimensional partitioning
  for numeric quasi-identifiers: recursively median-split while every
  part keeps at least ``k`` rows, then recode each part to its range.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import AnonymityUnsatisfiableError, PrivacyError
from repro.privacy.hierarchy import GeneralizationHierarchy


@dataclass
class AnonymizationResult:
    """Outcome of a sanitization run."""

    rows: list[list[str]]
    columns: list[str]
    k: int
    levels: dict[str, int] = field(default_factory=dict)
    suppressed_rows: int = 0

    @property
    def released_rows(self) -> int:
        """Number of rows in the released (non-suppressed) set."""
        return len(self.rows)


def is_k_anonymous(rows: list[list[str]], quasi_indexes: list[int], k: int) -> bool:
    """True when every quasi-identifier combination occurs >= k times."""
    if not rows:
        return True
    counts = Counter(tuple(row[i] for i in quasi_indexes) for row in rows)
    return min(counts.values()) >= k


def full_domain_anonymize(
    rows: list[list[str]],
    columns: list[str],
    quasi_identifiers: list[str],
    hierarchies: dict[str, GeneralizationHierarchy],
    k: int = 5,
    max_suppression: float = 0.05,
) -> AnonymizationResult:
    """Full-domain generalization to k-anonymity.

    Searches level vectors in order of total generalization height and
    returns the first (lowest-distortion) one whose residual suppression
    stays within ``max_suppression``.

    Raises:
        PrivacyError: on unknown quasi-identifier columns.
        AnonymityUnsatisfiableError: if even full generalization plus
            allowed suppression cannot reach k.
    """
    if k < 1:
        raise PrivacyError("k must be at least 1")
    quasi_indexes = _resolve_columns(columns, quasi_identifiers)
    if not rows:
        return AnonymizationResult(rows=[], columns=list(columns), k=k)

    heights = [hierarchies[q].height for q in quasi_identifiers]
    candidates = sorted(
        itertools.product(*(range(h + 1) for h in heights)),
        key=lambda levels: (sum(levels), max(levels)),
    )
    budget = int(len(rows) * max_suppression)

    for levels in candidates:
        recoded = _recode(rows, quasi_indexes, quasi_identifiers, hierarchies, levels)
        counts = Counter(
            tuple(row[i] for i in quasi_indexes) for row in recoded
        )
        violating = {sig for sig, count in counts.items() if count < k}
        n_suppressed = sum(counts[sig] for sig in violating)
        if n_suppressed <= budget:
            released = [
                row
                for row in recoded
                if tuple(row[i] for i in quasi_indexes) not in violating
            ]
            return AnonymizationResult(
                rows=released,
                columns=list(columns),
                k=k,
                levels=dict(zip(quasi_identifiers, levels)),
                suppressed_rows=n_suppressed,
            )

    raise AnonymityUnsatisfiableError(
        f"cannot reach {k}-anonymity within {max_suppression:.0%} suppression"
    )


def mondrian_anonymize(
    rows: list[list[str]],
    columns: list[str],
    quasi_identifiers: list[str],
    k: int = 5,
) -> AnonymizationResult:
    """Mondrian multidimensional recoding over numeric quasi-identifiers.

    Non-numeric values are treated as 0 for ordering purposes.  Each
    final partition's quasi-identifier cells are recoded to the
    partition's ``"lo-hi"`` range (or the single value).

    Raises:
        PrivacyError: on unknown columns.
        AnonymityUnsatisfiableError: when fewer than ``k`` rows exist.
    """
    if k < 1:
        raise PrivacyError("k must be at least 1")
    quasi_indexes = _resolve_columns(columns, quasi_identifiers)
    if not rows:
        return AnonymizationResult(rows=[], columns=list(columns), k=k)
    if len(rows) < k:
        raise AnonymityUnsatisfiableError(
            f"only {len(rows)} rows; cannot form a {k}-anonymous class"
        )

    out: list[list[str]] = []

    def numeric(row: list[str], idx: int) -> float:
        try:
            return float(row[idx])
        except ValueError:
            return 0.0

    def recode_partition(part: list[list[str]]) -> None:
        summary: dict[int, str] = {}
        for idx in quasi_indexes:
            values = sorted(numeric(row, idx) for row in part)
            lo, hi = values[0], values[-1]
            summary[idx] = (
                _format_value(lo) if lo == hi else f"{_format_value(lo)}-{_format_value(hi)}"
            )
        for row in part:
            copy = list(row)
            for idx, text in summary.items():
                copy[idx] = text
            out.append(copy)

    def split(part: list[list[str]]) -> None:
        # Choose the quasi dimension with the widest normalized range.
        best_idx = None
        best_span = 0.0
        for idx in quasi_indexes:
            values = [numeric(row, idx) for row in part]
            span = max(values) - min(values)
            if span > best_span:
                best_span = span
                best_idx = idx
        if best_idx is None or len(part) < 2 * k:
            recode_partition(part)
            return
        ordered = sorted(part, key=lambda row: numeric(row, best_idx))
        middle = len(ordered) // 2
        left, right = ordered[:middle], ordered[middle:]
        if len(left) < k or len(right) < k:
            recode_partition(part)
            return
        split(left)
        split(right)

    split(list(rows))
    return AnonymizationResult(
        rows=out,
        columns=list(columns),
        k=k,
        levels={q: -1 for q in quasi_identifiers},  # -1 = multidimensional
    )


def _resolve_columns(columns: list[str], quasi: list[str]) -> list[int]:
    indexes = []
    for name in quasi:
        try:
            indexes.append(columns.index(name))
        except ValueError:
            raise PrivacyError(f"unknown quasi-identifier column {name!r}") from None
    return indexes


def _recode(
    rows: list[list[str]],
    quasi_indexes: list[int],
    quasi_names: list[str],
    hierarchies: dict[str, GeneralizationHierarchy],
    levels: tuple[int, ...],
) -> list[list[str]]:
    recoded = []
    for row in rows:
        copy = list(row)
        for idx, name, level in zip(quasi_indexes, quasi_names, levels):
            copy[idx] = (
                hierarchies[name].generalize(copy[idx], level)
                if level > 0
                else copy[idx]
            )
        recoded.append(copy)
    return recoded


def _format_value(value: float) -> str:
    return str(int(value)) if value == int(value) else f"{value:.2f}"
