"""SPATE reproduction: efficient telco big-data exploration with
compression and decaying (Costa et al., ICDE 2017).

Public API tour:

- :class:`repro.core.Spate` — the framework facade (ingest / explore).
- :class:`repro.core.SpateConfig` — codec, replication, highlights θ,
  decay policy.
- :mod:`repro.telco` — synthetic trace generator substituting the
  paper's proprietary 5 GB trace.
- :mod:`repro.compression` — from-scratch GZIP/7z/SNAPPY/ZSTD-family
  codecs plus stdlib reference adapters.
- :mod:`repro.baselines` — the RAW and SHAHED comparison frameworks.
- :mod:`repro.query` — exploration queries, tasks T1-T8, SPATE-SQL.
- :mod:`repro.engine` — the mini parallel engine with k-means, linear
  regression and colStats.
- :mod:`repro.privacy` — k-anonymity sanitization.
"""

from repro.core.config import DecayPolicyConfig, HighlightsConfig, SpateConfig
from repro.core.snapshot import Snapshot, Table

__version__ = "1.0.0"

__all__ = [
    "Spate",
    "SpateConfig",
    "HighlightsConfig",
    "DecayPolicyConfig",
    "Snapshot",
    "Table",
    "__version__",
]


def __getattr__(name: str):
    if name == "Spate":
        from repro.core.spate import Spate

        return Spate
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
