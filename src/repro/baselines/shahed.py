"""SHAHED baseline: spatio-temporal aggregate index, no compression/decay.

The paper isolates SHAHED's aggregate index (Eldawy et al., ICDE 2015 /
SpatialHadoop): a multi-resolution *temporal* hierarchy where each node
holds a *spatial* partitioning (quad-tree tiles) of aggregate values
(min/max/sum/count).  Raw snapshots are stored uncompressed; aggregate
queries are answered from the index, selection queries scan the text
files.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.base import Framework, IngestStats
from repro.core.snapshot import Snapshot, Table, epoch_to_timestamp
from repro.dfs.filesystem import SimulatedDFS
from repro.index.highlights import CELL_COLUMN, NumericStats
from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.quadtree import QuadTree


@dataclass
class AggregateTile:
    """Aggregates of one (attribute, spatial point) within a period."""

    stats: dict[str, NumericStats] = field(default_factory=dict)

    def add(self, attribute: str, value: int) -> None:
        """Fold one value into the running statistics."""
        entry = self.stats.get(attribute)
        if entry is None:
            entry = self.stats[attribute] = NumericStats()
        entry.add(value)


@dataclass
class TemporalAggregateNode:
    """One period (epoch / day / month) of the SHAHED aggregate index."""

    level: str
    key: str
    tree: QuadTree
    cells: dict[str, AggregateTile] = field(default_factory=dict)

    def add_record(self, cell_id: str, location: Point, attribute: str, value: int) -> None:
        """Fold one record's value into the (cell, attribute) aggregates."""
        tile = self.cells.get(cell_id)
        if tile is None:
            tile = self.cells[cell_id] = AggregateTile()
            self.tree.insert(location, cell_id)
        tile.add(attribute, value)

    def query(self, box: BoundingBox, attribute: str) -> NumericStats:
        """Aggregate ``attribute`` over cells inside ``box``."""
        combined = NumericStats()
        for cell_id in self.tree.query(box):
            stats = self.cells[cell_id].stats.get(attribute)
            if stats is not None:
                combined.merge(stats)
        return combined


class ShahedFramework(Framework):
    """SHAHED-style framework: uncompressed storage + aggregate quad index."""

    name = "SHAHED"

    #: Numeric attributes aggregated per table (SHAHED aggregates the
    #: measurement value of each satellite dataset; here, the telco KPIs).
    AGGREGATED: dict[str, list[str]] = {
        "CDR": ["upflux", "downflux", "duration_s", "drop_flag"],
        "NMS": ["val", "drops", "throughput_kbps"],
    }

    def __init__(
        self,
        dfs: SimulatedDFS,
        area: BoundingBox,
        cell_locations: dict[str, Point],
        path_prefix: str = "/shahed/snapshots",
    ) -> None:
        """
        Args:
            dfs: backing filesystem.
            area: service-area bounds for the quad-trees.
            cell_locations: cell id -> centroid (from the CELL table).
        """
        super().__init__(dfs)
        self._prefix = path_prefix
        self._area = area
        self._cell_locations = cell_locations
        self.epoch_nodes: dict[int, TemporalAggregateNode] = {}
        self.day_nodes: dict[str, TemporalAggregateNode] = {}
        self.month_nodes: dict[str, TemporalAggregateNode] = {}

    def ingest(self, snapshot: Snapshot) -> IngestStats:
        """Store one arriving snapshot (Framework interface)."""
        start = time.perf_counter()
        io_before = self.dfs.modeled_io_seconds
        total = 0
        paths: dict[str, str] = {}
        for name, table in snapshot.tables.items():
            payload = table.serialize()
            path = f"{self._prefix}/epoch-{snapshot.epoch:08d}/{name}.txt"
            self.dfs.write_file(path, payload)
            paths[name] = path
            total += len(payload)
        self._epoch_tables[snapshot.epoch] = paths
        self._index_snapshot(snapshot)
        return IngestStats(
            epoch=snapshot.epoch,
            seconds=(time.perf_counter() - start)
            + (self.dfs.modeled_io_seconds - io_before),
            raw_bytes=total,
            stored_bytes=total,
        )

    def read_table(self, epoch: int, table: str) -> Table | None:
        """Load one stored table of one epoch; None when absent."""
        path = self._epoch_tables.get(epoch, {}).get(table)
        if path is None:
            return None
        return Table.deserialize(table, self.dfs.read_file(path))

    def aggregate_query(
        self, box: BoundingBox, attribute: str, first_epoch: int, last_epoch: int
    ) -> NumericStats:
        """Aggregate from the index across an epoch range, using coarse
        temporal nodes (whole days) where the range fully covers them —
        SHAHED's multi-resolution aggregation."""
        from repro.core.snapshot import EPOCHS_PER_DAY, epoch_to_timestamp

        combined = NumericStats()
        epoch = first_epoch
        while epoch <= last_epoch:
            day_start = epoch - (epoch % EPOCHS_PER_DAY)
            day_end = day_start + EPOCHS_PER_DAY - 1
            day_key = epoch_to_timestamp(day_start).strftime("%Y-%m-%d")
            if (
                epoch == day_start
                and day_end <= last_epoch
                and day_key in self.day_nodes
            ):
                combined.merge(self.day_nodes[day_key].query(box, attribute))
                epoch = day_end + 1
                continue
            node = self.epoch_nodes.get(epoch)
            if node is not None:
                combined.merge(node.query(box, attribute))
            epoch += 1
        return combined

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _index_snapshot(self, snapshot: Snapshot) -> None:
        when = epoch_to_timestamp(snapshot.epoch)
        nodes = [
            self._node(self.epoch_nodes, snapshot.epoch, "epoch", str(snapshot.epoch)),
            self._node(self.day_nodes, when.strftime("%Y-%m-%d"), "day",
                       when.strftime("%Y-%m-%d")),
            self._node(self.month_nodes, when.strftime("%Y-%m"), "month",
                       when.strftime("%Y-%m")),
        ]
        for table_name, attributes in self.AGGREGATED.items():
            table = snapshot.tables.get(table_name)
            if table is None:
                continue
            cell_col = CELL_COLUMN.get(table_name)
            if cell_col is None or cell_col not in table.columns:
                continue
            cell_idx = table.column_index(cell_col)
            attr_idx = [
                (a, table.column_index(a)) for a in attributes if a in table.columns
            ]
            for row in table.rows:
                cell_id = row[cell_idx]
                location = self._cell_locations.get(cell_id)
                if location is None:
                    continue
                for attribute, idx in attr_idx:
                    value = row[idx]
                    if value and _is_int(value):
                        for node in nodes:
                            node.add_record(cell_id, location, attribute, int(value))

    def _node(self, store: dict, key, level: str, label: str) -> TemporalAggregateNode:
        node = store.get(key)
        if node is None:
            node = store[key] = TemporalAggregateNode(
                level=level, key=label, tree=QuadTree(self._area, capacity=32)
            )
        return node


def _is_int(value: str) -> bool:
    body = value[1:] if value and value[0] == "-" else value
    return bool(body) and body.isdigit()
