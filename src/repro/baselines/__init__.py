"""Compared frameworks (paper §VII-A): RAW and SHAHED baselines.

All frameworks — including SPATE itself — implement
:class:`~repro.baselines.base.Framework`, so the benchmark harness and
the T1-T8 tasks run identically against each.
"""

from repro.baselines.base import Framework, IngestStats
from repro.baselines.raw import RawFramework
from repro.baselines.shahed import ShahedFramework

__all__ = ["Framework", "IngestStats", "RawFramework", "ShahedFramework"]
