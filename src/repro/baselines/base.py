"""Common interface for the compared frameworks (RAW / SHAHED / SPATE).

Storage layout: one DFS file per (epoch, table) — mirroring the paper's
setting where CDR and NMS arrive as separate file types in a directory
hierarchy.  Scans that touch one table therefore read (and, for SPATE,
decompress) only that table's files.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.snapshot import Snapshot, Table
from repro.dfs.filesystem import DfsStats, SimulatedDFS
from repro.errors import QueryError, StorageError


@dataclass(frozen=True)
class IngestStats:
    """Per-snapshot ingestion metrics (Figures 7 and 9)."""

    epoch: int
    seconds: float
    raw_bytes: int
    stored_bytes: int


class Framework(ABC):
    """A storage+index framework under evaluation."""

    #: Display name used in benchmark tables.
    name: str = ""

    def __init__(self, dfs: SimulatedDFS) -> None:
        self.dfs = dfs
        #: epoch -> table name -> DFS path.
        self._epoch_tables: dict[int, dict[str, str]] = {}
        #: Coverage of the most recent ``read_rows`` scan:
        #: ``{"epochs_served": [...], "epochs_skipped": {epoch: reason}}``.
        self.last_scan_coverage: dict = {"epochs_served": [], "epochs_skipped": {}}

    @abstractmethod
    def ingest(self, snapshot: Snapshot) -> IngestStats:
        """Store one arriving snapshot (and index it, if applicable)."""

    @abstractmethod
    def read_table(self, epoch: int, table: str) -> Table | None:
        """Load one table of one snapshot; None when absent."""

    def read_snapshot(self, epoch: int) -> Snapshot:
        """Load a whole snapshot (every stored table).

        Raises:
            QueryError: if the epoch was never ingested.
        """
        tables = self._epoch_tables.get(epoch)
        if tables is None:
            raise QueryError(f"epoch {epoch} was never ingested")
        snapshot = Snapshot(epoch=epoch)
        for name in sorted(tables):
            loaded = self.read_table(epoch, name)
            if loaded is not None:
                snapshot.add_table(loaded)
        return snapshot

    def finalize(self) -> None:
        """End-of-stream hook (default: nothing)."""

    def modeled_io_seconds(self) -> float:
        """Accumulated modeled I/O time (see
        :class:`~repro.dfs.filesystem.IoCostModel`); 0 when no model is
        configured.  Diff around an operation to charge I/O to it."""
        return self.dfs.modeled_io_seconds

    def ingested_epochs(self) -> list[int]:
        """Epochs stored so far, ascending."""
        return sorted(self._epoch_tables)

    def read_rows(
        self,
        table: str,
        first_epoch: int,
        last_epoch: int,
        partial_ok: bool = False,
        predicates=None,
        columns=None,
    ) -> tuple[list[str], list[list[str]]]:
        """Scan one table across an epoch range.

        With ``partial_ok``, epochs whose leaves cannot be read
        (quarantined after a crash, blocks lost) are skipped instead of
        raising; :attr:`last_scan_coverage` records exactly which
        epochs were served vs skipped, and why.

        ``predicates`` and ``columns`` are optional pushdown hints
        (pruning filters / projected columns).  The base implementation
        ignores them — they are hints, never contracts: a framework
        without summaries simply scans everything.

        Returns:
            ``(columns, rows)``; columns come from the first snapshot in
            range holding the table.  Empty when nothing matches.
        """
        del predicates, columns  # hints; baselines scan everything
        columns: list[str] = []
        rows: list[list[str]] = []
        coverage: dict = {"epochs_served": [], "epochs_skipped": {}}
        self.last_scan_coverage = coverage
        for epoch in self.ingested_epochs():
            if epoch < first_epoch or epoch > last_epoch:
                continue
            try:
                found = self.read_table(epoch, table)
            except StorageError as exc:
                if not partial_ok:
                    raise
                coverage["epochs_skipped"][epoch] = str(exc)
                continue
            coverage["epochs_served"].append(epoch)
            if found is None:
                continue
            if not columns:
                columns = list(found.columns)
            rows.extend(found.rows)
        return columns, rows

    def table_columns(
        self, table: str, first_epoch: int, last_epoch: int
    ) -> list[str]:
        """Schema of ``table`` over the range, without materializing rows.

        Reads snapshots in range until one holds the table (usually the
        first), so lazy registration can learn the schema cheaply.
        """
        for epoch in self.ingested_epochs():
            if epoch < first_epoch or epoch > last_epoch:
                continue
            try:
                found = self.read_table(epoch, table)
            except StorageError:
                continue
            if found is not None:
                return list(found.columns)
        return []

    def table_partitions(
        self, table: str, first_epoch: int, last_epoch: int
    ) -> list[list[list[str]]]:
        """Rows grouped per snapshot — natural partitions for the engine."""
        partitions: list[list[list[str]]] = []
        for epoch in self.ingested_epochs():
            if epoch < first_epoch or epoch > last_epoch:
                continue
            found = self.read_table(epoch, table)
            if found is not None and found.rows:
                partitions.append(found.rows)
        return partitions or [[]]

    def storage_stats(self) -> DfsStats:
        """Cluster accounting (Figures 8 and 10 plot logical bytes)."""
        return self.dfs.stats()

    @property
    def stored_logical_bytes(self) -> int:
        """Pre-replication bytes stored on the DFS."""
        return self.dfs.stats().logical_bytes

    @property
    def stored_physical_bytes(self) -> int:
        """Replicated bytes resident on datanodes."""
        return self.dfs.stats().physical_bytes
