"""RAW baseline: uncompressed text files on the DFS, no index, no decay."""

from __future__ import annotations

import time

from repro.baselines.base import Framework, IngestStats
from repro.core.snapshot import Snapshot, Table
from repro.dfs.filesystem import SimulatedDFS


class RawFramework(Framework):
    """The paper's default solution: plain snapshot files on HDFS."""

    name = "RAW"

    def __init__(self, dfs: SimulatedDFS, path_prefix: str = "/raw/snapshots") -> None:
        super().__init__(dfs)
        self._prefix = path_prefix

    def ingest(self, snapshot: Snapshot) -> IngestStats:
        """Store one arriving snapshot (Framework interface)."""
        start = time.perf_counter()
        io_before = self.dfs.modeled_io_seconds
        total = 0
        paths: dict[str, str] = {}
        for name, table in snapshot.tables.items():
            payload = table.serialize()
            path = f"{self._prefix}/epoch-{snapshot.epoch:08d}/{name}.txt"
            self.dfs.write_file(path, payload)
            paths[name] = path
            total += len(payload)
        self._epoch_tables[snapshot.epoch] = paths
        return IngestStats(
            epoch=snapshot.epoch,
            seconds=(time.perf_counter() - start)
            + (self.dfs.modeled_io_seconds - io_before),
            raw_bytes=total,
            stored_bytes=total,
        )

    def read_table(self, epoch: int, table: str) -> Table | None:
        """Load one stored table of one epoch; None when absent."""
        path = self._epoch_tables.get(epoch, {}).get(table)
        if path is None:
            return None
        return Table.deserialize(table, self.dfs.read_file(path))
