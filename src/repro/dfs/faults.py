"""Seeded fault injection for the simulated DFS.

The paper's testbed rides on HDFS (64 MB blocks, replication 3)
precisely because datanodes fail and disks rot; reproducing only the
happy path would leave the failure envelope untested.  The
:class:`FaultInjector` deliberately breaks a :class:`~repro.dfs.
filesystem.SimulatedDFS` with three independent, seeded fault
processes:

- **datanode crashes** (``crash_rate`` per write operation), bounded by
  ``max_dead_nodes`` so the cluster never loses every replica holder at
  once — the scenario replication 3 is provisioned for;
- **node restarts** (``restart_rate`` per dead node per write), so
  crashed nodes return with their stale block reports, exercising
  re-registration and re-replication back to the *requested* factor;
- **silent block corruption** (``corruption_rate`` per write), flipping
  a payload byte under an unchanged checksum on a random live replica —
  detected on read/scrub, never trusted;
- **transient replica-write failures** (``write_failure_rate`` per
  replica store), which the filesystem absorbs with bounded
  retry/backoff before declaring the write failed.

All randomness comes from one ``random.Random(seed)``, so a chaos run
is exactly reproducible: same seed, same faults, same recovery.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.errors import ConfigError, TransientWriteError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dfs.filesystem import SimulatedDFS


class FaultInjector:
    """Deterministic fault process attached to one ``SimulatedDFS``."""

    def __init__(
        self,
        seed: int = 2017,
        crash_rate: float = 0.0,
        restart_rate: float = 0.0,
        corruption_rate: float = 0.0,
        write_failure_rate: float = 0.0,
        max_dead_nodes: int = 1,
    ) -> None:
        """
        Args:
            seed: RNG seed; every injected fault derives from it.
            crash_rate: per-write probability of killing one live node.
            restart_rate: per-write, per-dead-node restart probability.
            corruption_rate: per-write probability of corrupting one
                randomly chosen resident replica on a live node.
            write_failure_rate: per-replica-store probability of a
                :class:`~repro.errors.TransientWriteError`.
            max_dead_nodes: crash injection stops while this many nodes
                are already down (keeps at least one replica reachable
                on the paper's 4-node / replication-3 layout).
        """
        for name, rate in (
            ("crash_rate", crash_rate),
            ("restart_rate", restart_rate),
            ("corruption_rate", corruption_rate),
            ("write_failure_rate", write_failure_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if max_dead_nodes < 0:
            raise ConfigError("max_dead_nodes must be non-negative")
        self.crash_rate = crash_rate
        self.restart_rate = restart_rate
        self.corruption_rate = corruption_rate
        self.write_failure_rate = write_failure_rate
        self.max_dead_nodes = max_dead_nodes
        self._rng = random.Random(seed)
        #: Injection counters (what was *broken*; the filesystem's
        #: FaultStats counts what was *recovered*).  They accumulate for
        #: the injector's whole lifetime — multi-phase chaos runs must
        #: use :meth:`snapshot` / :meth:`delta_since` for per-phase (or
        #: per-heal-cycle) numbers rather than reading the raw totals.
        self.crashes_injected = 0
        self.restarts_injected = 0
        self.corruptions_injected = 0
        self.write_failures_injected = 0

    # ------------------------------------------------------------------
    # Counter accounting
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the injection counters."""
        return {
            "crashes": self.crashes_injected,
            "restarts": self.restarts_injected,
            "corruptions": self.corruptions_injected,
            "write_failures": self.write_failures_injected,
        }

    def delta_since(self, baseline: dict[str, int]) -> dict[str, int]:
        """Counters accumulated since a :meth:`snapshot` baseline —
        the per-cycle numbers a long chaos run should report."""
        current = self.snapshot()
        return {name: current[name] - baseline.get(name, 0) for name in current}

    # ------------------------------------------------------------------
    # Hooks called by SimulatedDFS
    # ------------------------------------------------------------------

    def on_write(self, dfs: SimulatedDFS) -> None:
        """Fault step run at the start of every ``write_file``: maybe
        restart dead nodes, maybe crash a live one, maybe corrupt one
        stored replica.  Crashes never happen mid-write, so a single
        write sees a stable node set (matching HDFS pipeline setup)."""
        dead = [n for n in dfs.datanodes.values() if not n.alive]
        for node in dead:
            if self.restart_rate and self._rng.random() < self.restart_rate:
                dfs.restart_datanode(node.node_id)
                self.restarts_injected += 1
        if self.crash_rate and self._rng.random() < self.crash_rate:
            live = [n for n in dfs.datanodes.values() if n.alive]
            dead_count = len(dfs.datanodes) - len(live)
            if dead_count < self.max_dead_nodes and len(live) > 1:
                victim = self._rng.choice(sorted(live, key=lambda n: n.node_id))
                dfs.kill_datanode(victim.node_id)
                self.crashes_injected += 1
        if self.corruption_rate and self._rng.random() < self.corruption_rate:
            if self._corrupt_random_replica(dfs):
                self.corruptions_injected += 1

    def maybe_fail_store(self, node_id: str) -> None:
        """Roll the transient-write fault for one replica store.

        Raises:
            TransientWriteError: with probability ``write_failure_rate``.
        """
        if self.write_failure_rate and self._rng.random() < self.write_failure_rate:
            self.write_failures_injected += 1
            raise TransientWriteError(
                f"injected transient write failure on datanode {node_id}"
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _corrupt_random_replica(self, dfs: SimulatedDFS) -> bool:
        """Flip a byte in one randomly chosen resident replica."""
        candidates: list[tuple[str, int]] = []
        for node in sorted(dfs.datanodes.values(), key=lambda n: n.node_id):
            if not node.alive:
                continue
            candidates.extend((node.node_id, bid) for bid in node.block_ids())
        if not candidates:
            return False
        node_id, block_id = self._rng.choice(candidates)
        offset = self._rng.randrange(1 << 16)
        return dfs.datanodes[node_id].corrupt_block(block_id, offset)
