"""Namenode: namespace and block map for the simulated DFS."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dfs.block import BlockId
from repro.errors import FileExistsInDFSError, FileNotFoundInDFSError


@dataclass
class FileMeta:
    """Metadata for one file in the namespace."""

    path: str
    blocks: list[BlockId] = field(default_factory=list)
    size: int = 0
    replication: int = 3


class NameNode:
    """Holds the path namespace and the block -> datanode location map."""

    def __init__(self) -> None:
        self._files: dict[str, FileMeta] = {}
        self._locations: dict[BlockId, set[str]] = {}
        self._next_block_id: BlockId = 0

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------

    def create_file(self, path: str, replication: int) -> FileMeta:
        """Register a new file.

        Raises:
            FileExistsInDFSError: when the path is taken.
        """
        path = normalize_path(path)
        if path in self._files:
            raise FileExistsInDFSError(path)
        meta = FileMeta(path=path, replication=replication)
        self._files[path] = meta
        return meta

    def lookup(self, path: str) -> FileMeta:
        """Resolve a path.

        Raises:
            FileNotFoundInDFSError: for unknown paths.
        """
        path = normalize_path(path)
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInDFSError(path) from None

    def exists(self, path: str) -> bool:
        """True when the path is present in the namespace."""
        return normalize_path(path) in self._files

    def delete_file(self, path: str) -> FileMeta:
        """Remove a file from the namespace, returning its metadata so
        the filesystem can reclaim replicas.

        Raises:
            FileNotFoundInDFSError: for unknown paths.
        """
        path = normalize_path(path)
        try:
            meta = self._files.pop(path)
        except KeyError:
            raise FileNotFoundInDFSError(path) from None
        for block_id in meta.blocks:
            self._locations.pop(block_id, None)
        return meta

    def list_dir(self, prefix: str) -> list[str]:
        """Paths under a directory prefix, sorted."""
        prefix = normalize_path(prefix)
        if not prefix.endswith("/"):
            prefix += "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def file_count(self) -> int:
        """Number of files in the namespace."""
        return len(self._files)

    def files(self) -> list[FileMeta]:
        """All file metadata records."""
        return list(self._files.values())

    # ------------------------------------------------------------------
    # Block map operations
    # ------------------------------------------------------------------

    def allocate_block(self) -> BlockId:
        """Reserve and return a fresh block id."""
        block_id = self._next_block_id
        self._next_block_id += 1
        self._locations[block_id] = set()
        return block_id

    def release_block(self, block_id: BlockId) -> None:
        """Discard an allocated block that will never be committed (the
        rollback path of an atomic write; idempotent)."""
        self._locations.pop(block_id, None)

    def add_location(self, block_id: BlockId, node_id: str) -> None:
        """Register ``node_id`` as holding a replica of the block."""
        self._locations.setdefault(block_id, set()).add(node_id)

    def remove_location(self, block_id: BlockId, node_id: str) -> None:
        """Forget ``node_id`` as a replica holder (idempotent)."""
        self._locations.get(block_id, set()).discard(node_id)

    def locations(self, block_id: BlockId) -> set[str]:
        """Datanodes believed to hold a replica of ``block_id``."""
        return set(self._locations.get(block_id, set()))

    def blocks_on(self, node_id: str) -> list[BlockId]:
        """Every block with a replica registered on ``node_id``."""
        return [b for b, nodes in self._locations.items() if node_id in nodes]

    def under_replicated(self, live_nodes: set[str]) -> list[tuple[BlockId, int]]:
        """Blocks whose live replica count is below their file's target.

        Returns:
            ``(block_id, missing_count)`` pairs.
        """
        out: list[tuple[BlockId, int]] = []
        for meta in self._files.values():
            for block_id in meta.blocks:
                live = len(self._locations.get(block_id, set()) & live_nodes)
                if live < meta.replication:
                    out.append((block_id, meta.replication - live))
        return out

    def over_replicated(self, live_nodes: set[str]) -> list[tuple[BlockId, int]]:
        """Blocks whose live replica count exceeds their file's target
        (a restarted node re-registering replicas that were already
        re-replicated elsewhere).

        Returns:
            ``(block_id, excess_count)`` pairs.
        """
        out: list[tuple[BlockId, int]] = []
        for meta in self._files.values():
            for block_id in meta.blocks:
                live = len(self._locations.get(block_id, set()) & live_nodes)
                if live > meta.replication:
                    out.append((block_id, live - meta.replication))
        return out


def normalize_path(path: str) -> str:
    """Canonicalize a DFS path: leading slash, no trailing slash, no
    duplicate separators."""
    parts = [p for p in path.split("/") if p]
    return "/" + "/".join(parts)
