"""Datanode: stores checksummed block replicas and reports usage."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dfs.block import Block, BlockId, block_checksum
from repro.errors import ChecksumError, StorageError


@dataclass
class DataNode:
    """One storage node in the simulated cluster.

    Each replica is stored as ``(payload, expected_crc32)``; the
    checksum is fixed at write time, so silent payload corruption (bit
    rot, a misdirected write — injected here via :meth:`corrupt_block`)
    is detected the next time the replica is read or scrubbed.
    """

    node_id: str
    capacity: int | None = None  # bytes; None = unbounded
    alive: bool = True
    _blocks: dict[BlockId, tuple[bytes, int]] = field(default_factory=dict, repr=False)

    @property
    def used_bytes(self) -> int:
        """Physical bytes stored on this node."""
        return sum(len(data) for data, __ in self._blocks.values())

    @property
    def block_count(self) -> int:
        """Number of replicas resident on this node."""
        return len(self._blocks)

    def free_bytes(self) -> float:
        """Remaining capacity (``inf`` when unbounded)."""
        if self.capacity is None:
            return float("inf")
        return self.capacity - self.used_bytes

    def store(self, block: Block) -> None:
        """Accept a block replica (payload + checksum).

        Raises:
            StorageError: if the node is dead or out of capacity.
        """
        if not self.alive:
            raise StorageError(f"datanode {self.node_id} is down")
        if self.capacity is not None and self.used_bytes + block.size > self.capacity:
            raise StorageError(f"datanode {self.node_id} is full")
        self._blocks[block.block_id] = (block.data, block.checksum)

    def read(self, block_id: BlockId, verify: bool = True) -> bytes:
        """Serve a block replica, verifying its checksum by default.

        Raises:
            StorageError: if the node is dead or lacks the replica.
            ChecksumError: if the stored payload fails verification.
        """
        if not self.alive:
            raise StorageError(f"datanode {self.node_id} is down")
        try:
            data, expected = self._blocks[block_id]
        except KeyError:
            raise StorageError(
                f"datanode {self.node_id} has no replica of block {block_id}"
            ) from None
        if verify and block_checksum(data) != expected:
            raise ChecksumError(
                f"datanode {self.node_id}: block {block_id} replica is corrupt"
            )
        return data

    def replica_is_valid(self, block_id: BlockId) -> bool:
        """True when a resident replica's payload matches its checksum
        (used by the scrub pass; does not raise, dead nodes included)."""
        entry = self._blocks.get(block_id)
        if entry is None:
            return False
        data, expected = entry
        return block_checksum(data) == expected

    def corrupt_block(self, block_id: BlockId, offset: int = 0) -> bool:
        """Flip one payload byte without touching the stored checksum —
        the fault-injection hook for silent corruption.  Returns False
        when the replica is absent or empty."""
        entry = self._blocks.get(block_id)
        if entry is None or not entry[0]:
            return False
        data, expected = entry
        offset %= len(data)
        flipped = data[:offset] + bytes([data[offset] ^ 0xFF]) + data[offset + 1 :]
        self._blocks[block_id] = (flipped, expected)
        return True

    def drop(self, block_id: BlockId) -> None:
        """Delete a replica if present (idempotent)."""
        self._blocks.pop(block_id, None)

    def has_block(self, block_id: BlockId) -> bool:
        """True when this node holds a replica of the block."""
        return block_id in self._blocks

    def block_ids(self) -> list[BlockId]:
        """Every block id with a replica resident on this node."""
        return list(self._blocks)

    def fail(self) -> None:
        """Simulate a crash: replicas become unreachable (not erased —
        a restarted node reports them back, like HDFS block reports)."""
        self.alive = False

    def restart(self) -> None:
        """Bring the node back with whatever replicas it still holds."""
        self.alive = True
