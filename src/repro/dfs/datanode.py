"""Datanode: stores block replicas and reports usage."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dfs.block import Block, BlockId
from repro.errors import StorageError


@dataclass
class DataNode:
    """One storage node in the simulated cluster."""

    node_id: str
    capacity: int | None = None  # bytes; None = unbounded
    alive: bool = True
    _blocks: dict[BlockId, bytes] = field(default_factory=dict, repr=False)

    @property
    def used_bytes(self) -> int:
        """Physical bytes stored on this node."""
        return sum(len(b) for b in self._blocks.values())

    @property
    def block_count(self) -> int:
        """Number of replicas resident on this node."""
        return len(self._blocks)

    def free_bytes(self) -> float:
        """Remaining capacity (``inf`` when unbounded)."""
        if self.capacity is None:
            return float("inf")
        return self.capacity - self.used_bytes

    def store(self, block: Block) -> None:
        """Accept a block replica.

        Raises:
            StorageError: if the node is dead or out of capacity.
        """
        if not self.alive:
            raise StorageError(f"datanode {self.node_id} is down")
        if self.capacity is not None and self.used_bytes + block.size > self.capacity:
            raise StorageError(f"datanode {self.node_id} is full")
        self._blocks[block.block_id] = block.data

    def read(self, block_id: BlockId) -> bytes:
        """Serve a block replica.

        Raises:
            StorageError: if the node is dead or lacks the replica.
        """
        if not self.alive:
            raise StorageError(f"datanode {self.node_id} is down")
        try:
            return self._blocks[block_id]
        except KeyError:
            raise StorageError(
                f"datanode {self.node_id} has no replica of block {block_id}"
            ) from None

    def drop(self, block_id: BlockId) -> None:
        """Delete a replica if present (idempotent)."""
        self._blocks.pop(block_id, None)

    def has_block(self, block_id: BlockId) -> bool:
        """True when this node holds a replica of the block."""
        return block_id in self._blocks

    def fail(self) -> None:
        """Simulate a crash: replicas become unreachable (not erased —
        a restarted node reports them back, like HDFS block reports)."""
        self.alive = False

    def restart(self) -> None:
        """Bring the node back with whatever replicas it still holds."""
        self.alive = True
