"""SimulatedDFS: the client-facing replicated filesystem facade.

Write path (crash-consistent): split the payload into blocks, *stage*
every replica on the emptiest live datanodes, and only then commit the
namespace entry and block locations — any failure mid-write rolls the
staged replicas back, so the namespace never holds a phantom partial
file.  Read path: fetch each block from any live replica, verifying its
CRC32; a corrupt replica is quarantined (dropped + location removed)
and the read fails over to the next copy.  Failure handling: a killed
datanode leaves blocks under-replicated; :meth:`SimulatedDFS.heal`
combines a corruption scrub with :meth:`SimulatedDFS.re_replicate` to
restore the *requested* factor, and a read raises :class:`~repro.
errors.BlockLostError` only when every replica is gone or corrupt — the
behaviour the paper's replication-3 testbed buys.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.core.retry import RetryBudget, RetryPolicy
from repro.dfs.block import Block, split_into_blocks
from repro.dfs.datanode import DataNode
from repro.dfs.faults import FaultInjector
from repro.dfs.namenode import NameNode, normalize_path
from repro.errors import (
    BlockLostError,
    ChecksumError,
    FileExistsInDFSError,
    ReplicationError,
    StorageError,
    TransientWriteError,
)


@dataclass(frozen=True)
class DfsStats:
    """Cluster-wide accounting snapshot."""

    logical_bytes: int  # sum of file sizes (pre-replication)
    physical_bytes: int  # bytes actually resident on datanodes
    file_count: int
    block_count: int
    live_datanodes: int


@dataclass
class FaultStats:
    """What the filesystem absorbed and repaired (the recovery side of
    the ledger; :class:`~repro.dfs.faults.FaultInjector` counts what was
    deliberately broken)."""

    write_retries: int = 0
    write_failures: int = 0
    writes_rolled_back: int = 0
    retry_budget_spent: int = 0
    retry_budget_exhausted: int = 0
    checksum_failures: int = 0
    read_failovers: int = 0
    corrupt_replicas_dropped: int = 0
    re_replicated_copies: int = 0
    excess_replicas_trimmed: int = 0
    heal_passes: int = 0


@dataclass(frozen=True)
class HealReport:
    """Outcome of one scrub + re-replicate + trim pass."""

    corrupt_replicas_dropped: int
    replicas_created: int
    replicas_trimmed: int
    under_replicated_after: int


@dataclass(frozen=True)
class FsckReport:
    """Read-only cluster health check (no repairs performed)."""

    files: int
    blocks: int
    live_valid_replicas: int
    corrupt_replicas: int
    under_replicated_blocks: int
    lost_blocks: int

    @property
    def healthy(self) -> bool:
        """True when no block is corrupt, lost, or under-replicated."""
        return (
            self.corrupt_replicas == 0
            and self.lost_blocks == 0
            and self.under_replicated_blocks == 0
        )


@dataclass(frozen=True)
class IoCostModel:
    """Models the disk/network cost the in-process DFS doesn't pay.

    The paper's testbed uses slow 7.2K RPM RAID-5 disks behind HDFS;
    ingestion and scan times there are dominated by streaming bytes to
    and from those disks.  Serving everything from RAM would erase the
    very effect Figures 7-12 measure (compressed files move fewer
    bytes), so the simulator accounts a modeled I/O time per operation:
    ``latency + bytes / bandwidth``, with replica pipelining adding a
    fraction of the stream time per extra replica.
    """

    #: Effective streaming rate of the paper's virtualized 7.2K RPM
    #: RAID-5 behind HDFS with replication traffic — slow by design.
    bandwidth_bytes_per_s: float = 4e6
    op_latency_s: float = 0.0003
    replication_pipeline_factor: float = 0.3

    def write_seconds(self, nbytes: int, replication: int) -> float:
        """Modeled time to write ``nbytes`` with ``replication`` replicas."""
        stream = nbytes / self.bandwidth_bytes_per_s
        pipeline = 1.0 + self.replication_pipeline_factor * max(0, replication - 1)
        return self.op_latency_s + stream * pipeline

    def read_seconds(self, nbytes: int) -> float:
        """Modeled time to stream ``nbytes`` off disk."""
        return self.op_latency_s + nbytes / self.bandwidth_bytes_per_s


class SimulatedDFS:
    """An in-process HDFS-like filesystem."""

    #: Base backoff charged (as modeled seconds) per write retry;
    #: doubles with each attempt, mirroring HDFS client retry policy.
    write_retry_backoff_s = 0.001

    def __init__(
        self,
        datanodes: int = 4,
        block_size: int = 4 * 1024 * 1024,
        default_replication: int = 3,
        node_capacity: int | None = None,
        io_model: IoCostModel | None = None,
        fault_injector: FaultInjector | None = None,
        max_write_retries: int = 3,
        retry_budget: int | None = None,
        retry_seed: int = 2017,
    ) -> None:
        """
        Args:
            datanodes: cluster size (paper testbed: 4 worker images).
            block_size: maximum block payload (paper: 64 MB).
            default_replication: replica target (paper: 3).
            node_capacity: per-node byte budget, None for unbounded.
            io_model: when given, every read/write accrues modeled I/O
                seconds in :attr:`modeled_io_seconds` (see
                :class:`IoCostModel`); None disables the model.
            fault_injector: optional seeded fault process (crashes,
                corruption, transient write failures) consulted on
                every write; None runs the happy path only.
            max_write_retries: transient-failure retries per replica
                store before the write is rolled back.
            retry_budget: cap on *total* write retries across the
                filesystem's lifetime (None = unbounded); once spent, a
                transient failure fails the write immediately instead of
                retrying, so a persistently failing cluster degrades to
                fast failures.
            retry_seed: seed for the full-jitter retry schedule, so a
                seeded chaos run charges deterministic backoff.
        """
        if datanodes < 1:
            raise StorageError("cluster needs at least one datanode")
        if default_replication < 1:
            raise StorageError("replication must be at least 1")
        if max_write_retries < 0:
            raise StorageError("max_write_retries must be non-negative")
        self.block_size = block_size
        self.default_replication = default_replication
        self.io_model = io_model
        self.fault_injector = fault_injector
        self.max_write_retries = max_write_retries
        self.write_retry_policy = RetryPolicy(
            max_attempts=max_write_retries,
            base_delay_s=self.write_retry_backoff_s,
        )
        self.retry_budget = RetryBudget(retry_budget)
        self._retry_rng = random.Random(retry_seed)
        self.fault_stats = FaultStats()
        #: Accumulated modeled I/O time; callers diff this around an
        #: operation to charge it to a measurement.
        self.modeled_io_seconds = 0.0
        #: Guards the accounting shared by concurrent readers (modeled
        #: I/O seconds, fault counters, corrupt-replica quarantine).
        #: Structural mutations (writes, heal, recovery) are already
        #: serialized by the warehouse's write lock.
        self._accounting_lock = threading.Lock()
        self.namenode = NameNode()
        self.datanodes: dict[str, DataNode] = {
            f"dn{i:02d}": DataNode(node_id=f"dn{i:02d}", capacity=node_capacity)
            for i in range(datanodes)
        }

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def write_file(self, path: str, data: bytes, replication: int | None = None) -> None:
        """Create ``path`` with ``data``, atomically.

        All block replicas are staged on datanodes first; the namespace
        entry and block locations are committed only after every
        replica landed.  Any failure mid-write (node down/full,
        transient failures past the retry budget) drops the staged
        replicas and releases the allocated block ids, so the namespace
        never exposes a partial file.

        The file's metadata records the *requested* replication target
        even when fewer nodes are live at write time, so
        :meth:`re_replicate` restores the full factor once crashed
        nodes return.

        Raises:
            FileExistsInDFSError: if the path exists.
            ReplicationError: if no live datanode can take a replica.
            StorageError: if staging failed (after rollback).
        """
        replication = replication or self.default_replication
        if self.fault_injector is not None:
            self.fault_injector.on_write(self)
        if self.namenode.exists(path):
            raise FileExistsInDFSError(normalize_path(path))
        live = self._live_nodes()
        effective = min(replication, len(live))
        if effective == 0:
            raise ReplicationError("no live datanodes")
        placements: list[tuple[Block, list[DataNode]]] = []
        try:
            for chunk in split_into_blocks(data, self.block_size):
                block = Block(block_id=self.namenode.allocate_block(), data=chunk)
                placed: list[DataNode] = []
                placements.append((block, placed))
                for node in self._pick_targets(effective):
                    self._store_with_retry(node, block)
                    placed.append(node)
        except StorageError:
            self._rollback(placements)
            raise
        # Commit point: the namespace entry is registered last, so a
        # reader can never observe a half-written file.
        meta = self.namenode.create_file(path, replication=replication)
        meta.size = len(data)
        if self.io_model is not None:
            seconds = self.io_model.write_seconds(len(data), effective)
            with self._accounting_lock:
                self.modeled_io_seconds += seconds
        for block, placed in placements:
            for node in placed:
                self.namenode.add_location(block.block_id, node.node_id)
            meta.blocks.append(block.block_id)

    def read_file(self, path: str) -> bytes:
        """Read the full contents of ``path``.

        Every block's CRC32 is verified; a corrupt replica is dropped
        (and its location forgotten) and the read fails over to the
        next copy.

        Raises:
            FileNotFoundInDFSError: for unknown paths.
            BlockLostError: when a block has no live, valid replica.
        """
        meta = self.namenode.lookup(path)
        out = bytearray()
        for block_id in meta.blocks:
            out += self._read_block(block_id, path)
        if self.io_model is not None:
            seconds = self.io_model.read_seconds(len(out))
            with self._accounting_lock:
                self.modeled_io_seconds += seconds
        return bytes(out)

    def delete_file(self, path: str) -> None:
        """Remove ``path`` and reclaim all replicas."""
        meta = self.namenode.delete_file(path)
        for block_id in meta.blocks:
            for node in self.datanodes.values():
                node.drop(block_id)

    def exists(self, path: str) -> bool:
        """True when the path is present in the namespace."""
        return self.namenode.exists(path)

    def list_dir(self, prefix: str) -> list[str]:
        """Paths under a directory prefix, sorted."""
        return self.namenode.list_dir(prefix)

    def file_size(self, path: str) -> int:
        """Logical size of ``path`` in bytes."""
        return self.namenode.lookup(path).size

    # ------------------------------------------------------------------
    # Cluster management / accounting
    # ------------------------------------------------------------------

    def stats(self) -> DfsStats:
        """Cluster accounting: logical vs physical (replicated) bytes."""
        files = self.namenode.files()
        return DfsStats(
            logical_bytes=sum(f.size for f in files),
            physical_bytes=sum(n.used_bytes for n in self.datanodes.values()),
            file_count=len(files),
            block_count=sum(len(f.blocks) for f in files),
            live_datanodes=len(self._live_nodes()),
        )

    def kill_datanode(self, node_id: str) -> None:
        """Crash a datanode (replicas become unreachable)."""
        self._node(node_id).fail()

    def restart_datanode(self, node_id: str) -> None:
        """Bring a crashed datanode back; its replicas re-register."""
        self._node(node_id).restart()

    def re_replicate(self) -> int:
        """Restore the replication target for under-replicated blocks.

        Copies from any surviving live replica that passes checksum
        verification (corrupt sources are quarantined, never copied) to
        live nodes lacking one.  Returns the number of new replicas
        created.  Blocks with zero live valid replicas are skipped
        (they surface as :class:`~repro.errors.BlockLostError` on read).
        """
        live_ids = {n.node_id for n in self._live_nodes()}
        created = 0
        for block_id, missing in self.namenode.under_replicated(live_ids):
            data = self._read_valid_replica(block_id, live_ids)
            if data is None:
                continue
            holders = self.namenode.locations(block_id)
            targets = [
                node
                for node in sorted(
                    self._live_nodes(), key=lambda n: n.used_bytes
                )
                if node.node_id not in holders
            ][:missing]
            for node in targets:
                node.store(Block(block_id=block_id, data=data))
                self.namenode.add_location(block_id, node.node_id)
                created += 1
        self.fault_stats.re_replicated_copies += created
        return created

    def scrub(self) -> int:
        """Verify every resident replica on live nodes against its
        checksum; quarantine (drop + forget) corrupt ones.  Returns the
        number of replicas dropped."""
        dropped = 0
        for node in self.datanodes.values():
            if not node.alive:
                continue
            for block_id in node.block_ids():
                if not node.replica_is_valid(block_id):
                    node.drop(block_id)
                    self.namenode.remove_location(block_id, node.node_id)
                    self.fault_stats.checksum_failures += 1
                    self.fault_stats.corrupt_replicas_dropped += 1
                    dropped += 1
        return dropped

    def trim_excess_replicas(self) -> int:
        """Drop replicas beyond a file's target (a restarted node
        re-registering copies that were already re-replicated while it
        was down), fullest nodes first.  Returns the number dropped."""
        live_ids = {n.node_id for n in self._live_nodes()}
        trimmed = 0
        for block_id, excess in self.namenode.over_replicated(live_ids):
            holders = [
                self.datanodes[nid]
                for nid in self.namenode.locations(block_id)
                if nid in live_ids
                and self.datanodes[nid].has_block(block_id)
                and self.datanodes[nid].replica_is_valid(block_id)
            ]
            holders.sort(key=lambda n: (-n.used_bytes, n.node_id))
            for node in holders[: min(excess, max(0, len(holders) - 1))]:
                node.drop(block_id)
                self.namenode.remove_location(block_id, node.node_id)
                trimmed += 1
        self.fault_stats.excess_replicas_trimmed += trimmed
        return trimmed

    def heal(self) -> HealReport:
        """Background-style repair pass: scrub corrupt replicas,
        re-replicate under-replicated blocks back toward each file's
        *requested* factor, and trim excess copies left by restarted
        nodes.  Returns what was repaired and how many blocks remain
        under-replicated (nonzero only while nodes stay down)."""
        dropped = self.scrub()
        created = self.re_replicate()
        trimmed = self.trim_excess_replicas()
        self.fault_stats.heal_passes += 1
        live_ids = {n.node_id for n in self._live_nodes()}
        remaining = len(self.namenode.under_replicated(live_ids))
        return HealReport(
            corrupt_replicas_dropped=dropped,
            replicas_created=created,
            replicas_trimmed=trimmed,
            under_replicated_after=remaining,
        )

    def fsck(self) -> FsckReport:
        """Read-only health check over the whole namespace: counts live
        valid replicas, corrupt replicas, under-replicated blocks and
        lost blocks (no live valid replica).  Performs no repairs."""
        live_ids = {n.node_id for n in self._live_nodes()}
        blocks = valid_total = corrupt = lost = 0
        files = self.namenode.files()
        for meta in files:
            for block_id in meta.blocks:
                blocks += 1
                valid = 0
                for node_id in self.namenode.locations(block_id):
                    node = self.datanodes.get(node_id)
                    if node is None or not node.alive or not node.has_block(block_id):
                        continue
                    if node.replica_is_valid(block_id):
                        valid += 1
                    else:
                        corrupt += 1
                valid_total += valid
                if valid == 0:
                    lost += 1
        return FsckReport(
            files=len(files),
            blocks=blocks,
            live_valid_replicas=valid_total,
            corrupt_replicas=corrupt,
            under_replicated_blocks=len(self.namenode.under_replicated(live_ids)),
            lost_blocks=lost,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _node(self, node_id: str) -> DataNode:
        try:
            return self.datanodes[node_id]
        except KeyError:
            raise StorageError(f"unknown datanode {node_id!r}") from None

    def _live_nodes(self) -> list[DataNode]:
        return [n for n in self.datanodes.values() if n.alive]

    def _pick_targets(self, count: int) -> list[DataNode]:
        """Emptiest-first placement across live nodes."""
        live = sorted(self._live_nodes(), key=lambda n: n.used_bytes)
        if len(live) < count:
            raise ReplicationError(
                f"need {count} live datanodes, have {len(live)}"
            )
        return live[:count]

    def _store_with_retry(self, node: DataNode, block: Block) -> None:
        """Store one replica, absorbing transient failures with bounded
        exponential backoff and full jitter (charged as modeled time —
        the simulator never really sleeps).  Every retry spends one
        token of the filesystem-wide :class:`~repro.core.retry.RetryBudget`;
        an exhausted budget turns the next transient failure into an
        immediate write failure."""
        attempt = 0
        while True:
            try:
                if self.fault_injector is not None:
                    self.fault_injector.maybe_fail_store(node.node_id)
                node.store(block)
                return
            except TransientWriteError:
                attempt += 1
                if attempt > self.write_retry_policy.max_attempts:
                    self.fault_stats.write_failures += 1
                    raise
                if not self.retry_budget.try_spend():
                    self.fault_stats.retry_budget_exhausted += 1
                    self.fault_stats.write_failures += 1
                    raise
                self.fault_stats.write_retries += 1
                self.fault_stats.retry_budget_spent += 1
                with self._accounting_lock:
                    self.modeled_io_seconds += self.write_retry_policy.backoff_s(
                        attempt, self._retry_rng
                    )

    def _rollback(self, placements: list[tuple[Block, list[DataNode]]]) -> None:
        """Undo a failed write: drop staged replicas, release block ids."""
        for block, placed in placements:
            for node in placed:
                node.drop(block.block_id)
            self.namenode.release_block(block.block_id)
        self.fault_stats.writes_rolled_back += 1

    def _read_valid_replica(self, block_id: int, live_ids: set[str]) -> bytes | None:
        """First checksum-valid live replica's payload, quarantining any
        corrupt copies encountered on the way; None when all are gone."""
        for node_id in sorted(self.namenode.locations(block_id)):
            if node_id not in live_ids:
                continue
            node = self.datanodes[node_id]
            if not node.has_block(block_id):
                continue
            try:
                return node.read(block_id)
            except ChecksumError:
                self.fault_stats.checksum_failures += 1
                self.fault_stats.corrupt_replicas_dropped += 1
                node.drop(block_id)
                self.namenode.remove_location(block_id, node_id)
        return None

    def _read_block(self, block_id: int, path: str) -> bytes:
        for node_id in sorted(self.namenode.locations(block_id)):
            node = self.datanodes.get(node_id)
            if node is None or not node.alive or not node.has_block(block_id):
                continue
            try:
                return node.read(block_id)
            except ChecksumError:
                # Quarantine the corrupt replica and fail over.
                with self._accounting_lock:
                    self.fault_stats.checksum_failures += 1
                    self.fault_stats.read_failovers += 1
                    self.fault_stats.corrupt_replicas_dropped += 1
                    node.drop(block_id)
                    self.namenode.remove_location(block_id, node_id)
        raise BlockLostError(
            f"block {block_id} of {path!r} has no live valid replica"
        )
