"""SimulatedDFS: the client-facing replicated filesystem facade.

Write path: split the payload into blocks, place each replica on the
emptiest live datanodes, register locations with the namenode.  Read
path: fetch each block from any live replica.  Failure handling: a
killed datanode leaves blocks under-replicated; :meth:`SimulatedDFS.
re_replicate` restores the target factor from surviving replicas, and a
read raises :class:`~repro.errors.BlockLostError` only when *every*
replica is gone — the behaviour the paper's replication-3 testbed buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfs.block import Block, split_into_blocks
from repro.dfs.datanode import DataNode
from repro.dfs.namenode import NameNode
from repro.errors import BlockLostError, ReplicationError, StorageError


@dataclass(frozen=True)
class DfsStats:
    """Cluster-wide accounting snapshot."""

    logical_bytes: int  # sum of file sizes (pre-replication)
    physical_bytes: int  # bytes actually resident on datanodes
    file_count: int
    block_count: int
    live_datanodes: int


@dataclass(frozen=True)
class IoCostModel:
    """Models the disk/network cost the in-process DFS doesn't pay.

    The paper's testbed uses slow 7.2K RPM RAID-5 disks behind HDFS;
    ingestion and scan times there are dominated by streaming bytes to
    and from those disks.  Serving everything from RAM would erase the
    very effect Figures 7-12 measure (compressed files move fewer
    bytes), so the simulator accounts a modeled I/O time per operation:
    ``latency + bytes / bandwidth``, with replica pipelining adding a
    fraction of the stream time per extra replica.
    """

    #: Effective streaming rate of the paper's virtualized 7.2K RPM
    #: RAID-5 behind HDFS with replication traffic — slow by design.
    bandwidth_bytes_per_s: float = 4e6
    op_latency_s: float = 0.0003
    replication_pipeline_factor: float = 0.3

    def write_seconds(self, nbytes: int, replication: int) -> float:
        """Modeled time to write ``nbytes`` with ``replication`` replicas."""
        stream = nbytes / self.bandwidth_bytes_per_s
        pipeline = 1.0 + self.replication_pipeline_factor * max(0, replication - 1)
        return self.op_latency_s + stream * pipeline

    def read_seconds(self, nbytes: int) -> float:
        """Modeled time to stream ``nbytes`` off disk."""
        return self.op_latency_s + nbytes / self.bandwidth_bytes_per_s


class SimulatedDFS:
    """An in-process HDFS-like filesystem."""

    def __init__(
        self,
        datanodes: int = 4,
        block_size: int = 4 * 1024 * 1024,
        default_replication: int = 3,
        node_capacity: int | None = None,
        io_model: IoCostModel | None = None,
    ) -> None:
        """
        Args:
            datanodes: cluster size (paper testbed: 4 worker images).
            block_size: maximum block payload (paper: 64 MB).
            default_replication: replica target (paper: 3).
            node_capacity: per-node byte budget, None for unbounded.
            io_model: when given, every read/write accrues modeled I/O
                seconds in :attr:`modeled_io_seconds` (see
                :class:`IoCostModel`); None disables the model.
        """
        if datanodes < 1:
            raise StorageError("cluster needs at least one datanode")
        if default_replication < 1:
            raise StorageError("replication must be at least 1")
        self.block_size = block_size
        self.default_replication = default_replication
        self.io_model = io_model
        #: Accumulated modeled I/O time; callers diff this around an
        #: operation to charge it to a measurement.
        self.modeled_io_seconds = 0.0
        self.namenode = NameNode()
        self.datanodes: dict[str, DataNode] = {
            f"dn{i:02d}": DataNode(node_id=f"dn{i:02d}", capacity=node_capacity)
            for i in range(datanodes)
        }

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def write_file(self, path: str, data: bytes, replication: int | None = None) -> None:
        """Create ``path`` with ``data``.

        Raises:
            FileExistsInDFSError: if the path exists.
            ReplicationError: if fewer live nodes than replicas requested.
        """
        replication = replication or self.default_replication
        live = self._live_nodes()
        effective = min(replication, len(live))
        if effective == 0:
            raise ReplicationError("no live datanodes")
        meta = self.namenode.create_file(path, replication=effective)
        meta.size = len(data)
        if self.io_model is not None:
            self.modeled_io_seconds += self.io_model.write_seconds(
                len(data), effective
            )
        for chunk in split_into_blocks(data, self.block_size):
            block_id = self.namenode.allocate_block()
            block = Block(block_id=block_id, data=chunk)
            for node in self._pick_targets(effective):
                node.store(block)
                self.namenode.add_location(block_id, node.node_id)
            meta.blocks.append(block_id)

    def read_file(self, path: str) -> bytes:
        """Read the full contents of ``path``.

        Raises:
            FileNotFoundInDFSError: for unknown paths.
            BlockLostError: when a block has no live replica.
        """
        meta = self.namenode.lookup(path)
        out = bytearray()
        for block_id in meta.blocks:
            out += self._read_block(block_id, path)
        if self.io_model is not None:
            self.modeled_io_seconds += self.io_model.read_seconds(len(out))
        return bytes(out)

    def delete_file(self, path: str) -> None:
        """Remove ``path`` and reclaim all replicas."""
        meta = self.namenode.delete_file(path)
        for block_id in meta.blocks:
            for node in self.datanodes.values():
                node.drop(block_id)

    def exists(self, path: str) -> bool:
        """True when the path is present in the namespace."""
        return self.namenode.exists(path)

    def list_dir(self, prefix: str) -> list[str]:
        """Paths under a directory prefix, sorted."""
        return self.namenode.list_dir(prefix)

    def file_size(self, path: str) -> int:
        """Logical size of ``path`` in bytes."""
        return self.namenode.lookup(path).size

    # ------------------------------------------------------------------
    # Cluster management / accounting
    # ------------------------------------------------------------------

    def stats(self) -> DfsStats:
        """Cluster accounting: logical vs physical (replicated) bytes."""
        files = self.namenode.files()
        return DfsStats(
            logical_bytes=sum(f.size for f in files),
            physical_bytes=sum(n.used_bytes for n in self.datanodes.values()),
            file_count=len(files),
            block_count=sum(len(f.blocks) for f in files),
            live_datanodes=len(self._live_nodes()),
        )

    def kill_datanode(self, node_id: str) -> None:
        """Crash a datanode (replicas become unreachable)."""
        self._node(node_id).fail()

    def restart_datanode(self, node_id: str) -> None:
        """Bring a crashed datanode back; its replicas re-register."""
        self._node(node_id).restart()

    def re_replicate(self) -> int:
        """Restore the replication target for under-replicated blocks.

        Copies from any surviving live replica to live nodes lacking
        one.  Returns the number of new replicas created.  Blocks with
        zero live replicas are skipped (they surface as
        :class:`~repro.errors.BlockLostError` on read).
        """
        live_ids = {n.node_id for n in self._live_nodes()}
        created = 0
        for block_id, missing in self.namenode.under_replicated(live_ids):
            sources = [
                self.datanodes[nid]
                for nid in self.namenode.locations(block_id)
                if nid in live_ids and self.datanodes[nid].has_block(block_id)
            ]
            if not sources:
                continue
            data = sources[0].read(block_id)
            holders = self.namenode.locations(block_id)
            targets = [
                node
                for node in sorted(
                    self._live_nodes(), key=lambda n: n.used_bytes
                )
                if node.node_id not in holders
            ][:missing]
            for node in targets:
                node.store(Block(block_id=block_id, data=data))
                self.namenode.add_location(block_id, node.node_id)
                created += 1
        return created

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _node(self, node_id: str) -> DataNode:
        try:
            return self.datanodes[node_id]
        except KeyError:
            raise StorageError(f"unknown datanode {node_id!r}") from None

    def _live_nodes(self) -> list[DataNode]:
        return [n for n in self.datanodes.values() if n.alive]

    def _pick_targets(self, count: int) -> list[DataNode]:
        """Emptiest-first placement across live nodes."""
        live = sorted(self._live_nodes(), key=lambda n: n.used_bytes)
        if len(live) < count:
            raise ReplicationError(
                f"need {count} live datanodes, have {len(live)}"
            )
        return live[:count]

    def _read_block(self, block_id: int, path: str) -> bytes:
        for node_id in self.namenode.locations(block_id):
            node = self.datanodes.get(node_id)
            if node is not None and node.alive and node.has_block(block_id):
                return node.read(block_id)
        raise BlockLostError(
            f"block {block_id} of {path!r} has no live replica"
        )
