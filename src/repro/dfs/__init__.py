"""In-process simulation of a replicated block filesystem (HDFS-like).

The paper stores snapshots on HDFS v2.5.2 with a 64 MB block size and
replication factor 3.  This package provides the same contract in
process: a :class:`~repro.dfs.filesystem.SimulatedDFS` with a namenode
holding the namespace and block map, datanodes holding checksummed
block payloads, rack-aware-ish placement, atomic (stage-then-commit)
writes, corruption scrubbing and re-replication after datanode
failures, a seeded :class:`~repro.dfs.faults.FaultInjector` for chaos
testing, and byte accounting (both logical file size and physical
replicated usage — the quantity Figures 8 and 10 plot).
"""

from repro.dfs.block import Block, BlockId, block_checksum
from repro.dfs.datanode import DataNode
from repro.dfs.faults import FaultInjector
from repro.dfs.namenode import FileMeta, NameNode
from repro.dfs.filesystem import (
    DfsStats,
    FaultStats,
    FsckReport,
    HealReport,
    IoCostModel,
    SimulatedDFS,
)

__all__ = [
    "Block",
    "BlockId",
    "block_checksum",
    "DataNode",
    "FaultInjector",
    "FaultStats",
    "FileMeta",
    "FsckReport",
    "HealReport",
    "NameNode",
    "SimulatedDFS",
    "DfsStats",
    "IoCostModel",
]
