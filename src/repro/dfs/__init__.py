"""In-process simulation of a replicated block filesystem (HDFS-like).

The paper stores snapshots on HDFS v2.5.2 with a 64 MB block size and
replication factor 3.  This package provides the same contract in
process: a :class:`~repro.dfs.filesystem.SimulatedDFS` with a namenode
holding the namespace and block map, datanodes holding block payloads,
rack-aware-ish placement, re-replication after datanode failures, and
byte accounting (both logical file size and physical replicated usage —
the quantity Figures 8 and 10 plot).
"""

from repro.dfs.block import Block, BlockId
from repro.dfs.datanode import DataNode
from repro.dfs.namenode import FileMeta, NameNode
from repro.dfs.filesystem import DfsStats, IoCostModel, SimulatedDFS

__all__ = [
    "Block",
    "BlockId",
    "DataNode",
    "FileMeta",
    "NameNode",
    "SimulatedDFS",
    "DfsStats",
    "IoCostModel",
]
