"""Block primitives for the simulated DFS."""

from __future__ import annotations

from dataclasses import dataclass

#: Opaque block identifier (monotonically assigned by the namenode).
BlockId = int


@dataclass(frozen=True)
class Block:
    """A fixed-maximum-size chunk of file data."""

    block_id: BlockId
    data: bytes

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.data)


def split_into_blocks(data: bytes, block_size: int) -> list[bytes]:
    """Chunk a payload into block-size pieces (last block may be short).

    An empty payload yields no blocks, matching HDFS (a zero-length file
    has an empty block list).
    """
    if block_size < 1:
        raise ValueError("block_size must be positive")
    return [data[i : i + block_size] for i in range(0, len(data), block_size)]
