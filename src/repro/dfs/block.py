"""Block primitives for the simulated DFS."""

from __future__ import annotations

import zlib
from dataclasses import dataclass

#: Opaque block identifier (monotonically assigned by the namenode).
BlockId = int


def block_checksum(data: bytes) -> int:
    """CRC32 of a block payload (HDFS checksums per 512-byte chunk; one
    CRC per block is enough to *detect* corruption in the simulator)."""
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass(frozen=True)
class Block:
    """A fixed-maximum-size chunk of file data.

    The checksum is computed once at block creation and travels with
    every replica, so a datanode can verify its stored payload on read
    without trusting its own (possibly corrupted) copy.
    """

    block_id: BlockId
    data: bytes
    checksum: int | None = None

    def __post_init__(self) -> None:
        if self.checksum is None:
            object.__setattr__(self, "checksum", block_checksum(self.data))

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.data)


def split_into_blocks(data: bytes, block_size: int) -> list[bytes]:
    """Chunk a payload into block-size pieces (last block may be short).

    An empty payload yields no blocks, matching HDFS (a zero-length file
    has an empty block list).
    """
    if block_size < 1:
        raise ValueError("block_size must be positive")
    return [data[i : i + block_size] for i in range(0, len(data), block_size)]
