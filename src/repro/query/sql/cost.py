"""Cost model for SQL planning.

Estimates feed on statistics the warehouse already maintains for
pruning: day/leaf :class:`~repro.index.highlights.HighlightSummary`
objects carry per-table row counts, per-attribute numeric bounds
(``NumericStats``) and capped distinct sets (``CategoricalStats``).
:func:`stats_from_summary` folds them into a :class:`TableStats`;
materialized tables capture their row count at registration.

The formulas are the textbook ones, chosen for determinism rather than
sophistication:

- equality selectivity is ``count(value) / rows`` when the distinct set
  is complete (under the summary cap), else ``1 / distinct``;
- range selectivity is the covered fraction of the ``[min, max]`` span,
  trusted only when every row of the column had a numeric view (so a
  text column can never masquerade as a narrow range);
- anything else falls back to :data:`DEFAULT_SELECTIVITY`;
- an equi join's cardinality is ``|L| * |R| / max(d_L, d_R, 1)``.

Join ordering (:func:`choose_join_order`) is greedy smallest-next over
the connectivity graph: start from the smallest input, repeatedly pick
the connected table minimizing the estimated intermediate result, with
syntactic position as the deterministic tie-break.  The executor sorts
join output back into the row engine's syntactic order afterwards, so
ordering is purely a cost decision — it can never change answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.query.sql.values import as_number, predicate_passes

#: Selectivity assumed for predicates the statistics cannot score.
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Pushing a scan predicate estimated to keep at least this fraction of
#: rows is pure overhead (summary checks per leaf, zone-map probes per
#: channel) with no realistic chance of pruning — the planner's
#: pruned-scan vs full-scan decision.
PUSHDOWN_USELESS_AT = 0.98


@dataclass
class ColumnStats:
    """Statistics for one column of one table."""

    #: Distinct values seen (0 = unknown).
    distinct: int = 0
    #: value -> occurrence count, only when the distinct set is complete
    #: (i.e. it never hit the summary's top-k cap); None otherwise.
    values: Optional[dict[str, int]] = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    #: Rows whose cell had a numeric view; bounds are trusted only when
    #: this equals :attr:`rows` (every row participated).
    numeric_count: int = 0
    #: Rows of the owning table when these stats were gathered.
    rows: int = 0

    def merge(self, other: "ColumnStats") -> None:
        """Fold another shard's view of the same column in."""
        # Distinct sets across shards may overlap: the max is a lower
        # bound, which keeps join estimates conservative.
        self.distinct = max(self.distinct, other.distinct)
        self.values = None  # per-shard counts can't be combined soundly
        if other.minimum is not None:
            self.minimum = (
                other.minimum
                if self.minimum is None
                else min(self.minimum, other.minimum)
            )
        if other.maximum is not None:
            self.maximum = (
                other.maximum
                if self.maximum is None
                else max(self.maximum, other.maximum)
            )
        self.numeric_count += other.numeric_count
        self.rows += other.rows


@dataclass
class TableStats:
    """Row count plus per-column statistics for one table."""

    rows: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def merge(self, other: "TableStats") -> None:
        """Fold another shard's slice of the same table in (row counts
        add; column stats merge conservatively)."""
        self.rows += other.rows
        for name, stats in other.columns.items():
            mine = self.columns.get(name)
            if mine is None:
                self.columns[name] = ColumnStats(
                    distinct=stats.distinct,
                    values=None,
                    minimum=stats.minimum,
                    maximum=stats.maximum,
                    numeric_count=stats.numeric_count,
                    rows=stats.rows,
                )
            else:
                mine.merge(stats)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def stats_from_summary(summary, table: str) -> Optional[TableStats]:
    """Build :class:`TableStats` from a merged highlight summary, or
    None when the summary never saw the table."""
    if table not in summary.record_counts:
        return None
    rows = summary.record_counts[table]
    out = TableStats(rows=rows)
    for name, attr in summary.attributes.get(table, {}).items():
        counts = attr.categorical.counts
        capped = len(counts) >= attr.max_distinct
        numeric = attr.numeric  # None when no cell ever parsed as a number
        out.columns[name] = ColumnStats(
            distinct=len(counts),
            values=None if capped else dict(counts),
            minimum=None if numeric is None else numeric.minimum,
            maximum=None if numeric is None else numeric.maximum,
            numeric_count=0 if numeric is None else numeric.count,
            rows=rows,
        )
    return out


def predicate_selectivity(
    stats: Optional[TableStats], column: str, op: str, value: Any
) -> float:
    """Estimated fraction of rows satisfying ``column op value``."""
    if stats is None or stats.rows <= 0:
        return DEFAULT_SELECTIVITY
    cs = stats.columns.get(column)
    if cs is None or cs.rows <= 0:
        return DEFAULT_SELECTIVITY
    if op == "=":
        if cs.values is not None:
            hits = sum(
                count
                for cell, count in cs.values.items()
                if predicate_passes(cell, "=", value)
            )
            return hits / cs.rows
        if cs.distinct > 0:
            return 1.0 / cs.distinct
        return DEFAULT_SELECTIVITY
    if op == "!=":
        return 1.0 - predicate_selectivity(stats, column, "=", value)
    if op in ("<", "<=", ">", ">="):
        number = as_number(value)
        bounds_trusted = (
            number is not None
            and cs.minimum is not None
            and cs.maximum is not None
            and cs.numeric_count >= cs.rows
        )
        if not bounds_trusted:
            return DEFAULT_SELECTIVITY
        span = cs.maximum - cs.minimum
        if span <= 0:
            # Single-valued column: the predicate either keeps all rows
            # or none of them.
            return 1.0 if predicate_passes(cs.minimum, op, number) else 0.0
        if op in ("<", "<="):
            fraction = (number - cs.minimum) / span
        else:
            fraction = (cs.maximum - number) / span
        return min(1.0, max(0.0, fraction))
    return DEFAULT_SELECTIVITY


def scan_selectivity(stats: Optional[TableStats], predicates) -> float:
    """Combined (independence-assumed) selectivity of simple
    ``column op value`` predicates — anything exposing ``.column``,
    ``.op`` and ``.value`` (e.g. the planner's ``ScanPredicate``)."""
    fraction = 1.0
    for predicate in predicates:
        fraction *= predicate_selectivity(
            stats, predicate.column, predicate.op, predicate.value
        )
    return fraction


def estimate_join_rows(
    left_rows: float,
    right_rows: float,
    left_distinct: int = 0,
    right_distinct: int = 0,
) -> float:
    """Equi-join cardinality estimate; with no distinct information the
    denominator degrades to 1 (cross-product bound)."""
    denominator = max(left_distinct, right_distinct, 1)
    return left_rows * right_rows / denominator


@dataclass(frozen=True)
class JoinEdge:
    """One equi-join predicate between two tables (by position)."""

    left: int
    right: int
    left_distinct: int = 0
    right_distinct: int = 0

    def touches(self, table: int) -> bool:
        return table in (self.left, self.right)


@dataclass
class JoinPlan:
    """A chosen join order with its per-step estimates."""

    order: list[int]
    #: Estimated cardinality *after* each join step; ``step_rows[0]`` is
    #: the starting table's size, ``step_rows[i]`` the result after the
    #: i-th join.
    step_rows: list[float]
    #: ``"left"`` / ``"right"`` hash build side per join step (index 0
    #: corresponds to joining ``order[1]``): build the smaller input.
    build_sides: list[str]


def choose_join_order(
    sizes: list[float], edges: list[JoinEdge]
) -> JoinPlan:
    """Greedy smallest-intermediate-first ordering of an inner-join
    group.  Connected candidates (sharing an equi edge with the joined
    set) are preferred; disconnected ones cross-product last.  All ties
    break toward the lower syntactic position, keeping plans stable
    across runs."""
    n = len(sizes)
    if n == 0:
        return JoinPlan(order=[], step_rows=[], build_sides=[])
    start = min(range(n), key=lambda t: (sizes[t], t))
    order = [start]
    joined = {start}
    current = float(sizes[start])
    step_rows = [current]
    build_sides: list[str] = []
    while len(order) < n:
        best: Optional[tuple[float, int, int]] = None
        for candidate in range(n):
            if candidate in joined:
                continue
            connecting = [
                e
                for e in edges
                if e.touches(candidate)
                and (e.left in joined or e.right in joined)
            ]
            if connecting:
                estimate = min(
                    estimate_join_rows(
                        current,
                        sizes[candidate],
                        e.left_distinct,
                        e.right_distinct,
                    )
                    for e in connecting
                )
                connected = 0
            else:
                estimate = current * sizes[candidate]
                connected = 1  # sorts after any connected candidate
            key = (connected, estimate, candidate)
            if best is None or key < best:
                best = key
        __, estimate, chosen = best
        build_sides.append(
            "right" if sizes[chosen] <= current else "left"
        )
        order.append(chosen)
        joined.add(chosen)
        current = max(estimate, 0.0)
        step_rows.append(current)
    return JoinPlan(order=order, step_rows=step_rows, build_sides=build_sides)


__all__ = [
    "DEFAULT_SELECTIVITY",
    "PUSHDOWN_USELESS_AT",
    "ColumnStats",
    "JoinEdge",
    "JoinPlan",
    "TableStats",
    "choose_join_order",
    "estimate_join_rows",
    "predicate_selectivity",
    "scan_selectivity",
    "stats_from_summary",
]
