"""Static planning helpers for scan-level pushdown.

The SQL executor applies every WHERE conjunct row-wise, so scan-level
pruning only needs to be *conservative*: a leaf may be skipped when its
day summary proves that no row in it can satisfy some conjunct that
will be ANDed over the output anyway.  These helpers derive, from a
parsed statement, the two hints a :class:`~repro.core.spate.Spate` scan
can exploit:

- :func:`extract_scan_predicates` — simple ``column op literal``
  conjuncts attributable to one scan table, checkable against a
  summary's per-attribute :class:`~repro.index.highlights.NumericStats`
  (or its per-cell map, for equality on the table's cell column);
- :func:`collect_column_names` — the set of columns the statement can
  ever touch, so the columnar decoder can hop over the rest (``None``
  when a ``*`` anywhere makes the set unbounded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.index.highlights import CELL_COLUMN
from repro.query.sql.ast import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    Expression,
    FromItem,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Like,
    Literal,
    ScalarSubquery,
    SelectStatement,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
)

#: Comparison operators a summary can disprove via min/max bounds.
_RANGE_OPS = ("=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class ScanPredicate:
    """One pushable ``column op value`` filter on a scan table."""

    column: str
    op: str
    value: object  # int | float | str (strings only matter for cells)


def disproved_by_summary(summary, table: str, predicates) -> bool:
    """True when ``summary`` proves no row can pass every predicate.

    Summaries are supersets of the leaves below them (decay and fungus
    only shrink leaves), so disproof here is sound for each leaf.
    """
    for predicate in predicates:
        value = predicate.value
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            if summary.disproves_predicate(
                table, predicate.column, predicate.op, value
            ):
                return True
        elif (
            predicate.op == "="
            and predicate.column == CELL_COLUMN.get(table)
            and summary.excludes_cells(table, {str(value)})
        ):
            return True
    return False


def cell_equality_values(table: str, predicates) -> Optional[list[str]]:
    """Cell ids this scan's pushed predicates pin ``table`` to, or
    ``None`` when they imply no spatial restriction.

    Only ``cell_column = literal`` conjuncts qualify; each one
    restricts the scan to a single cell, so the list is the conjunction
    of singletons (two *different* pinned cells make the WHERE
    unsatisfiable outside group 0's unknown-cell rows — the shard
    router handles that by intersecting).  The executor re-applies
    every conjunct row-wise, so consumers only need this to be a
    superset-sound routing hint, never an exact filter.
    """
    cell_column = CELL_COLUMN.get(table)
    if cell_column is None or not predicates:
        return None
    values = [
        str(predicate.value)
        for predicate in predicates
        if predicate.op == "="
        and predicate.column == cell_column
        and not isinstance(predicate.value, bool)
    ]
    return values or None


def all_select_statements(stmt: SelectStatement) -> list[SelectStatement]:
    """The statement plus every nested SELECT (union branches, FROM
    subqueries, IN / scalar subqueries) — each is a separate scan
    context for pushdown purposes."""
    out = [stmt]
    for branch, __ in stmt.unions:
        out.extend(all_select_statements(branch))
    out.extend(_selects_in_from(stmt.from_item))
    for expr in [i.expression for i in stmt.items] + [
        stmt.where,
        stmt.having,
        *stmt.group_by,
        *[o.expression for o in stmt.order_by],
    ]:
        if expr is not None:
            out.extend(_selects_in_expr(expr))
    return out


def _selects_in_from(item: Optional[FromItem]) -> list[SelectStatement]:
    if isinstance(item, SubqueryRef):
        return all_select_statements(item.select)
    if isinstance(item, Join):
        out = _selects_in_from(item.left) + _selects_in_from(item.right)
        if item.condition is not None:
            out.extend(_selects_in_expr(item.condition))
        return out
    return []


def _selects_in_expr(expr: Expression) -> list[SelectStatement]:
    if isinstance(expr, ScalarSubquery):
        return all_select_statements(expr.select)
    if isinstance(expr, InList):
        out = _selects_in_expr(expr.operand)
        if expr.subquery is not None:
            out.extend(all_select_statements(expr.subquery))
        for item in expr.items:
            out.extend(_selects_in_expr(item))
        return out
    if isinstance(expr, BinaryOp):
        return _selects_in_expr(expr.left) + _selects_in_expr(expr.right)
    if isinstance(expr, UnaryOp):
        return _selects_in_expr(expr.operand)
    if isinstance(expr, Between):
        return (
            _selects_in_expr(expr.operand)
            + _selects_in_expr(expr.low)
            + _selects_in_expr(expr.high)
        )
    if isinstance(expr, (Like, IsNull)):
        return _selects_in_expr(expr.operand)
    if isinstance(expr, FunctionCall):
        return [s for a in expr.args for s in _selects_in_expr(a)]
    if isinstance(expr, CaseExpression):
        parts = [e for pair in expr.branches for e in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return [s for e in parts for s in _selects_in_expr(e)]
    return []


def scan_table_bindings(item: Optional[FromItem]) -> dict[str, str]:
    """Map binding name -> upper-cased table name for every base-table
    reference in a FROM tree (subqueries are opaque)."""
    out: dict[str, str] = {}
    if isinstance(item, TableRef):
        out[item.binding] = item.name.upper()
    elif isinstance(item, Join):
        out.update(scan_table_bindings(item.left))
        out.update(scan_table_bindings(item.right))
    return out


def extract_scan_predicates(
    stmt: SelectStatement,
) -> dict[str, list[ScanPredicate]]:
    """Pushable predicates per scanned table (upper-cased name).

    Only top-level WHERE conjuncts of the shape ``column op literal``
    qualify: anything under an OR, involving two columns, or built from
    functions cannot prune a whole leaf soundly.  A bare (unqualified)
    column is attributed to a table only when the FROM clause is that
    single table — with a join in play it could bind to either side.
    """
    bindings = scan_table_bindings(stmt.from_item)
    sole_binding = (
        next(iter(bindings)) if len(bindings) == 1 else None
    )
    out: dict[str, list[ScanPredicate]] = {}
    for conjunct in _conjuncts(stmt.where):
        parsed = _simple_comparison(conjunct)
        if parsed is None:
            continue
        ref, op, value = parsed
        binding = ref.table if ref.table is not None else sole_binding
        table = bindings.get(binding) if binding is not None else None
        if table is None:
            continue
        out.setdefault(table, []).append(
            ScanPredicate(column=ref.name, op=op, value=value)
        )
    return out


def _conjuncts(expr: Optional[Expression]) -> list[Expression]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def _simple_comparison(expr: Expression):
    """Decompose ``column op literal`` (either orientation), else None."""
    if not isinstance(expr, BinaryOp) or expr.op not in _RANGE_OPS:
        return None
    left, right = expr.left, expr.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left, expr.op, right.value
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        return right, _FLIPPED[expr.op], left.value
    return None


def collect_column_names(stmt: SelectStatement) -> Optional[set[str]]:
    """Every column name the statement may read, or None when a ``*``
    (anywhere, including subqueries and unions) makes it unbounded.

    The set is a global over-approximation across all tables — safe for
    projection pushdown because a projected decode keeps the full
    stored schema and row width, merely skipping the decode of columns
    outside the set.
    """
    names: set[str] = set()
    if _collect_stmt(stmt, names):
        return names
    return None


def _collect_stmt(stmt: SelectStatement, names: set[str]) -> bool:
    for item in stmt.items:
        if not _collect_expr(item.expression, names):
            return False
    if stmt.from_item is not None and not _collect_from(stmt.from_item, names):
        return False
    for expr in (stmt.where, stmt.having):
        if expr is not None and not _collect_expr(expr, names):
            return False
    for key in stmt.group_by:
        if not _collect_expr(key, names):
            return False
    for order in stmt.order_by:
        if not _collect_expr(order.expression, names):
            return False
    for branch, __ in stmt.unions:
        if not _collect_stmt(branch, names):
            return False
    return True


def _collect_from(item: FromItem, names: set[str]) -> bool:
    if isinstance(item, TableRef):
        return True
    if isinstance(item, SubqueryRef):
        return _collect_stmt(item.select, names)
    if isinstance(item, Join):
        if item.condition is not None and not _collect_expr(
            item.condition, names
        ):
            return False
        return _collect_from(item.left, names) and _collect_from(
            item.right, names
        )
    return False


def _collect_expr(expr: Expression, names: set[str]) -> bool:
    if isinstance(expr, Star):
        return False
    if isinstance(expr, ColumnRef):
        names.add(expr.name)
        return True
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, BinaryOp):
        return _collect_expr(expr.left, names) and _collect_expr(
            expr.right, names
        )
    if isinstance(expr, UnaryOp):
        return _collect_expr(expr.operand, names)
    if isinstance(expr, Between):
        return all(
            _collect_expr(e, names)
            for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, InList):
        if not _collect_expr(expr.operand, names):
            return False
        if expr.subquery is not None and not _collect_stmt(
            expr.subquery, names
        ):
            return False
        return all(_collect_expr(i, names) for i in expr.items)
    if isinstance(expr, (Like, IsNull)):
        return _collect_expr(expr.operand, names)
    if isinstance(expr, FunctionCall):
        # COUNT(*) reads no particular column; a bare Star argument is
        # row-existence, not a schema-wide projection.
        return all(
            _collect_expr(a, names)
            for a in expr.args
            if not isinstance(a, Star)
        )
    if isinstance(expr, CaseExpression):
        parts = [e for pair in expr.branches for e in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return all(_collect_expr(e, names) for e in parts)
    if isinstance(expr, ScalarSubquery):
        return _collect_stmt(expr.select, names)
    return True


__all__ = [
    "ScanPredicate",
    "all_select_statements",
    "cell_equality_values",
    "collect_column_names",
    "disproved_by_summary",
    "extract_scan_predicates",
    "scan_table_bindings",
]
