"""Vectorized (column-batch) SQL execution.

The row engine in :mod:`repro.query.sql.executor` evaluates every
expression once per row over materialized row lists.  This module runs
the same plan shapes column-at-a-time over
:class:`~repro.query.sql.batch.Relation` index vectors: scope
resolution, literal coercion, and LIKE compilation happen once per
column, numeric views are computed once per base column, and joins move
row *indexes* instead of row copies.

Byte-identity with the row engine is the contract (the differential
harness diffs every spec across both): every kernel routes through
:mod:`repro.query.sql.values`, output row order mirrors the row
engine's — including its quirks (group output sorted by raw signature
with the same ``TypeError`` on mixed-type keys, the DISTINCT-before-
ORDER-BY base-row misalignment, lazy AND/OR/CASE evaluation order) —
and statements the batch pipeline does not cover (subqueries in any
position) fall back to the row path wholesale, before any scan runs.

Inner/cross join trees over base tables additionally pass through the
cost-based planner (:mod:`repro.query.sql.cost`): scans feed actual
filtered sizes, summary statistics supply join-key distinct counts, and
the greedy order + build-side choice executes out of syntactic order.
Because every row engine inner-join tree emits rows in lexicographic
order of base-table provenance (hash buckets keep build-side storage
order, probes keep probe-side order, nested loops are left-major), a
final provenance sort restores the exact row-engine order, so the
reorder is invisible in answers.
"""

from __future__ import annotations

import copy
from typing import Any, Optional

from repro.errors import SqlPlanError
from repro.query.sql import kernels
from repro.query.sql.ast import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    Expression,
    FromItem,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Like,
    Literal,
    ScalarSubquery,
    SelectStatement,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
    contains_aggregate,
)
from repro.query.sql.batch import ColumnBatch, Relation, join_relations
from repro.query.sql.cost import JoinEdge, choose_join_order
from repro.query.sql.values import (
    as_number,
    hashable_key,
    is_null,
    null_safe_key,
    sort_key,
)

_FLIP = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")


# ----------------------------------------------------------------------
# Support check (static, runs before any scan)
# ----------------------------------------------------------------------


def unsupported_reason(stmt: SelectStatement) -> Optional[str]:
    """Why the statement needs the row path, or None when the batch
    pipeline covers it.  Purely syntactic, so the decision lands before
    any table loader runs."""
    for branch, __ in stmt.unions:
        reason = unsupported_reason(branch)
        if reason is not None:
            return reason
    reason = _from_reason(stmt.from_item)
    if reason is not None:
        return reason
    exprs: list[Optional[Expression]] = [i.expression for i in stmt.items]
    exprs.extend([stmt.where, stmt.having])
    exprs.extend(stmt.group_by)
    exprs.extend(o.expression for o in stmt.order_by)
    for expr in exprs:
        if expr is not None and _has_subquery(expr):
            return "subquery expression"
    return None


def _from_reason(item: Optional[FromItem]) -> Optional[str]:
    if item is None or isinstance(item, TableRef):
        return None
    if isinstance(item, SubqueryRef):
        return "subquery in FROM"
    if isinstance(item, Join):
        reason = _from_reason(item.left) or _from_reason(item.right)
        if reason is not None:
            return reason
        if item.condition is not None and _has_subquery(item.condition):
            return "subquery expression"
        return None
    return "unsupported FROM item"


def _has_subquery(expr: Expression) -> bool:
    if isinstance(expr, ScalarSubquery):
        return True
    if isinstance(expr, InList):
        if expr.subquery is not None:
            return True
        return _has_subquery(expr.operand) or any(
            _has_subquery(i) for i in expr.items
        )
    if isinstance(expr, BinaryOp):
        return _has_subquery(expr.left) or _has_subquery(expr.right)
    if isinstance(expr, UnaryOp):
        return _has_subquery(expr.operand)
    if isinstance(expr, Between):
        return any(
            _has_subquery(e) for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, (Like, IsNull)):
        return _has_subquery(expr.operand)
    if isinstance(expr, FunctionCall):
        return any(_has_subquery(a) for a in expr.args)
    if isinstance(expr, CaseExpression):
        parts = [e for pair in expr.branches for e in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return any(_has_subquery(e) for e in parts)
    return False


def _column_refs(expr: Expression) -> list[ColumnRef]:
    if isinstance(expr, ColumnRef):
        return [expr]
    if isinstance(expr, BinaryOp):
        return _column_refs(expr.left) + _column_refs(expr.right)
    if isinstance(expr, UnaryOp):
        return _column_refs(expr.operand)
    if isinstance(expr, Between):
        return (
            _column_refs(expr.operand)
            + _column_refs(expr.low)
            + _column_refs(expr.high)
        )
    if isinstance(expr, InList):
        out = _column_refs(expr.operand)
        for item in expr.items:
            out.extend(_column_refs(item))
        return out
    if isinstance(expr, (Like, IsNull)):
        return _column_refs(expr.operand)
    if isinstance(expr, FunctionCall):
        return [r for a in expr.args for r in _column_refs(a)]
    if isinstance(expr, CaseExpression):
        parts = [e for pair in expr.branches for e in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return [r for e in parts for r in _column_refs(e)]
    return []


def _functions_known(expr: Expression) -> bool:
    """True when every FunctionCall in the tree names a real function —
    a flatten precondition, so a reorder can never swallow the row
    engine's 'unknown function' error."""
    from repro.query.sql.functions import SCALAR_FUNCTIONS

    if isinstance(expr, FunctionCall):
        if (
            expr.name not in SCALAR_FUNCTIONS
            and expr.name not in AGGREGATE_FUNCTIONS
        ):
            return False
        return all(_functions_known(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return _functions_known(expr.left) and _functions_known(expr.right)
    if isinstance(expr, UnaryOp):
        return _functions_known(expr.operand)
    if isinstance(expr, Between):
        return all(
            _functions_known(e) for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, InList):
        return _functions_known(expr.operand) and all(
            _functions_known(i) for i in expr.items
        )
    if isinstance(expr, (Like, IsNull)):
        return _functions_known(expr.operand)
    if isinstance(expr, CaseExpression):
        parts = [e for pair in expr.branches for e in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return all(_functions_known(e) for e in parts)
    return True


class _NotFlat(Exception):
    """Internal: the FROM tree cannot be flattened for reorder."""


class VectorizedExecutor:
    """One statement's batch execution over a
    :class:`~repro.query.sql.executor.Database` catalog.

    The instance borrows the database's scope resolution, scan loaders,
    deadline marks, and row-wise evaluator (for per-group representative
    leaves) so the two engines can never drift on those semantics."""

    def __init__(self, db):
        self.db = db
        #: Plan/cardinality records for EXPLAIN ANALYZE:
        #: ``{"label", "est", "actual"}`` rows and ``{"label", "note"}``
        #: annotations, in execution order.
        self.profile: list[dict] = []
        self._next_table_id = 0
        self._agg_cache: dict[int, tuple[list, Optional[list]]] = {}

    # -- entry point ----------------------------------------------------

    def execute(self, stmt: SelectStatement):
        return self._select(stmt)

    def _select(self, stmt: SelectStatement):
        from repro.query.sql.executor import (
            QueryResult,
            _Scope,
            _split_conjuncts,
            _truthy,
        )

        if stmt.unions:
            return self._union(stmt)
        db = self.db
        if stmt.from_item is not None:
            conjuncts = _split_conjuncts(stmt.where)
            full_scope = db._scope_of(stmt.from_item)
            pushable = [
                c
                for c in conjuncts
                if not contains_aggregate(c)
                and db._resolvable(c, full_scope)
            ]
            blocked = [c for c in conjuncts if c not in pushable]
            scope, rel, leftover = self._from_filtered(
                stmt.from_item, pushable
            )
            db._check_deadline("scan/join")
            for predicate in leftover + blocked:
                rel = self._filter(rel, predicate, scope)
            db._check_deadline("filter")
        else:
            scope = _Scope()
            rel = Relation([], [], [], [()], [])
            if stmt.where is not None:
                rel = self._filter(rel, stmt.where, scope)

        grouped = bool(stmt.group_by) or any(
            contains_aggregate(item.expression) for item in stmt.items
        ) or (stmt.having is not None)

        if grouped:
            out_columns, out_rows = self._grouped_projection(stmt, scope, rel)
        else:
            out_columns, out_rows = self._plain_projection(
                stmt.items, scope, rel
            )
        db._check_deadline("aggregation/projection")

        if stmt.distinct:
            seen: set[tuple] = set()
            deduped = []
            for row in out_rows:
                key = tuple(row)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            out_rows = deduped

        if stmt.order_by:
            db._check_deadline("sort")
            out_rows = self._order(
                stmt, scope, out_columns, out_rows, rel, grouped
            )

        if stmt.limit is not None:
            out_rows = out_rows[: stmt.limit]

        return QueryResult(columns=out_columns, rows=out_rows)

    def _union(self, stmt: SelectStatement):
        from repro.query.sql.executor import (
            QueryResult,
            _null_safe,
            _sortable,
        )

        head = copy.copy(stmt)
        head.unions = []
        head.order_by = []
        head.limit = None
        result = self._select(head)
        columns = result.columns
        rows = list(result.rows)
        dedup = False
        for branch, keep_duplicates in stmt.unions:
            branch_result = self._select(branch)
            if len(branch_result.columns) != len(columns):
                raise SqlPlanError(
                    f"UNION branches have {len(columns)} vs "
                    f"{len(branch_result.columns)} columns"
                )
            rows.extend(branch_result.rows)
            if not keep_duplicates:
                dedup = True
        if dedup:
            seen: set[tuple] = set()
            unique = []
            for row in rows:
                key = tuple(_null_safe(c) for c in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        if stmt.order_by:
            indexes = []
            for order in stmt.order_by:
                expr = order.expression
                if (
                    isinstance(expr, ColumnRef)
                    and expr.table is None
                    and expr.name in columns
                ):
                    indexes.append((columns.index(expr.name), order.ascending))
                elif isinstance(expr, Literal) and isinstance(expr.value, int):
                    if not 1 <= expr.value <= len(columns):
                        raise SqlPlanError(
                            f"ORDER BY position {expr.value} out of range"
                        )
                    indexes.append((expr.value - 1, order.ascending))
                else:
                    raise SqlPlanError(
                        "ORDER BY on UNION must reference output columns"
                    )
            rows.sort(
                key=lambda row: [_sortable(row[i], asc) for i, asc in indexes]
            )
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        return QueryResult(columns=columns, rows=rows)

    # -- FROM -----------------------------------------------------------

    def _from_filtered(self, item: FromItem, conjuncts: list[Expression]):
        """Mirror of ``Database._execute_from_filtered`` over relations,
        with one extra move: flattenable inner/cross trees of base
        tables divert through the cost-based reorder."""
        from repro.query.sql.executor import _Scope

        if isinstance(item, Join) and item.kind != "left":
            plan = self._flatten(item, conjuncts)
            if plan is not None:
                return self._from_reordered(*plan)
            left_scope, left_rel, conjuncts = self._from_filtered(
                item.left, conjuncts
            )
            right_scope, right_rel, conjuncts = self._from_filtered(
                item.right, conjuncts
            )
            scope, rel = self._join(
                item, left_scope, left_rel, right_scope, right_rel
            )
        else:
            scope, rel = self._from(item)
        applicable = []
        leftover = []
        for predicate in conjuncts:
            target = (
                applicable
                if self.db._resolvable(predicate, scope)
                else leftover
            )
            target.append(predicate)
        for predicate in applicable:
            rel = self._filter(rel, predicate, scope)
        return scope, rel, leftover

    def _from(self, item: FromItem):
        from repro.query.sql.executor import _Scope

        db = self.db
        if isinstance(item, TableRef):
            return self._scan(item)
        if isinstance(item, Join):
            left_scope, left_rel = self._from(item.left)
            right_scope, right_rel = self._from(item.right)
            return self._join(
                item, left_scope, left_rel, right_scope, right_rel
            )
        raise SqlPlanError(f"unsupported FROM item {item!r}")

    def _scan(self, item: TableRef):
        from repro.query.sql.executor import _Scope

        db = self.db
        upper = item.name.upper()
        if upper not in db._tables:
            raise SqlPlanError(f"unknown table {item.name!r}")
        batch = db._load_batch(upper)
        table_id = self._next_table_id
        self._next_table_id += 1
        scope = _Scope(fields=[(item.binding, c) for c in batch.columns])
        rel = Relation.from_batch(item.binding, batch, table_id)
        stats = db.table_statistics(upper)
        self.profile.append(
            {
                "label": f"Scan {item.name.upper()}",
                "est": float(stats.rows) if stats is not None else None,
                "actual": batch.length,
            }
        )
        return scope, rel

    # -- syntactic join mirror ------------------------------------------

    def _join(self, join: Join, left_scope, left_rel, right_scope, right_rel):
        from repro.query.sql.executor import _Scope, _split_conjuncts

        db = self.db
        scope = _Scope(fields=left_scope.fields + right_scope.fields)
        nleft, nright = left_rel.length, right_rel.length

        if join.kind == "cross":
            pairs = [
                (li, ri) for li in range(nleft) for ri in range(nright)
            ]
            rel = join_relations(left_rel, right_rel, pairs)
            self.profile.append(
                {"label": "CrossJoin", "est": None, "actual": rel.length}
            )
            return scope, rel

        equi = db._equi_join_keys(join.condition, left_scope, right_scope)
        if equi is not None:
            # Bare `a.x = b.y`: hash without a recheck.  NULL keys are
            # excluded up front — in the row engine they collide in the
            # hash bucket and then fail the equality recheck, so the
            # surviving pair set is identical.
            left_idx, right_idx = equi
            lcol = left_rel.column(left_idx)
            rcol = right_rel.column(right_idx)
            index: dict[Any, list[int]] = {}
            for ri, value in enumerate(rcol):
                if not is_null(value):
                    index.setdefault(null_safe_key(value), []).append(ri)
            pairs = []
            append = pairs.append
            left_join = join.kind == "left"
            for li, value in enumerate(lcol):
                matched = False
                if not is_null(value):
                    for ri in index.get(null_safe_key(value), ()):
                        append((li, ri))
                        matched = True
                if not matched and left_join:
                    append((li, -1))
            rel = join_relations(left_rel, right_rel, pairs)
            self.profile.append(
                {"label": "HashJoin", "est": None, "actual": rel.length}
            )
            return scope, rel

        # General condition: candidate pairs (hashed on a leading bare
        # equi conjunct when there is one, else the full cross space),
        # then the whole condition vector-evaluated over the candidates
        # — matching the row engine's lazy AND short-circuit, which only
        # ever evaluates the rest of the condition on pairs where the
        # leading conjunct held.
        conjuncts = _split_conjuncts(join.condition)
        lead = (
            db._equi_join_keys(conjuncts[0], left_scope, right_scope)
            if conjuncts
            else None
        )
        if lead is not None:
            left_idx, right_idx = lead
            lcol = left_rel.column(left_idx)
            rcol = right_rel.column(right_idx)
            index = {}
            for ri, value in enumerate(rcol):
                if not is_null(value):
                    index.setdefault(null_safe_key(value), []).append(ri)
            cand: list[tuple[int, int]] = []
            spans: list[tuple[int, int]] = []
            for li, value in enumerate(lcol):
                start = len(cand)
                if not is_null(value):
                    for ri in index.get(null_safe_key(value), ()):
                        cand.append((li, ri))
                spans.append((start, len(cand)))
            strategy = "HashJoin"
        else:
            cand = [(li, ri) for li in range(nleft) for ri in range(nright)]
            spans = [
                (li * nright, (li + 1) * nright) for li in range(nleft)
            ]
            strategy = "NestedLoopJoin"
        if join.condition is None:
            mask = [True] * len(cand)
        else:
            cand_rel = join_relations(left_rel, right_rel, cand)
            mask = kernels.truthy_mask(
                self._eval_vec(join.condition, cand_rel, scope)
            )
        pairs = []
        append = pairs.append
        left_join = join.kind == "left"
        for li, (start, end) in enumerate(spans):
            matched = False
            for k in range(start, end):
                if mask[k]:
                    append(cand[k])
                    matched = True
            if not matched and left_join:
                append((li, -1))
        rel = join_relations(left_rel, right_rel, pairs)
        self.profile.append(
            {"label": strategy, "est": None, "actual": rel.length}
        )
        return scope, rel

    # -- cost-based reorder ---------------------------------------------

    def _flatten(self, item: Join, conjuncts: list[Expression]):
        """Decompose an inner/cross-only tree of base tables into
        (tables, pooled predicates), or None when the syntactic mirror
        must run instead (left joins, subqueries, duplicate bindings,
        predicates whose errors the reorder could mis-time)."""
        tables: list[TableRef] = []
        pooled: list[Expression] = []

        def walk(node: FromItem) -> None:
            if isinstance(node, Join) and node.kind in ("inner", "cross"):
                walk(node.left)
                walk(node.right)
                if node.condition is not None:
                    pooled.extend(
                        __split_conjuncts(node.condition)
                    )
            elif isinstance(node, TableRef):
                tables.append(node)
            else:
                raise _NotFlat

        from repro.query.sql.executor import _Scope, _split_conjuncts

        __split_conjuncts = _split_conjuncts
        try:
            walk(item)
        except _NotFlat:
            return None
        if len(tables) < 2:
            return None
        if len({t.binding for t in tables}) != len(tables):
            return None
        db = self.db
        # Every table must resolve (unknown tables raise in syntactic
        # order through the normal path).
        for t in tables:
            if t.name.upper() not in db._tables:
                return None
        full_scope = _Scope(
            fields=[
                (t.binding, c)
                for t in tables
                for c in db._tables[t.name.upper()][0]
            ]
        )
        pooled = pooled + list(conjuncts)
        for predicate in pooled:
            if contains_aggregate(predicate):
                return None
            if not _functions_known(predicate):
                return None
            if not db._resolvable(predicate, full_scope):
                return None
        return tables, pooled, full_scope

    def _from_reordered(self, tables, pooled, full_scope):
        """Execute a flattened inner-join group in cost order, then sort
        the result back into the row engine's syntactic output order via
        base-table provenance."""
        from repro.query.sql.executor import _Scope

        db = self.db
        n = len(tables)
        # Field offsets per syntactic table position, for predicate
        # attribution against the full scope.
        offsets = []
        total = 0
        for t in tables:
            offsets.append(total)
            total += len(db._tables[t.name.upper()][0])

        def table_of(field_index: int) -> int:
            for pos in range(n - 1, -1, -1):
                if field_index >= offsets[pos]:
                    return pos
            return 0

        pred_tables: list[tuple[Expression, frozenset[int]]] = []
        for predicate in pooled:
            refs = _column_refs(predicate)
            touched = frozenset(
                table_of(full_scope.resolve(ref)) for ref in refs
            )
            if not touched:
                touched = frozenset({0})
            pred_tables.append((predicate, touched))

        # Scan + single-table filters (in syntactic order, so scan-time
        # errors surface exactly like the row engine's left-deep walk).
        rels: list[Relation] = []
        scopes: list = []
        for pos, t in enumerate(tables):
            scope_t, rel_t = self._scan(t)
            for predicate, touched in pred_tables:
                if touched == frozenset({pos}):
                    rel_t = self._filter(rel_t, predicate, scope_t)
            rels.append(rel_t)
            scopes.append(scope_t)

        # Cost inputs: actual filtered sizes plus summary distinct
        # counts on equi-join keys.
        sizes = [float(rel.length) for rel in rels]
        edges = []
        equi_info: dict[int, tuple[int, int]] = {}
        for pi, (predicate, touched) in enumerate(pred_tables):
            if len(touched) != 2:
                continue
            pair = self._bare_equi_tables(predicate, full_scope, table_of)
            if pair is None:
                continue
            (ta, ca), (tb, cb) = pair
            edges.append(
                JoinEdge(
                    left=ta,
                    right=tb,
                    left_distinct=self._distinct_of(tables[ta], ca),
                    right_distinct=self._distinct_of(tables[tb], cb),
                )
            )
            equi_info[pi] = (ta, tb)
        plan = choose_join_order(sizes, edges)
        order = plan.order
        self.profile.append(
            {
                "label": "JoinOrder",
                "note": " -> ".join(
                    [tables[order[0]].binding]
                    + [
                        f"{tables[t].binding}(build={side})"
                        for t, side in zip(order[1:], plan.build_sides)
                    ]
                )
                + " (cost-based)",
            }
        )

        applied = [
            touched is not None and len(touched) <= 1
            for __, touched in pred_tables
        ]
        acc = rels[order[0]]
        acc_scope = scopes[order[0]]
        joined = {order[0]}
        for step, pos in enumerate(order[1:]):
            next_rel = rels[pos]
            next_scope = scopes[pos]
            build_right = plan.build_sides[step] == "right"
            now = joined | {pos}
            ready = [
                pi
                for pi, (__, touched) in enumerate(pred_tables)
                if not applied[pi] and touched <= now
            ]
            # Hash on the first newly-ready bare equi linking the two
            # sides; every other ready predicate filters the candidates.
            equi_pi = None
            for pi in ready:
                predicate, touched = pred_tables[pi]
                if pi in equi_info and pos in equi_info[pi]:
                    other = (
                        equi_info[pi][0]
                        if equi_info[pi][1] == pos
                        else equi_info[pi][1]
                    )
                    if other in joined:
                        equi_pi = pi
                        break
            scope = _Scope(fields=acc_scope.fields + next_scope.fields)
            if equi_pi is not None:
                predicate = pred_tables[equi_pi][0]
                acc_idx, next_idx = self._equi_field_indexes(
                    predicate, acc_scope, next_scope
                )
                acc_col = acc.column(acc_idx)
                next_col = next_rel.column(next_idx)
                if build_right:
                    pairs = _hash_pairs(acc_col, next_col, probe_is_left=True)
                else:
                    pairs = _hash_pairs(next_col, acc_col, probe_is_left=False)
                applied[equi_pi] = True
            else:
                pairs = [
                    (ai, ni)
                    for ai in range(acc.length)
                    for ni in range(next_rel.length)
                ]
            est = plan.step_rows[step + 1]
            rel = join_relations(acc, next_rel, pairs)
            for pi in ready:
                if applied[pi]:
                    continue
                rel = self._filter(rel, pred_tables[pi][0], scope)
                applied[pi] = True
            self.profile.append(
                {
                    "label": (
                        "HashJoin" if equi_pi is not None else "NestedLoopJoin"
                    )
                    + f" +{tables[pos].binding}",
                    "est": est,
                    "actual": rel.length,
                }
            )
            acc = rel
            acc_scope = scope
            joined = now

        # Any predicate still unapplied references tables now all
        # joined; apply in pooled order.
        for pi, (predicate, __) in enumerate(pred_tables):
            if not applied[pi]:
                acc = self._filter(acc, predicate, acc_scope)
                applied[pi] = True

        # Restore the row engine's output order: permute provenance
        # slots into syntactic table order and sort lexicographically.
        # (Provenance tuples are unique — each base-row combination is
        # emitted at most once — so the sort has no ties to break.)
        perm = sorted(
            range(len(acc.tables)), key=lambda s: acc.table_ids[s]
        )
        prov = acc.provenance()
        ordered = sorted(tuple(r[s] for s in perm) for r in prov)
        tables_sorted = [acc.tables[s] for s in perm]
        # perm walks slots in syntactic table order, so appending each
        # table's columns in sequence reproduces full_scope.fields.
        field_map = []
        for j, s in enumerate(perm):
            for c in range(len(acc.tables[s].columns)):
                field_map.append((j, c))
        final = Relation(
            list(full_scope.fields),
            tables_sorted,
            field_map,
            ordered,
            sorted(acc.table_ids),
        )
        return full_scope, final, []

    def _bare_equi_tables(self, predicate, full_scope, table_of):
        """For a bare ``a.x = b.y`` between two different tables, return
        ((table_pos, column), (table_pos, column)); else None."""
        if not isinstance(predicate, BinaryOp) or predicate.op != "=":
            return None
        if not isinstance(predicate.left, ColumnRef) or not isinstance(
            predicate.right, ColumnRef
        ):
            return None
        li = full_scope.resolve(predicate.left)
        ri = full_scope.resolve(predicate.right)
        ta, tb = table_of(li), table_of(ri)
        if ta == tb:
            return None
        return (ta, predicate.left.name), (tb, predicate.right.name)

    def _equi_field_indexes(self, predicate, acc_scope, next_scope):
        """Resolve a bare equi predicate's two sides against the
        accumulated and incoming scopes (either orientation)."""
        left, right = predicate.left, predicate.right
        try:
            return acc_scope.resolve(left), next_scope.resolve(right)
        except SqlPlanError:
            return acc_scope.resolve(right), next_scope.resolve(left)

    def _distinct_of(self, table_ref: TableRef, column: str) -> int:
        stats = self.db.table_statistics(table_ref.name.upper())
        if stats is None:
            return 0
        cs = stats.columns.get(column)
        return cs.distinct if cs is not None else 0

    # -- filtering and expression evaluation ----------------------------

    def _filter(self, rel: Relation, predicate: Expression, scope) -> Relation:
        if rel.length == 0:
            return rel
        mask = kernels.truthy_mask(self._eval_vec(predicate, rel, scope))
        keep = [i for i, hit in enumerate(mask) if hit]
        if len(keep) == rel.length:
            return rel
        return rel.select(keep)

    def _subrel(self, rel: Relation, positions: list[int]) -> Relation:
        if len(positions) == rel.length:
            return rel
        return rel.select(positions)

    def _eval_vec(self, expr: Expression, rel: Relation, scope) -> list:
        """One output value per relation row.  Zero-row relations return
        immediately *without resolving anything* — the row engine never
        evaluates an expression it has no row for, and error parity
        (e.g. ``SELECT bogus FROM empty`` succeeding) depends on it."""
        n = rel.length
        if n == 0:
            return []
        if isinstance(expr, Literal):
            return [expr.value] * n
        if isinstance(expr, ColumnRef):
            return rel.column(scope.resolve(expr))
        if isinstance(expr, UnaryOp):
            if expr.op == "NOT":
                inner = self._eval_vec(expr.operand, rel, scope)
                return [not t for t in kernels.truthy_mask(inner)]
            return kernels.negate(self._numeric_vec(expr.operand, rel, scope))
        if isinstance(expr, BinaryOp):
            return self._eval_binary_vec(expr, rel, scope)
        if isinstance(expr, Between):
            value = self._eval_vec(expr.operand, rel, scope)
            low = self._eval_vec(expr.low, rel, scope)
            high = self._eval_vec(expr.high, rel, scope)
            return kernels.between_mask(value, low, high, expr.negated)
        if isinstance(expr, InList):
            values = self._eval_vec(expr.operand, rel, scope)
            if all(isinstance(i, Literal) for i in expr.items):
                pool = {null_safe_key(i.value) for i in expr.items}
                return kernels.in_mask(values, pool, expr.negated)
            item_cols = [
                self._eval_vec(i, rel, scope) for i in expr.items
            ]
            out = []
            for i, value in enumerate(values):
                pool = {null_safe_key(col[i]) for col in item_cols}
                out.append((null_safe_key(value) in pool) != expr.negated)
            return out
        if isinstance(expr, Like):
            from repro.query.sql.executor import _like_to_regex

            values = self._eval_vec(expr.operand, rel, scope)
            return kernels.like_mask(
                values, _like_to_regex(expr.pattern), expr.negated
            )
        if isinstance(expr, IsNull):
            values = self._eval_vec(expr.operand, rel, scope)
            return kernels.isnull_mask(values, expr.negated)
        if isinstance(expr, CaseExpression):
            return self._eval_case_vec(expr, rel, scope)
        if isinstance(expr, FunctionCall):
            if expr.name in AGGREGATE_FUNCTIONS:
                raise SqlPlanError(
                    f"aggregate {expr.name} outside GROUP BY context"
                )
            from repro.query.sql.functions import SCALAR_FUNCTIONS

            func = SCALAR_FUNCTIONS.get(expr.name)
            if func is None:
                raise SqlPlanError(f"unknown function {expr.name!r}")
            arg_cols = [self._eval_vec(a, rel, scope) for a in expr.args]
            if not arg_cols:
                return [func() for __ in range(n)]
            return [func(*cells) for cells in zip(*arg_cols)]
        if isinstance(expr, Star):
            raise SqlPlanError("* is only valid in SELECT or COUNT(*)")
        if isinstance(expr, ScalarSubquery):
            raise SqlPlanError(
                "scalar subquery reached the vectorized engine"
            )  # unreachable: unsupported_reason() routes these to the row path
        raise SqlPlanError(f"unsupported expression {expr!r}")

    def _numeric_vec(self, expr: Expression, rel: Relation, scope) -> list:
        """Numeric view of an expression column, reusing the base
        batch's cached view for plain column references."""
        if isinstance(expr, ColumnRef):
            return rel.numeric_column(scope.resolve(expr))
        if isinstance(expr, Literal):
            return [as_number(expr.value)] * rel.length
        return [as_number(v) for v in self._eval_vec(expr, rel, scope)]

    def _eval_binary_vec(self, expr: BinaryOp, rel: Relation, scope) -> list:
        n = rel.length
        if expr.op == "AND":
            left_mask = kernels.truthy_mask(
                self._eval_vec(expr.left, rel, scope)
            )
            out: list = [False] * n
            hits = [i for i, t in enumerate(left_mask) if t]
            if hits:
                right_mask = kernels.truthy_mask(
                    self._eval_vec(expr.right, self._subrel(rel, hits), scope)
                )
                for j, i in enumerate(hits):
                    out[i] = right_mask[j]
            return out
        if expr.op == "OR":
            left_mask = kernels.truthy_mask(
                self._eval_vec(expr.left, rel, scope)
            )
            out = list(left_mask)
            misses = [i for i, t in enumerate(left_mask) if not t]
            if misses:
                right_mask = kernels.truthy_mask(
                    self._eval_vec(
                        expr.right, self._subrel(rel, misses), scope
                    )
                )
                for j, i in enumerate(misses):
                    out[i] = right_mask[j]
            return out
        if expr.op in _COMPARISONS:
            left, right = expr.left, expr.right
            if isinstance(right, Literal) and not isinstance(left, Literal):
                col = self._eval_vec(left, rel, scope)
                return kernels.compare_literal(
                    col, self._numeric_vec(left, rel, scope), expr.op,
                    right.value,
                )
            if isinstance(left, Literal) and not isinstance(right, Literal):
                col = self._eval_vec(right, rel, scope)
                return kernels.compare_literal(
                    col, self._numeric_vec(right, rel, scope),
                    _FLIP[expr.op], left.value,
                )
            lcol = self._eval_vec(left, rel, scope)
            rcol = self._eval_vec(right, rel, scope)
            return kernels.compare_columns(
                lcol,
                self._numeric_vec(left, rel, scope),
                rcol,
                self._numeric_vec(right, rel, scope),
                expr.op,
            )
        return kernels.arithmetic(
            self._numeric_vec(expr.left, rel, scope),
            self._numeric_vec(expr.right, rel, scope),
            expr.op,
        )

    def _eval_case_vec(self, expr: CaseExpression, rel: Relation, scope):
        """CASE with the row engine's laziness: each branch's condition
        is only evaluated over rows no earlier branch took, and each
        value only over the rows its branch takes — so a value
        expression that would error on an untaken row never sees it."""
        n = rel.length
        out: list = [None] * n
        remaining = list(range(n))
        for condition, value in expr.branches:
            if not remaining:
                break
            sub = self._subrel(rel, remaining)
            mask = kernels.truthy_mask(self._eval_vec(condition, sub, scope))
            taken = [remaining[j] for j, t in enumerate(mask) if t]
            remaining = [remaining[j] for j, t in enumerate(mask) if not t]
            if taken:
                values = self._eval_vec(
                    value, self._subrel(rel, taken), scope
                )
                for j, i in enumerate(taken):
                    out[i] = values[j]
        if expr.default is not None and remaining:
            values = self._eval_vec(
                expr.default, self._subrel(rel, remaining), scope
            )
            for j, i in enumerate(remaining):
                out[i] = values[j]
        return out

    # -- projection -----------------------------------------------------

    def _plain_projection(self, items, scope, rel: Relation):
        columns: list[str] = []
        cols: list[list] = []
        n = rel.length
        for item in items:
            if isinstance(item.expression, Star):
                for idx in scope.star_indexes(item.expression.table):
                    columns.append(scope.fields[idx][1])
                    cols.append(rel.column(idx))
            else:
                columns.append(item.alias or str(item.expression))
                cols.append(self._eval_vec(item.expression, rel, scope))
        out = [[col[i] for col in cols] for i in range(n)]
        return columns, out

    def _grouped_projection(self, stmt, scope, rel: Relation):
        from repro.query.sql.executor import _substitute_aliases, _truthy

        keys = stmt.group_by
        groups: dict[tuple, list[int]] = {}
        if keys:
            key_cols = [self._eval_vec(k, rel, scope) for k in keys]
            for i in range(rel.length):
                sig = tuple(hashable_key(col[i]) for col in key_cols)
                groups.setdefault(sig, []).append(i)
        else:
            groups[()] = list(range(rel.length))

        columns: list[str] = []
        aliases: dict[str, Expression] = {}
        for item in stmt.items:
            if isinstance(item.expression, Star):
                raise SqlPlanError("SELECT * is invalid with GROUP BY")
            columns.append(item.alias or str(item.expression))
            if item.alias:
                aliases[item.alias] = item.expression

        having = (
            _substitute_aliases(stmt.having, aliases)
            if stmt.having is not None
            else None
        )
        self._agg_cache = {}
        out: list[list] = []
        for __, positions in sorted(groups.items(), key=lambda kv: kv[0]):
            if having is not None and not _truthy(
                self._eval_grouped_vec(having, positions, rel, scope)
            ):
                continue
            out.append(
                [
                    self._eval_grouped_vec(
                        item.expression, positions, rel, scope
                    )
                    for item in stmt.items
                ]
            )
        return columns, out

    def _eval_grouped_vec(self, expr, positions: list[int], rel, scope):
        from repro.query.sql.executor import _truthy

        db = self.db
        if isinstance(expr, FunctionCall) and expr.name in AGGREGATE_FUNCTIONS:
            return self._eval_aggregate_vec(expr, positions, rel, scope)
        if isinstance(expr, BinaryOp):
            if expr.op in ("AND", "OR"):
                left = self._eval_grouped_vec(expr.left, positions, rel, scope)
                if expr.op == "AND":
                    return _truthy(left) and _truthy(
                        self._eval_grouped_vec(expr.right, positions, rel, scope)
                    )
                return _truthy(left) or _truthy(
                    self._eval_grouped_vec(expr.right, positions, rel, scope)
                )
            left = self._eval_grouped_vec(expr.left, positions, rel, scope)
            right = self._eval_grouped_vec(expr.right, positions, rel, scope)
            synthetic = BinaryOp(
                op=expr.op, left=Literal(left), right=Literal(right)
            )
            return db._eval_binary(synthetic, [], scope)
        if isinstance(expr, UnaryOp):
            inner = self._eval_grouped_vec(expr.operand, positions, rel, scope)
            if expr.op == "NOT":
                return not _truthy(inner)
            value = as_number(inner)
            return -value if value is not None else None
        # Non-aggregate leaf: the group's first row is the
        # representative, exactly as in the row engine (including the
        # IndexError an empty implicit group raises on a column ref).
        if not positions:
            return db._eval(expr, [], scope)
        if isinstance(expr, ColumnRef):
            return rel.column(scope.resolve(expr))[positions[0]]
        return db._eval(expr, rel.out_row(positions[0]), scope)

    def _eval_aggregate_vec(self, expr, positions: list[int], rel, scope):
        if expr.name == "COUNT" and (
            not expr.args or isinstance(expr.args[0], Star)
        ):
            return len(positions)
        if len(expr.args) != 1:
            raise SqlPlanError(f"{expr.name} takes exactly one argument")
        cached = self._agg_cache.get(id(expr))
        if cached is None:
            arg = expr.args[0]
            if rel.length == 0:
                cached = ([], None)
            elif isinstance(arg, ColumnRef):
                field = scope.resolve(arg)
                cached = (rel.column(field), rel.numeric_column(field))
            else:
                cached = (self._eval_vec(arg, rel, scope), None)
            self._agg_cache[id(expr)] = cached
        col, col_num = cached
        return kernels.aggregate(
            expr.name, col, col_num, positions, expr.distinct
        )

    # -- ORDER BY -------------------------------------------------------

    def _order(self, stmt, scope, out_columns, out_rows, rel, grouped):
        n = len(out_rows)
        if n == 0:
            return out_rows
        key_cols: list[tuple[list, bool]] = []
        for order in stmt.order_by:
            expr = order.expression
            if (
                isinstance(expr, ColumnRef)
                and expr.table is None
                and expr.name in out_columns
            ):
                idx = out_columns.index(expr.name)
                values = [row[idx] for row in out_rows]
            elif isinstance(expr, Literal) and isinstance(expr.value, int):
                ordinal = expr.value
                if not 1 <= ordinal <= len(out_columns):
                    raise SqlPlanError(
                        f"ORDER BY position {ordinal} out of range"
                    )
                values = [row[ordinal - 1] for row in out_rows]
            elif grouped:
                raise SqlPlanError(
                    "ORDER BY on grouped queries must reference output columns"
                )
            else:
                # Base-expression keys are evaluated against base
                # positions 0..n-1 — reproducing the row engine's
                # DISTINCT misalignment quirk (``base_rows[position]``
                # after dedup shrank the output) byte for byte.
                sub = self._subrel(rel, list(range(n)))
                values = self._eval_vec(expr, sub, scope)
            key_cols.append((values, order.ascending))
        decorated = sorted(
            range(n),
            key=lambda i: [
                sort_key(values[i], asc) for values, asc in key_cols
            ],
        )
        return [out_rows[i] for i in decorated]


def _hash_pairs(
    probe_col: list, build_col: list, probe_is_left: bool
) -> list[tuple[int, int]]:
    """Hash-join candidate pairs with NULL keys excluded on both sides;
    pair tuples are always (left position, right position) regardless of
    which side was the build."""
    index: dict[Any, list[int]] = {}
    for bi, value in enumerate(build_col):
        if not is_null(value):
            index.setdefault(null_safe_key(value), []).append(bi)
    pairs: list[tuple[int, int]] = []
    append = pairs.append
    for pi, value in enumerate(probe_col):
        if is_null(value):
            continue
        for bi in index.get(null_safe_key(value), ()):
            append((pi, bi) if probe_is_left else (bi, pi))
    return pairs


__all__ = ["VectorizedExecutor", "unsupported_reason"]
