"""Column-batch building blocks for the vectorized SQL engine.

A :class:`ColumnBatch` is one base table held column-major: a list of
cell lists, one per column, plus the lazily computed views the kernels
want (numeric views, null masks).  Batches come either straight from
the storage layer's column decode (``Spate.read_columns`` feeds TCH1 /
COL1 leaves into batches without ever materializing row tuples) or
from transposing a row loader's output once at scan time.

A :class:`Relation` is an intermediate result over one or more base
batches: instead of copying cells row by row the way the row engine
does, it keeps per-base-table *row index* vectors (``-1`` marks a
NULL-extended side of a left join) and gathers an output column only
when an expression actually reads it.  Filters and joins therefore
move integers around, not cell strings — the late materialization that
makes the batch pipeline fast while staying byte-identical to the row
engine's output order.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.query.sql.values import as_number, is_null


class ColumnBatch:
    """One base table, column-major, with cached derived views."""

    __slots__ = ("columns", "data", "length", "_numeric", "_nulls")

    def __init__(self, columns: list[str], data: list[list[Any]], length: int):
        self.columns = list(columns)
        self.data = data
        self.length = length
        self._numeric: dict[int, list] = {}
        self._nulls: dict[int, list] = {}

    @classmethod
    def from_rows(cls, columns: list[str], rows: list[list[Any]]) -> "ColumnBatch":
        """Transpose a row loader's output once, at scan time."""
        n = len(rows)
        if n == 0:
            return cls(columns, [[] for __ in columns], 0)
        data = [[row[c] for row in rows] for c in range(len(columns))]
        return cls(columns, data, n)

    @classmethod
    def from_columns(
        cls, columns: list[str], data: list[list[Any]]
    ) -> "ColumnBatch":
        """Wrap storage-layer column vectors directly (no transpose)."""
        length = len(data[0]) if data else 0
        return cls(columns, data, length)

    def numeric(self, col: int) -> list:
        """Cached :func:`~repro.query.sql.values.as_number` view of one
        column — computed once, shared by every kernel that needs it."""
        view = self._numeric.get(col)
        if view is None:
            view = [as_number(v) for v in self.data[col]]
            self._numeric[col] = view
        return view

    def nulls(self, col: int) -> list:
        """Cached null mask of one column."""
        view = self._nulls.get(col)
        if view is None:
            view = [is_null(v) for v in self.data[col]]
            self._nulls[col] = view
        return view


_IDENTITY = None  # sentinel: Relation covers every row of its single base


class Relation:
    """An intermediate row set as index vectors over base batches.

    ``fields`` mirrors the row engine's ``_Scope.fields`` — the
    (binding, column) schema in field order.  ``field_map[i]`` locates
    field ``i`` as ``(table_position, column_position)`` in ``tables``.

    ``rows`` is either ``None`` (identity: every row of the single base
    batch, in storage order) or a list of per-table index tuples in
    output order; ``-1`` in a slot means that base table's side was
    NULL-extended by a left join.
    """

    __slots__ = ("fields", "tables", "field_map", "rows", "table_ids", "_cols")

    def __init__(
        self,
        fields: list[tuple[Optional[str], str]],
        tables: list[ColumnBatch],
        field_map: list[tuple[int, int]],
        rows: Optional[list[tuple[int, ...]]],
        table_ids: Optional[list[int]] = None,
    ):
        self.fields = fields
        self.tables = tables
        self.field_map = field_map
        self.rows = rows
        #: Syntactic position of each base table in the FROM clause —
        #: what the planner sorts provenance by to restore the row
        #: engine's output order after a cost-based join reorder.
        self.table_ids = table_ids if table_ids is not None else list(range(len(tables)))
        self._cols: dict[int, list] = {}

    @classmethod
    def from_batch(
        cls, binding: Optional[str], batch: ColumnBatch, table_id: int = 0
    ) -> "Relation":
        fields = [(binding, c) for c in batch.columns]
        field_map = [(0, c) for c in range(len(batch.columns))]
        return cls(fields, [batch], field_map, _IDENTITY, [table_id])

    @property
    def length(self) -> int:
        if self.rows is _IDENTITY:
            return self.tables[0].length
        return len(self.rows)

    def column(self, field: int) -> list:
        """Materialized output column for one field (cached)."""
        col = self._cols.get(field)
        if col is not None:
            return col
        t, c = self.field_map[field]
        base = self.tables[t].data[c]
        if self.rows is _IDENTITY:
            col = base
        else:
            col = [
                base[idx[t]] if idx[t] >= 0 else None for idx in self.rows
            ]
        self._cols[field] = col
        return col

    def numeric_column(self, field: int) -> list:
        """Numeric view of one field's output column.

        For identity relations this is the base batch's cached view;
        for gathered relations the gather happens on the *numeric* view
        (one coercion per base cell, however many output rows repeat it).
        """
        t, c = self.field_map[field]
        base = self.tables[t].numeric(c)
        if self.rows is _IDENTITY:
            return base
        return [base[idx[t]] if idx[t] >= 0 else None for idx in self.rows]

    def select(self, keep: list[int]) -> "Relation":
        """A new relation containing the rows at ``keep`` positions, in
        that order (filters pass ascending positions, so storage order
        is preserved)."""
        if self.rows is _IDENTITY:
            rows = [(i,) for i in keep]
        else:
            prev = self.rows
            rows = [prev[i] for i in keep]
        return Relation(
            self.fields, self.tables, self.field_map, rows, self.table_ids
        )

    def provenance(self) -> list[tuple[int, ...]]:
        """Per-row base-table index tuples (materializing identity)."""
        if self.rows is _IDENTITY:
            return [(i,) for i in range(self.tables[0].length)]
        return self.rows

    def out_row(self, position: int) -> list:
        """One fully materialized row — the slow path, used only for
        the rare per-row escapes (scalar functions with row-dependent
        errors are evaluated column-wise anyway)."""
        return [self.column(f)[position] for f in range(len(self.fields))]


def join_relations(
    left: Relation, right: Relation, pairs: list[tuple[int, ...]]
) -> Relation:
    """Combine two relations into one whose rows are ``pairs`` of
    (left position, right position); ``-1`` as the right position
    NULL-extends (left join).  Field order is left fields then right
    fields, matching the row engine's combined scope."""
    fields = left.fields + right.fields
    tables = left.tables + right.tables
    offset = len(left.tables)
    field_map = list(left.field_map) + [
        (t + offset, c) for t, c in right.field_map
    ]
    left_rows = left.provenance()
    right_rows = right.provenance()
    null_right = (-1,) * len(right.tables)
    rows = []
    append = rows.append
    for li, ri in pairs:
        lrow = left_rows[li]
        append(lrow + (right_rows[ri] if ri >= 0 else null_right))
    return Relation(
        fields, tables, field_map, rows, left.table_ids + right.table_ids
    )


Loader = Callable[[], tuple[list[str], list[list[Any]]]]

__all__ = ["ColumnBatch", "Relation", "join_relations"]
