"""SQL abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

class Expression:
    """Base class for SQL expressions."""


@dataclass(frozen=True)
class ColumnRef(Expression):
    """``name`` or ``table.name``."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal(Expression):
    """String or numeric constant (NULL is ``value=None``)."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``table.*``."""

    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Infix operation (comparison, boolean, arithmetic)."""

    op: str
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """``NOT expr`` or ``-expr``."""

    op: str
    operand: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Aggregate or scalar function call."""

    name: str
    args: tuple[Expression, ...]
    distinct: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({'DISTINCT ' if self.distinct else ''}{inner})"


@dataclass(frozen=True)
class Between(Expression):
    """``expr BETWEEN low AND high`` (optionally negated)."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    """``expr IN (v1, v2, ...)`` or ``expr IN (SELECT ...)``."""

    operand: Expression
    items: tuple[Expression, ...] = ()
    subquery: "Optional[SelectStatement]" = None
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    """``expr LIKE pattern`` with % and _ wildcards."""

    operand: Expression
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL`` (empty string counts as NULL)."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    """A parenthesized SELECT used as a value."""

    select: "SelectStatement"


@dataclass(frozen=True)
class CaseExpression(Expression):
    """``CASE WHEN cond THEN value ... [ELSE default] END``.

    The searched form only (no ``CASE operand WHEN ...``); the parser
    rewrites the simple form into searched equality branches.
    """

    branches: tuple[tuple[Expression, Expression], ...]
    default: Optional[Expression] = None

    def __str__(self) -> str:
        inner = " ".join(
            f"WHEN {cond} THEN {value}" for cond, value in self.branches
        )
        tail = f" ELSE {self.default}" if self.default is not None else ""
        return f"CASE {inner}{tail} END"


# ----------------------------------------------------------------------
# FROM clause
# ----------------------------------------------------------------------

class FromItem:
    """Base class for FROM sources."""


@dataclass(frozen=True)
class TableRef(FromItem):
    """A named table with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this source is referenced by (alias or table name)."""
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(FromItem):
    """A derived table: ``(SELECT ...) alias``."""

    select: "SelectStatement"
    alias: str

    @property
    def binding(self) -> str:
        """The name this source is referenced by (alias or table name)."""
        return self.alias


@dataclass(frozen=True)
class Join(FromItem):
    """``left JOIN right ON condition`` (inner or left outer)."""

    left: FromItem
    right: FromItem
    condition: Optional[Expression]
    kind: str = "inner"  # "inner" | "left" | "cross"


# ----------------------------------------------------------------------
# Statement
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem:
    """One projection: expression plus optional alias."""

    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    ascending: bool = True


@dataclass
class SelectStatement:
    """A full SELECT statement."""

    items: list[SelectItem] = field(default_factory=list)
    from_item: Optional[FromItem] = None
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
    #: UNION chain: (statement, keep_duplicates) pairs appended to this
    #: SELECT; ORDER BY/LIMIT on the head apply to the combined result.
    unions: "list[tuple[SelectStatement, bool]]" = field(default_factory=list)


AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


def contains_aggregate(expr: Expression) -> bool:
    """True when any aggregate call appears in ``expr``."""
    if isinstance(expr, FunctionCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, Between):
        return any(contains_aggregate(e) for e in (expr.operand, expr.low, expr.high))
    if isinstance(expr, (InList, Like, IsNull)):
        return contains_aggregate(expr.operand)
    if isinstance(expr, CaseExpression):
        branch_hit = any(
            contains_aggregate(c) or contains_aggregate(v)
            for c, v in expr.branches
        )
        default_hit = expr.default is not None and contains_aggregate(expr.default)
        return branch_hit or default_hit
    return False
