"""SPATE-SQL: the declarative exploration interface (paper §VI-B).

A small SQL engine over the frameworks' stored tables, supporting the
query classes the paper lists for its Hue/Hive interface: basic
SELECT-FROM-WHERE blocks, nested queries (FROM subqueries and IN/scalar
subqueries), joins, aggregates with GROUP BY / HAVING, ORDER BY, LIMIT
and DISTINCT.

Usage::

    from repro.query.sql import Database

    db = Database()
    db.register_table("CDR", columns, rows)
    result = db.execute(
        "SELECT cellid, SUM(val) AS drops FROM NMS "
        "WHERE kpi = 'call_drop_rate' GROUP BY cellid"
    )
    result.columns, result.rows
"""

from repro.query.sql.executor import Database, QueryResult
from repro.query.sql.parser import parse_sql
from repro.query.sql.lexer import tokenize_sql

__all__ = ["Database", "QueryResult", "parse_sql", "tokenize_sql"]
